//! Workspace root crate for the FlowKV reproduction.
//!
//! This crate only re-exports the member crates so that the repository's
//! integration tests (`tests/`) and examples (`examples/`) can reach the
//! whole system through a single dependency. The actual implementation
//! lives in the `crates/` workspace members:
//!
//! - [`flowkv`] — the semantic-aware composite store (the paper's
//!   contribution).
//! - [`flowkv_common`] — shared types, log files, codec, metrics, and the
//!   [`flowkv_common::backend::StateBackend`] trait.
//! - [`flowkv_lsm`] — the RocksDB-analog LSM baseline.
//! - [`flowkv_hashkv`] — the FASTER-analog hash-store baseline.
//! - [`flowkv_spe`] — the mini stream-processing engine.
//! - [`flowkv_nexmark`] — the NEXMark workload generator and queries.

pub use flowkv;
pub use flowkv_common;
pub use flowkv_hashkv;
pub use flowkv_lsm;
pub use flowkv_nexmark;
pub use flowkv_spe;
