//! Session analytics: the AUR store under a realistic clickstream.
//!
//! A synthetic user clickstream is sessionized with 30-second gaps; per
//! session we compute the median dwell time — a non-associative
//! aggregate, so the engine must keep full tuple lists (the paper's
//! append + unaligned read pattern, its hardest case). The example then
//! prints FlowKV's predictive-batch-read statistics: hit ratio and the
//! read amplification predicted by the paper's Equation 1.
//!
//! Run with: `cargo run --release --example session_analytics`

use std::sync::Arc;

use flowkv::FlowKvConfig;
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::Tuple;
use flowkv_spe::functions::MedianProcess;
use flowkv_spe::job::{AggregateSpec, JobBuilder};
use flowkv_spe::window::WindowAssigner;
use flowkv_spe::{run_job, BackendChoice, FactoryOptions, RunOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a clickstream: `users` users, each producing bursts of clicks
/// separated by pauses longer than the session gap.
fn clickstream(users: u64, bursts: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut tuples = Vec::new();
    for burst in 0..bursts {
        let burst_start = burst as i64 * 120_000; // Two minutes apart.
        for user in 0..users {
            let clicks = rng.gen_range(3..12);
            let mut ts = burst_start + rng.gen_range(0..5_000);
            for _ in 0..clicks {
                let dwell_ms: u64 = rng.gen_range(200..30_000);
                tuples.push(Tuple::new(
                    format!("user-{user}").into_bytes(),
                    dwell_ms.to_le_bytes().to_vec(),
                    ts,
                ));
                ts += rng.gen_range(100..5_000);
            }
        }
    }
    tuples.sort_by_key(|t| t.timestamp);
    tuples
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = ScratchDir::new("session-analytics")?;
    let input = clickstream(500, 20);
    println!(
        "clickstream: {} events from 500 users in 20 bursts",
        input.len()
    );

    let job = JobBuilder::new("session-analytics")
        .parallelism(2)
        .window(
            "median-dwell-per-session",
            WindowAssigner::Session { gap: 30_000 },
            AggregateSpec::FullList(Arc::new(MedianProcess)),
        )
        .build();

    // A small write buffer forces the state through FlowKV's data and
    // index logs, exercising predictive batch read.
    let config = FlowKvConfig::default()
        .with_write_buffer_bytes(64 << 10)
        .with_read_batch_ratio(0.02);
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    opts.watermark_interval = 100;

    let result = run_job(
        &job,
        input.into_iter(),
        BackendChoice::FlowKv(config).build(FactoryOptions::new()),
        &opts,
    )?;

    println!("sessions closed:   {}", result.output_count);
    println!("throughput:        {:.0} events/s", result.throughput());
    let m = &result.store_metrics;
    println!(
        "store time:        {:.1} ms write, {:.1} ms read, {:.1} ms compaction",
        m.write_nanos as f64 / 1e6,
        m.read_nanos as f64 / 1e6,
        m.compaction_nanos as f64 / 1e6,
    );
    if let Some(hit) = m.prefetch_hit_ratio() {
        println!(
            "prefetch:          hit ratio {hit:.3} → read amplification {:.3} (Eq. 1: 1/r)",
            1.0 / hit.max(f64::MIN_POSITIVE)
        );
    }
    println!("compactions:       {}", m.compactions);

    // A couple of sample outputs: median dwell per session.
    for t in result.outputs.iter().take(5) {
        println!(
            "  {} session ending {} ms: median dwell {} ms",
            String::from_utf8_lossy(&t.key),
            t.timestamp,
            u64::from_le_bytes(t.value.clone().try_into().unwrap())
        );
    }
    Ok(())
}
