//! Quickstart: use FlowKV directly as a window-state store.
//!
//! This example drives the three specialized stores through the
//! `StateBackend` interface, the same way a stream engine would:
//! classify an operator at launch, then append / read with explicit
//! window metadata (paper Listing 1).
//!
//! Run with: `cargo run --example quickstart`

use flowkv::config::FlowKvConfig;
use flowkv::store::FlowKvStore;
use flowkv_common::backend::{AggregateKind, OperatorSemantics, StateBackend, WindowKind};
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::WindowId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = ScratchDir::new("quickstart")?;

    // 1. Append + Aligned Read: a fixed-window operator collecting full
    //    tuple lists. FlowKV classifies this as AAR and lays data out in
    //    per-window log files.
    let aar = OperatorSemantics::new(AggregateKind::FullList, WindowKind::Fixed { size: 60_000 });
    let mut store = FlowKvStore::open(&dir.path().join("aar"), aar, FlowKvConfig::default())?;
    println!("fixed-window + full-list  -> pattern {}", store.pattern());

    let minute = WindowId::new(0, 60_000);
    for (user, page, ts) in [
        ("alice", "/home", 1_000),
        ("bob", "/cart", 2_000),
        ("alice", "/checkout", 30_000),
    ] {
        store.append(user.as_bytes(), minute, page.as_bytes(), ts)?;
    }
    // When the window triggers, drain it gradually: every chunk holds a
    // bounded batch of keys (gradual state loading, paper §4.1).
    while let Some(chunk) = store.get_window_chunk(minute)? {
        for (key, values) in chunk {
            let pages: Vec<String> = values
                .iter()
                .map(|v| String::from_utf8_lossy(v).into_owned())
                .collect();
            println!(
                "  window {minute}: {} visited {pages:?}",
                String::from_utf8_lossy(&key)
            );
        }
    }
    store.close()?;

    // 2. Append + Unaligned Read: session windows per key. FlowKV uses a
    //    global data log + index log and predicts trigger times.
    let aur = OperatorSemantics::new(AggregateKind::FullList, WindowKind::Session { gap: 5_000 });
    let mut store = FlowKvStore::open(&dir.path().join("aur"), aur, FlowKvConfig::default())?;
    println!("session-window + full-list -> pattern {}", store.pattern());
    let session = WindowId::new(10_000, 15_000);
    store.append(b"alice", session, b"click-1", 10_000)?;
    store.append(b"alice", session, b"click-2", 12_500)?;
    store.flush()?; // Spill to the data + index logs.
    let values = store.take_values(b"alice", session)?;
    println!(
        "  session {session}: {} events recovered from disk",
        values.len()
    );
    store.close()?;

    // 3. Read-Modify-Write: incremental aggregates.
    let rmw = OperatorSemantics::new(
        AggregateKind::Incremental,
        WindowKind::Fixed { size: 60_000 },
    );
    let mut store = FlowKvStore::open(&dir.path().join("rmw"), rmw, FlowKvConfig::default())?;
    println!("fixed-window + incremental -> pattern {}", store.pattern());
    for _ in 0..10 {
        let count = store
            .take_aggregate(b"alice", minute)?
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
            .unwrap_or(0);
        store.put_aggregate(b"alice", minute, &(count + 1).to_le_bytes())?;
    }
    let final_count = store.take_aggregate(b"alice", minute)?.unwrap();
    println!(
        "  alice's count in {minute}: {}",
        u64::from_le_bytes(final_count.try_into().unwrap())
    );
    store.close()?;

    Ok(())
}
