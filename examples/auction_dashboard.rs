//! Auction dashboard: NEXMark queries on FlowKV end to end.
//!
//! Generates a NEXMark auction stream and answers three dashboard
//! questions with the paper's queries — each one exercising a different
//! FlowKV store:
//!
//! - which auction is hottest right now? (Q5, read-modify-write)
//! - what is each bidder's top bid per hour? (Q7, append + aligned read)
//! - how active are bidding sessions? (Q11-Median, append + unaligned)
//!
//! Run with: `cargo run --release --example auction_dashboard`

use flowkv_bench::flowkv_cfg;
use flowkv_common::scratch::ScratchDir;
use flowkv_nexmark::{EventGenerator, GeneratorConfig, QueryId, QueryParams};
use flowkv_spe::{run_job, BackendChoice, FactoryOptions, RunOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gen_cfg = GeneratorConfig {
        num_events: 100_000,
        seed: 77,
        events_per_second: 10_000,
        active_people: 500,
        active_auctions: 500,
        ..GeneratorConfig::default()
    };
    println!(
        "auction stream: {} events (~{} s of stream time)",
        gen_cfg.num_events,
        gen_cfg.stream_span_ms() / 1000
    );

    let params = QueryParams::new(2_000).with_parallelism(2);
    for query in [QueryId::Q5, QueryId::Q7, QueryId::Q11Median] {
        let dir = ScratchDir::new("dashboard")?;
        let mut opts = RunOptions::new(dir.path());
        opts.collect_outputs = true;
        let result = run_job(
            &query.build(params),
            EventGenerator::new(gen_cfg.clone()).tuples(),
            BackendChoice::FlowKv(flowkv_cfg()).build(FactoryOptions::new()),
            &opts,
        )?;
        println!(
            "\n{} [{}]: {} results in {:.2} s ({:.0}k events/s)",
            query.name(),
            query.pattern(),
            result.output_count,
            result.elapsed.as_secs_f64(),
            result.throughput() / 1e3,
        );
        match query {
            QueryId::Q5 => {
                // Outputs are (window, max bid count across auctions).
                if let Some(t) = result.outputs.iter().max_by_key(|t| t.timestamp) {
                    let max = u64::from_le_bytes(t.value.clone().try_into().unwrap());
                    println!("  hottest auction of the last window took {max} bids");
                }
            }
            QueryId::Q7 => {
                let top = result
                    .outputs
                    .iter()
                    .map(|t| u64::from_le_bytes(t.value.clone().try_into().unwrap()))
                    .max()
                    .unwrap_or(0);
                println!("  highest hourly bid of any bidder: {} cents", top);
            }
            _ => {
                let medians: Vec<u64> = result
                    .outputs
                    .iter()
                    .map(|t| u64::from_le_bytes(t.value.clone().try_into().unwrap()))
                    .collect();
                let avg = medians.iter().sum::<u64>() as f64 / medians.len().max(1) as f64;
                println!(
                    "  {} bidding sessions closed; average session-median bid {avg:.0} cents",
                    medians.len()
                );
            }
        }
    }
    Ok(())
}
