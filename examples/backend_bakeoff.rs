//! Backend bake-off: one query, all four state backends.
//!
//! Runs NEXMark Q11 (bids per user in session windows, the
//! read-modify-write pattern) on the in-memory store, FlowKV, the LSM
//! baseline, and the hash baseline, printing a miniature version of the
//! paper's Figure 8 comparison — including failure markers when a
//! backend cannot finish.
//!
//! Run with: `cargo run --release --example backend_bakeoff [Q7|Q11|...]`

use std::time::Duration;

use flowkv_bench::{bench_backends, run_cell, workload, CellOutcome};
use flowkv_nexmark::{QueryId, QueryParams};

fn main() {
    let query = match std::env::args().nth(1).as_deref() {
        Some("Q5") => QueryId::Q5,
        Some("Q5-Append") => QueryId::Q5Append,
        Some("Q7") => QueryId::Q7,
        Some("Q7-Session") => QueryId::Q7Session,
        Some("Q8") => QueryId::Q8,
        Some("Q11-Median") => QueryId::Q11Median,
        Some("Q12") => QueryId::Q12,
        _ => QueryId::Q11,
    };
    let events = 80_000;
    let params = QueryParams::new(1_500).with_parallelism(2);
    println!(
        "{} [{}] over {events} NEXMark events, 4 backends:\n",
        query.name(),
        query.pattern()
    );
    println!(
        "{:<10} {:>14} {:>10} {:>12}",
        "backend", "events/s", "wall s", "store cpu s"
    );
    for backend in bench_backends(512 << 10) {
        let outcome = run_cell(
            query,
            &backend,
            workload(events, 5),
            params,
            Duration::from_secs(60),
            |_| {},
        );
        match outcome {
            CellOutcome::Ok(r) => println!(
                "{:<10} {:>14.0} {:>10.2} {:>12.2}",
                backend.name(),
                r.throughput(),
                r.elapsed.as_secs_f64(),
                r.store_metrics.total_store_nanos() as f64 / 1e9,
            ),
            other => println!("{:<10} {:>14}", backend.name(), other.throughput_cell()),
        }
    }
    println!("\n(the paper's Figure 8 sweeps all eight queries and three window sizes;");
    println!(" see `cargo run --release -p flowkv-bench --bin fig8_throughput`)");
}
