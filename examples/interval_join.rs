//! Interval join: enrich bids with the auction that opened them
//! (paper §8's future-work direction, built on the `peek_values`
//! non-destructive read).
//!
//! Auctions (left) and bids (right) flow tagged through one keyed
//! stream; each bid joins the auctions of the same item opened within
//! the preceding five minutes.
//!
//! Run with: `cargo run --release --example interval_join`

use std::sync::Arc;

use flowkv::FlowKvConfig;
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::Tuple;
use flowkv_spe::join::{tag_left, tag_right};
use flowkv_spe::{run_job, BackendChoice, FactoryOptions, JobBuilder, RunOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FIVE_MINUTES: i64 = 5 * 60 * 1_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthesize an hour of auction traffic over 50 items: each item
    // periodically reopens an auction; bids arrive continuously.
    let mut rng = StdRng::seed_from_u64(9);
    let mut input = Vec::new();
    for second in 0..3_600i64 {
        let ts = second * 1_000;
        if second % 30 == 0 {
            for item in 0..50 {
                if rng.gen_bool(0.2) {
                    input.push(Tuple::new(
                        format!("item-{item}").into_bytes(),
                        tag_left(format!("auction@{second}s").as_bytes()),
                        ts,
                    ));
                }
            }
        }
        for _ in 0..3 {
            let item = rng.gen_range(0..50);
            let price: u64 = rng.gen_range(100..10_000);
            input.push(Tuple::new(
                format!("item-{item}").into_bytes(),
                tag_right(format!("bid:{price}").as_bytes()),
                ts + rng.gen_range(0..1_000),
            ));
        }
    }
    input.sort_by_key(|t| t.timestamp);
    println!("stream: {} auctions+bids over one hour", input.len());

    let job = JobBuilder::new("bid-enrichment")
        .parallelism(2)
        .interval_join(
            "bids-to-open-auctions",
            0,            // A bid joins auctions opened at or before it...
            FIVE_MINUTES, // ...within the following five minutes.
            60_000,       // One-minute buffering buckets.
            Arc::new(|key, auction: &[u8], bid: &[u8]| {
                Some(
                    format!(
                        "{} {} ← {}",
                        String::from_utf8_lossy(key),
                        String::from_utf8_lossy(auction),
                        String::from_utf8_lossy(bid)
                    )
                    .into_bytes(),
                )
            }),
        )
        .build();

    let dir = ScratchDir::new("interval-join-example")?;
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    opts.watermark_interval = 200;
    let result = run_job(
        &job,
        input.into_iter(),
        BackendChoice::FlowKv(FlowKvConfig::default().with_write_buffer_bytes(256 << 10))
            .build(FactoryOptions::new()),
        &opts,
    )?;

    println!(
        "joined {} bid↔auction pairs in {:.2} s ({:.0}k events/s)",
        result.output_count,
        result.elapsed.as_secs_f64(),
        result.throughput() / 1e3
    );
    for t in result.outputs.iter().take(5) {
        println!("  {}", String::from_utf8_lossy(&t.value));
    }
    let m = &result.store_metrics;
    println!(
        "store: {:.1} ms total CPU, {} flushes, {} compactions",
        m.total_store_nanos() as f64 / 1e6,
        m.flushes,
        m.compactions
    );
    Ok(())
}
