//! Randomized crash-point matrix: for every backend × query pair, crash
//! the job at a random store operation, recover under supervision, and
//! require byte-identical output versus an undisturbed run.
//!
//! The crash point is drawn from the SplitMix64 stream seeded by
//! `FLOWKV_FAULT_SEED` (default below); the seed appears in every
//! failure message (not just the success-path banner), so any CI
//! failure reproduces with `FLOWKV_FAULT_SEED=<seed> cargo test`.
//!
//! The tiered cells re-run the matrix with the two-tier hot/cold layout
//! forced into pathological demotion (`tier_hot_bytes = 0`), once with
//! an early crash cap (most likely to land mid-demotion, while cold
//! blocks are being sealed) and once with a late cap (most likely to
//! land mid-promotion, while cold blocks are being read back).

mod common;

use std::sync::Arc;

use common::{cell_seed, fault_seed, nexmark_generator, sorted_triples};
use flowkv_common::scratch::ScratchDir;
use flowkv_common::telemetry::{SampleValue, Telemetry};
use flowkv_common::vfs::{FaultPlan, FaultVfs, StdVfs};
use flowkv_nexmark::{QueryId, QueryParams};
use flowkv_spe::source::{LogSource, TupleLog};
use flowkv_spe::{run_job, run_supervised, BackendChoice, FactoryOptions, RunOptions};

const NUM_EVENTS: u64 = 8_000;
const DEFAULT_SEED: u64 = 0xF10C;

/// One matrix cell: crash at a random store op under the given cap
/// fraction (numerator/denominator of the counted op range), recover,
/// compare. `tiered` additionally wraps the backend in the forced-
/// demotion two-tier layout on both sides of the comparison's fault
/// path (the reference stays hot-only — that asymmetry *is* the test).
fn crash_matrix_cell(
    query: QueryId,
    backend: &BackendChoice,
    seed: u64,
    tiered: bool,
    cap_num: u64,
    cap_den: u64,
) {
    let label = if tiered { "tiered" } else { "hot-only" };
    let dir = ScratchDir::new(&format!(
        "crash-matrix-{label}-{}-{}",
        query.name(),
        backend.name()
    ))
    .unwrap();
    let log = dir.path().join("events.log");
    TupleLog::record(&log, nexmark_generator(NUM_EVENTS, 7).tuples()).unwrap();
    let params = QueryParams::new(1_000).with_parallelism(2);
    let job = query.build(params);

    let tier_cfg = flowkv::tier::TierConfig::new(0);

    // Undisturbed hot-only reference run.
    let ref_opts = RunOptions::builder(dir.path().join("ref"))
        .collect_outputs(true)
        .watermark_interval(100)
        .build();
    let reference = run_job(
        &job,
        LogSource::open(&log).unwrap(),
        backend.build(FactoryOptions::new()),
        &ref_opts,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} on {} [{label}]: reference run failed (seed {seed}): {e}",
            query.name(),
            backend.name()
        )
    });
    assert!(
        !reference.outputs.is_empty(),
        "{} on {} [{label}]: reference run produced no output (seed {seed})",
        query.name(),
        backend.name()
    );

    // Measure the run's store-op footprint so the crash point can be
    // drawn from the range the run actually exercises.
    let counter = FaultVfs::counting(StdVfs::shared());
    let counted_opts = RunOptions::builder(dir.path().join("count"))
        .watermark_interval(100)
        .checkpoint(NUM_EVENTS / 2, dir.path().join("count-ckpt"))
        .build();
    let counted_factory = if tiered {
        backend.build(
            FactoryOptions::new()
                .tiered(tier_cfg.clone())
                .vfs(counter.clone()),
        )
    } else {
        backend.build(FactoryOptions::new().vfs(counter.clone()))
    };
    run_job(
        &job,
        LogSource::open(&log).unwrap(),
        counted_factory,
        &counted_opts,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} on {} [{label}]: counting run failed (seed {seed}): {e}",
            query.name(),
            backend.name()
        )
    });
    let total_ops = counter.ops();
    assert!(
        total_ops > 0,
        "{} on {} [{label}]: store never touched the vfs (seed {seed})",
        query.name(),
        backend.name()
    );

    // Crash somewhere inside the capped slice of the op range (the cap
    // absorbs run-to-run scheduling variance in the op count), then
    // recover under supervision and compare byte-for-byte.
    let combo_seed = cell_seed(seed, query, backend, if tiered { 13 } else { 0 });
    let plan = FaultPlan::random_crash(combo_seed, total_ops * cap_num / cap_den);
    let faulty = FaultVfs::new(StdVfs::shared(), plan);
    let telemetry = Telemetry::new_shared();
    let opts = RunOptions::builder(dir.path().join("data"))
        .collect_outputs(true)
        .watermark_interval(100)
        .checkpoint(NUM_EVENTS / 2, dir.path().join("ckpt"))
        .max_restarts(2)
        .restart_backoff(std::time::Duration::from_millis(1))
        .telemetry(Arc::clone(&telemetry))
        .build();
    let faulty_factory = if tiered {
        backend.build(FactoryOptions::new().tiered(tier_cfg).vfs(faulty.clone()))
    } else {
        backend.build(FactoryOptions::new().vfs(faulty.clone()))
    };
    let sup = run_supervised(&job, &log, faulty_factory, &opts).unwrap_or_else(|e| {
        panic!(
            "{} on {} [{label}]: supervised run failed (seed {seed}): {e}",
            query.name(),
            backend.name()
        )
    });

    let fired = faulty.fired();
    assert_eq!(
        fired.len(),
        1,
        "{} on {} [{label}]: expected exactly one injected crash (seed {seed}), fired {fired:?}",
        query.name(),
        backend.name()
    );
    assert_eq!(
        sup.restarts,
        1,
        "{} on {} [{label}]: one crash must cost exactly one restart (seed {seed})",
        query.name(),
        backend.name()
    );
    assert_eq!(
        sorted_triples(&sup.all_outputs()),
        sorted_triples(&reference.outputs),
        "{} on {} [{label}]: recovered output diverged (seed {seed}, crash at op {})",
        query.name(),
        backend.name(),
        fired[0].0
    );

    let samples = telemetry.registry().snapshot();
    let restarts_total = samples
        .iter()
        .find(|s| s.name == "recovery_restarts_total")
        .expect("recovery_restarts_total missing");
    match restarts_total.value {
        SampleValue::Counter(v) => assert_eq!(
            v,
            1,
            "{} on {} [{label}]: recovery_restarts_total must equal the injected crash count \
             (seed {seed})",
            query.name(),
            backend.name()
        ),
        _ => panic!("recovery_restarts_total is not a counter (seed {seed})"),
    }
}

fn crash_matrix_row(query: QueryId) {
    let seed = fault_seed(DEFAULT_SEED);
    println!(
        "crash matrix {}: FLOWKV_FAULT_SEED={seed} (set the env var to replay)",
        query.name()
    );
    for backend in &BackendChoice::all_small_for_tests() {
        crash_matrix_cell(query, backend, seed, false, 9, 10);
    }
}

/// Tiered crash cells: FlowKV under forced demotion, crashed early
/// (mid-demotion: the run front-loads cold-block writes) and late
/// (mid-promotion: the tail of the op range is dominated by cold-block
/// reads as windows fire). Recovery restores both tiers from the last
/// checkpoint; output must stay byte-identical to the hot-only
/// reference either way.
fn tiered_crash_row(query: QueryId) {
    let seed = fault_seed(DEFAULT_SEED);
    println!(
        "tiered crash matrix {}: FLOWKV_FAULT_SEED={seed} (set the env var to replay)",
        query.name()
    );
    let backend = &BackendChoice::all_small_for_tests()[1];
    crash_matrix_cell(query, backend, seed, true, 1, 3); // mid-demotion
    crash_matrix_cell(query, backend, seed, true, 9, 10); // mid-promotion
}

#[test]
fn crash_matrix_q7() {
    crash_matrix_row(QueryId::Q7);
}

#[test]
fn crash_matrix_q11_median() {
    crash_matrix_row(QueryId::Q11Median);
}

#[test]
fn crash_matrix_q11() {
    crash_matrix_row(QueryId::Q11);
}

#[test]
fn tiered_crash_q7() {
    tiered_crash_row(QueryId::Q7);
}

#[test]
fn tiered_crash_q11_median() {
    tiered_crash_row(QueryId::Q11Median);
}

#[test]
fn tiered_crash_q11() {
    tiered_crash_row(QueryId::Q11);
}
