//! Randomized crash-point matrix: for every backend × query pair, crash
//! the job at a random store operation, recover under supervision, and
//! require byte-identical output versus an undisturbed run.
//!
//! The crash point is drawn from the SplitMix64 stream seeded by
//! `FLOWKV_FAULT_SEED` (default below); the seed is printed so any
//! failure reproduces with `FLOWKV_FAULT_SEED=<seed> cargo test`.

use std::sync::Arc;

use flowkv_common::scratch::ScratchDir;
use flowkv_common::telemetry::{SampleValue, Telemetry};
use flowkv_common::types::Tuple;
use flowkv_common::vfs::{FaultPlan, FaultVfs, StdVfs};
use flowkv_nexmark::{EventGenerator, GeneratorConfig, QueryId, QueryParams};
use flowkv_spe::source::{LogSource, TupleLog};
use flowkv_spe::{run_job, run_supervised, BackendChoice, RunOptions};

const NUM_EVENTS: u64 = 8_000;
const DEFAULT_SEED: u64 = 0xF10C;

fn fault_seed() -> u64 {
    std::env::var("FLOWKV_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn generator() -> EventGenerator {
    EventGenerator::new(GeneratorConfig {
        num_events: NUM_EVENTS,
        seed: 7,
        events_per_second: 5_000,
        active_people: 50,
        active_auctions: 80,
        ..GeneratorConfig::default()
    })
}

fn sorted_triples(tuples: &[Tuple]) -> Vec<(Vec<u8>, Vec<u8>, i64)> {
    let mut v: Vec<(Vec<u8>, Vec<u8>, i64)> = tuples
        .iter()
        .map(|t| (t.key.clone(), t.value.clone(), t.timestamp))
        .collect();
    v.sort();
    v
}

/// Distinct crash points per cell, all reproducible from the one seed.
fn cell_seed(seed: u64, query: QueryId, backend: &BackendChoice) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in query.name().bytes().chain(backend.name().bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h
}

fn crash_matrix_cell(query: QueryId, backend: &BackendChoice, seed: u64) {
    let dir =
        ScratchDir::new(&format!("crash-matrix-{}-{}", query.name(), backend.name())).unwrap();
    let log = dir.path().join("events.log");
    TupleLog::record(&log, generator().tuples()).unwrap();
    let params = QueryParams::new(1_000).with_parallelism(2);
    let job = query.build(params);

    // Undisturbed reference run.
    let ref_opts = RunOptions::builder(dir.path().join("ref"))
        .collect_outputs(true)
        .watermark_interval(100)
        .build();
    let reference = run_job(
        &job,
        LogSource::open(&log).unwrap(),
        backend.factory(),
        &ref_opts,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} on {}: reference run failed: {e}",
            query.name(),
            backend.name()
        )
    });
    assert!(
        !reference.outputs.is_empty(),
        "{} on {}: reference run produced no output",
        query.name(),
        backend.name()
    );

    // Measure the run's store-op footprint so the crash point can be
    // drawn from the range the run actually exercises.
    let counter = FaultVfs::counting(StdVfs::shared());
    let counted_opts = RunOptions::builder(dir.path().join("count"))
        .watermark_interval(100)
        .checkpoint(NUM_EVENTS / 2, dir.path().join("count-ckpt"))
        .build();
    run_job(
        &job,
        LogSource::open(&log).unwrap(),
        backend.factory_with_vfs(counter.clone()),
        &counted_opts,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} on {}: counting run failed: {e}",
            query.name(),
            backend.name()
        )
    });
    let total_ops = counter.ops();
    assert!(total_ops > 0, "store never touched the vfs");

    // Crash somewhere in the first nine tenths of the op range (the cap
    // absorbs run-to-run scheduling variance in the op count), then
    // recover under supervision and compare byte-for-byte.
    let combo_seed = cell_seed(seed, query, backend);
    let plan = FaultPlan::random_crash(combo_seed, total_ops * 9 / 10);
    let faulty = FaultVfs::new(StdVfs::shared(), plan);
    let telemetry = Telemetry::new_shared();
    let opts = RunOptions::builder(dir.path().join("data"))
        .collect_outputs(true)
        .watermark_interval(100)
        .checkpoint(NUM_EVENTS / 2, dir.path().join("ckpt"))
        .max_restarts(2)
        .restart_backoff(std::time::Duration::from_millis(1))
        .telemetry(Arc::clone(&telemetry))
        .build();
    let sup = run_supervised(&job, &log, backend.factory_with_vfs(faulty.clone()), &opts)
        .unwrap_or_else(|e| {
            panic!(
                "{} on {}: supervised run failed (seed {seed}): {e}",
                query.name(),
                backend.name()
            )
        });

    let fired = faulty.fired();
    assert_eq!(
        fired.len(),
        1,
        "{} on {}: expected exactly one injected crash (seed {seed}), fired {fired:?}",
        query.name(),
        backend.name()
    );
    assert_eq!(
        sup.restarts,
        1,
        "{} on {}: one crash must cost exactly one restart (seed {seed})",
        query.name(),
        backend.name()
    );
    assert_eq!(
        sorted_triples(&sup.all_outputs()),
        sorted_triples(&reference.outputs),
        "{} on {}: recovered output diverged (seed {seed}, crash at op {})",
        query.name(),
        backend.name(),
        fired[0].0
    );

    let samples = telemetry.registry().snapshot();
    let restarts_total = samples
        .iter()
        .find(|s| s.name == "recovery_restarts_total")
        .expect("recovery_restarts_total missing");
    match restarts_total.value {
        SampleValue::Counter(v) => assert_eq!(
            v,
            1,
            "{} on {}: recovery_restarts_total must equal the injected crash count",
            query.name(),
            backend.name()
        ),
        _ => panic!("recovery_restarts_total is not a counter"),
    }
}

fn crash_matrix_row(query: QueryId) {
    let seed = fault_seed();
    println!(
        "crash matrix {}: FLOWKV_FAULT_SEED={seed} (set the env var to replay)",
        query.name()
    );
    for backend in &BackendChoice::all_small_for_tests() {
        crash_matrix_cell(query, backend, seed);
    }
}

#[test]
fn crash_matrix_q7() {
    crash_matrix_row(QueryId::Q7);
}

#[test]
fn crash_matrix_q11_median() {
    crash_matrix_row(QueryId::Q11Median);
}

#[test]
fn crash_matrix_q11() {
    crash_matrix_row(QueryId::Q11);
}
