//! Property-based model tests: every persistent backend must behave like
//! a simple in-memory map under arbitrary interleavings of the
//! window-state operations.
//!
//! The model is a `HashMap<(key, window), Vec<value>>` for the append
//! pattern and a `HashMap<(key, window), value>` for aggregates. Ops are
//! generated with small key/window alphabets so collisions, overwrites,
//! re-reads of consumed state, and buffer spills all occur.

use std::collections::HashMap;

use flowkv_common::backend::{
    AggregateKind, OperatorContext, OperatorSemantics, StateBackend, WindowKind,
};
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::WindowId;
use flowkv_spe::{BackendChoice, FactoryOptions};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum AppendOp {
    /// Append value (arbitrary bytes) to key k in window w.
    Append {
        k: u8,
        w: u8,
        value: Vec<u8>,
        ts: i64,
    },
    /// Fetch-and-remove key k in window w.
    Take { k: u8, w: u8 },
    /// Force a flush.
    Flush,
}

#[derive(Clone, Debug)]
enum AggOp {
    Put { k: u8, w: u8, value: Vec<u8> },
    Take { k: u8, w: u8 },
    Flush,
}

fn window(w: u8) -> WindowId {
    let start = i64::from(w) * 100;
    WindowId::new(start, start + 100)
}

fn key(k: u8) -> Vec<u8> {
    format!("key-{k}").into_bytes()
}

fn append_ops() -> impl Strategy<Value = Vec<AppendOp>> {
    prop::collection::vec(
        prop_oneof![
            6 => (0u8..6, 0u8..4, prop::collection::vec(any::<u8>(), 0..40), 0i64..1000)
                .prop_map(|(k, w, value, ts)| AppendOp::Append { k, w, value, ts }),
            2 => (0u8..6, 0u8..4).prop_map(|(k, w)| AppendOp::Take { k, w }),
            1 => Just(AppendOp::Flush),
        ],
        1..120,
    )
}

fn agg_ops() -> impl Strategy<Value = Vec<AggOp>> {
    prop::collection::vec(
        prop_oneof![
            6 => (0u8..6, 0u8..4, prop::collection::vec(any::<u8>(), 1..24))
                .prop_map(|(k, w, value)| AggOp::Put { k, w, value }),
            2 => (0u8..6, 0u8..4).prop_map(|(k, w)| AggOp::Take { k, w }),
            1 => Just(AggOp::Flush),
        ],
        1..120,
    )
}

fn make_store(choice: &BackendChoice, semantics: OperatorSemantics) -> Box<dyn StateBackend> {
    let dir = ScratchDir::new(&format!("model-{}", choice.name())).unwrap();
    let ctx = OperatorContext {
        operator: "model".into(),
        partition: 0,
        semantics,
        data_dir: dir.into_kept(),
        telemetry: None,
        io: None,
    };
    choice.build(FactoryOptions::new()).create(&ctx).unwrap()
}

fn check_append_model(choice: &BackendChoice, ops: &[AppendOp]) -> Result<(), TestCaseError> {
    let semantics =
        OperatorSemantics::new(AggregateKind::FullList, WindowKind::Session { gap: 50 });
    let mut store = make_store(choice, semantics);
    let mut model: HashMap<(u8, u8), Vec<Vec<u8>>> = HashMap::new();
    for op in ops {
        match op {
            AppendOp::Append { k, w, value, ts } => {
                store.append(&key(*k), window(*w), value, *ts).unwrap();
                model.entry((*k, *w)).or_default().push(value.clone());
            }
            AppendOp::Take { k, w } => {
                let got = store.take_values(&key(*k), window(*w)).unwrap();
                let expect = model.remove(&(*k, *w)).unwrap_or_default();
                prop_assert_eq!(
                    &got,
                    &expect,
                    "backend {} diverged on take({},{})",
                    choice.name(),
                    k,
                    w
                );
            }
            AppendOp::Flush => store.flush().unwrap(),
        }
    }
    // Drain the remaining model state.
    for ((k, w), expect) in model {
        let got = store.take_values(&key(k), window(w)).unwrap();
        prop_assert_eq!(
            &got,
            &expect,
            "backend {} final ({},{})",
            choice.name(),
            k,
            w
        );
    }
    store.close().unwrap();
    Ok(())
}

fn check_agg_model(choice: &BackendChoice, ops: &[AggOp]) -> Result<(), TestCaseError> {
    let semantics =
        OperatorSemantics::new(AggregateKind::Incremental, WindowKind::Fixed { size: 100 });
    let mut store = make_store(choice, semantics);
    let mut model: HashMap<(u8, u8), Vec<u8>> = HashMap::new();
    for op in ops {
        match op {
            AggOp::Put { k, w, value } => {
                store.put_aggregate(&key(*k), window(*w), value).unwrap();
                model.insert((*k, *w), value.clone());
            }
            AggOp::Take { k, w } => {
                let got = store.take_aggregate(&key(*k), window(*w)).unwrap();
                let expect = model.remove(&(*k, *w));
                prop_assert_eq!(
                    &got,
                    &expect,
                    "backend {} diverged on take({},{})",
                    choice.name(),
                    k,
                    w
                );
            }
            AggOp::Flush => store.flush().unwrap(),
        }
    }
    for ((k, w), expect) in model {
        let got = store.take_aggregate(&key(k), window(w)).unwrap();
        prop_assert_eq!(
            got,
            Some(expect),
            "backend {} final ({},{})",
            choice.name(),
            k,
            w
        );
    }
    store.close().unwrap();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flowkv_append_matches_model(ops in append_ops()) {
        check_append_model(&BackendChoice::all_small_for_tests()[1], &ops)?;
    }

    #[test]
    fn lsm_append_matches_model(ops in append_ops()) {
        check_append_model(&BackendChoice::all_small_for_tests()[2], &ops)?;
    }

    #[test]
    fn hashkv_append_matches_model(ops in append_ops()) {
        check_append_model(&BackendChoice::all_small_for_tests()[3], &ops)?;
    }

    #[test]
    fn flowkv_aggregates_match_model(ops in agg_ops()) {
        check_agg_model(&BackendChoice::all_small_for_tests()[1], &ops)?;
    }

    #[test]
    fn lsm_aggregates_match_model(ops in agg_ops()) {
        check_agg_model(&BackendChoice::all_small_for_tests()[2], &ops)?;
    }

    #[test]
    fn hashkv_aggregates_match_model(ops in agg_ops()) {
        check_agg_model(&BackendChoice::all_small_for_tests()[3], &ops)?;
    }
}
