//! Checkpoint / restore fidelity for every state backend.
//!
//! The paper's fault-tolerance model (§8): the engine checkpoints store
//! snapshots and replays the source from the checkpoint on failure. That
//! only works if a restored store is byte-for-byte equivalent to the
//! checkpointed one. These tests run a mixed workload, checkpoint
//! mid-stream, keep mutating, restore, and verify the state matches what
//! it was at checkpoint time.

use flowkv_common::backend::{AggregateKind, OperatorContext, OperatorSemantics, WindowKind};
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::WindowId;
use flowkv_spe::{BackendChoice, FactoryOptions};

fn ctx(dir: &ScratchDir, semantics: OperatorSemantics, name: &str) -> OperatorContext {
    OperatorContext {
        operator: name.to_string(),
        partition: 0,
        semantics,
        data_dir: dir.path().to_path_buf(),
        telemetry: None,
        io: None,
    }
}

fn w(start: i64, end: i64) -> WindowId {
    WindowId::new(start, end)
}

/// Append-pattern recovery: values written before the checkpoint
/// survive; values written after do not.
fn append_recovery(choice: &BackendChoice) {
    let dir = ScratchDir::new(&format!("rec-append-{}", choice.name())).unwrap();
    let ckpt = ScratchDir::new(&format!("rec-append-ckpt-{}", choice.name())).unwrap();
    let semantics =
        OperatorSemantics::new(AggregateKind::FullList, WindowKind::Session { gap: 1_000 });
    let mut store = choice
        .build(FactoryOptions::new())
        .create(&ctx(&dir, semantics, "append-op"))
        .unwrap();

    for i in 0..200u64 {
        let key = format!("key-{}", i % 10);
        store
            .append(key.as_bytes(), w(0, 1_000), &i.to_le_bytes(), i as i64)
            .unwrap();
    }
    // Consume some state so the snapshot includes removals.
    let consumed = store.take_values(b"key-3", w(0, 1_000)).unwrap();
    assert_eq!(consumed.len(), 20);

    store.checkpoint(ckpt.path()).unwrap();

    // Post-checkpoint mutations that the restore must wipe out.
    for i in 0..50u64 {
        store
            .append(b"key-1", w(0, 1_000), &(1_000 + i).to_le_bytes(), 500)
            .unwrap();
    }
    store.take_values(b"key-2", w(0, 1_000)).unwrap();

    store.restore(ckpt.path()).unwrap();

    for keynum in 0..10u64 {
        let key = format!("key-{keynum}");
        let values = store.take_values(key.as_bytes(), w(0, 1_000)).unwrap();
        if keynum == 3 {
            assert!(
                values.is_empty(),
                "{}: consumed key resurrected",
                choice.name()
            );
        } else {
            let expect: Vec<Vec<u8>> = (0..200u64)
                .filter(|i| i % 10 == keynum)
                .map(|i| i.to_le_bytes().to_vec())
                .collect();
            assert_eq!(values, expect, "{}: key {keynum}", choice.name());
        }
    }
    store.close().unwrap();
}

/// RMW-pattern recovery over aggregates.
fn rmw_recovery(choice: &BackendChoice) {
    let dir = ScratchDir::new(&format!("rec-rmw-{}", choice.name())).unwrap();
    let ckpt = ScratchDir::new(&format!("rec-rmw-ckpt-{}", choice.name())).unwrap();
    let semantics =
        OperatorSemantics::new(AggregateKind::Incremental, WindowKind::Fixed { size: 100 });
    let mut store = choice
        .build(FactoryOptions::new())
        .create(&ctx(&dir, semantics, "rmw-op"))
        .unwrap();

    for round in 0..20u64 {
        for key in 0..10u64 {
            let k = key.to_le_bytes();
            let acc = store
                .take_aggregate(&k, w(0, 100))
                .unwrap()
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .unwrap_or(0);
            store
                .put_aggregate(&k, w(0, 100), &(acc + round + 1).to_le_bytes())
                .unwrap();
        }
    }
    store.checkpoint(ckpt.path()).unwrap();
    for key in 0..10u64 {
        store
            .put_aggregate(&key.to_le_bytes(), w(0, 100), &0u64.to_le_bytes())
            .unwrap();
    }
    store.restore(ckpt.path()).unwrap();

    let expect: u64 = (1..=20).sum();
    for key in 0..10u64 {
        let got = store
            .take_aggregate(&key.to_le_bytes(), w(0, 100))
            .unwrap()
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()));
        assert_eq!(got, Some(expect), "{}: key {key}", choice.name());
    }
    store.close().unwrap();
}

#[test]
fn append_recovery_all_backends() {
    for choice in BackendChoice::all_small_for_tests() {
        append_recovery(&choice);
    }
}

#[test]
fn rmw_recovery_all_backends() {
    for choice in BackendChoice::all_small_for_tests() {
        rmw_recovery(&choice);
    }
}

/// A checkpoint can restore into a *fresh* store in a different
/// directory — the cross-machine recovery path.
#[test]
fn restore_into_fresh_store() {
    for choice in BackendChoice::all_small_for_tests() {
        let dir_a = ScratchDir::new("rec-fresh-a").unwrap();
        let dir_b = ScratchDir::new("rec-fresh-b").unwrap();
        let ckpt = ScratchDir::new("rec-fresh-ckpt").unwrap();
        let semantics =
            OperatorSemantics::new(AggregateKind::FullList, WindowKind::Session { gap: 100 });
        let mut a = choice
            .build(FactoryOptions::new())
            .create(&ctx(&dir_a, semantics, "op"))
            .unwrap();
        for i in 0..50u64 {
            a.append(b"k", w(0, 100), &i.to_le_bytes(), i as i64)
                .unwrap();
        }
        a.checkpoint(ckpt.path()).unwrap();
        a.close().unwrap();

        let mut b = choice
            .build(FactoryOptions::new())
            .create(&ctx(&dir_b, semantics, "op"))
            .unwrap();
        b.restore(ckpt.path()).unwrap();
        let values = b.take_values(b"k", w(0, 100)).unwrap();
        assert_eq!(values.len(), 50, "backend {}", choice.name());
        b.close().unwrap();
    }
}
