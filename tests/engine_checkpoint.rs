//! Engine-level checkpoint / resume: the paper's fault-tolerance story
//! (§8) end to end.
//!
//! A job runs with an aligned checkpoint barrier injected after K source
//! tuples; each window operator snapshots its store and its engine state
//! (timers, sessions, count progress) when the barrier aligns. A second
//! run then *resumes*: operators restore from the checkpoint and the
//! source replays from offset K. The resumed run must emit exactly the
//! outputs the original run emitted after the barrier.

use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::Tuple;
use flowkv_nexmark::{EventGenerator, GeneratorConfig, QueryId, QueryParams};
use flowkv_spe::{run_job, BackendChoice, FactoryOptions, RunOptions};

fn sorted(mut v: Vec<Tuple>) -> Vec<(Vec<u8>, Vec<u8>, i64)> {
    let mut out: Vec<(Vec<u8>, Vec<u8>, i64)> =
        v.drain(..).map(|t| (t.key, t.value, t.timestamp)).collect();
    out.sort();
    out
}

fn source(num_events: u64) -> impl Iterator<Item = Tuple> + Send {
    EventGenerator::new(GeneratorConfig {
        num_events,
        seed: 21,
        events_per_second: 5_000,
        active_people: 40,
        active_auctions: 60,
        ..GeneratorConfig::default()
    })
    .tuples()
}

fn checkpoint_resume_roundtrip(query: QueryId, backend: &BackendChoice) {
    let events = 12_000u64;
    let checkpoint_at = 6_000u64;
    let params = QueryParams::new(500).with_parallelism(2);
    let job = query.build(params);

    let data = ScratchDir::new("eckpt-data").unwrap();
    let ckpt = ScratchDir::new("eckpt-snap").unwrap();

    // Run 1: full stream with a barrier after `checkpoint_at` tuples.
    let mut opts = RunOptions::new(data.path().join("run1"));
    opts.collect_outputs = true;
    opts.watermark_interval = 100;
    opts.checkpoint_after_tuples = Some(checkpoint_at);
    opts.checkpoint_dir = Some(ckpt.path().to_path_buf());
    let full = run_job(
        &job,
        source(events),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", query.name(), backend.name()));
    assert!(full.checkpoint_taken, "barrier never completed at the sink");

    // Expected post-checkpoint outputs: full minus pre (as multisets).
    let mut expected = sorted(full.outputs.clone());
    for pre in sorted(full.outputs_pre_checkpoint.clone()) {
        let pos = expected
            .binary_search(&pre)
            .expect("pre output missing from full set");
        expected.remove(pos);
    }

    // Run 2: restore from the checkpoint and replay from offset K.
    let mut opts = RunOptions::new(data.path().join("run2"));
    opts.collect_outputs = true;
    opts.watermark_interval = 100;
    opts.restore_from = Some(ckpt.path().to_path_buf());
    let resumed = run_job(
        &job,
        source(events).skip(checkpoint_at as usize),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap_or_else(|e| panic!("resume {} on {}: {e}", query.name(), backend.name()));

    assert_eq!(
        sorted(resumed.outputs),
        expected,
        "{} on {}: resumed outputs diverge from the original post-checkpoint outputs",
        query.name(),
        backend.name()
    );
}

#[test]
fn rmw_session_query_resumes_exactly() {
    for backend in BackendChoice::all_small_for_tests() {
        checkpoint_resume_roundtrip(QueryId::Q11, &backend);
    }
}

#[test]
fn aur_median_query_resumes_exactly() {
    for backend in BackendChoice::all_small_for_tests() {
        checkpoint_resume_roundtrip(QueryId::Q11Median, &backend);
    }
}

#[test]
fn aar_fixed_window_query_resumes_exactly() {
    for backend in BackendChoice::all_small_for_tests() {
        checkpoint_resume_roundtrip(QueryId::Q7, &backend);
    }
}

#[test]
fn global_window_query_resumes_exactly() {
    checkpoint_resume_roundtrip(QueryId::Q12, &BackendChoice::all_small_for_tests()[1]);
}

#[test]
fn consecutive_window_query_resumes_exactly() {
    // Q5 has two chained window stages: the barrier must align through
    // the intermediate repartitioning and both operators must snapshot.
    checkpoint_resume_roundtrip(QueryId::Q5, &BackendChoice::all_small_for_tests()[1]);
}

#[test]
fn windowed_join_resumes_exactly() {
    checkpoint_resume_roundtrip(QueryId::Q8, &BackendChoice::all_small_for_tests()[1]);
}

#[test]
fn interval_join_resumes_exactly() {
    use flowkv_spe::join::{tag_left, tag_right};
    use flowkv_spe::JobBuilder;
    use std::sync::Arc;

    // A deterministic two-sided stream.
    let tuples: Vec<Tuple> = (0..4_000i64)
        .map(|i| {
            let key = format!("k{}", i % 7).into_bytes();
            let value = if i % 3 == 0 {
                tag_left(format!("L{i}").as_bytes())
            } else {
                tag_right(format!("R{i}").as_bytes())
            };
            Tuple::new(key, value, i)
        })
        .collect();
    let job = JobBuilder::new("join-ckpt")
        .parallelism(2)
        .interval_join(
            "j",
            -30,
            30,
            32,
            Arc::new(|_k, l: &[u8], r: &[u8]| {
                let mut v = l.to_vec();
                v.push(b'|');
                v.extend_from_slice(r);
                Some(v)
            }),
        )
        .build();

    let data = ScratchDir::new("join-ckpt-data").unwrap();
    let ckpt = ScratchDir::new("join-ckpt-snap").unwrap();
    let backend = &BackendChoice::all_small_for_tests()[1];

    let mut opts = RunOptions::new(data.path().join("run1"));
    opts.collect_outputs = true;
    opts.watermark_interval = 100;
    opts.checkpoint_after_tuples = Some(2_000);
    opts.checkpoint_dir = Some(ckpt.path().to_path_buf());
    let full = run_job(
        &job,
        tuples.clone().into_iter(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    assert!(full.checkpoint_taken);

    let mut expected = sorted(full.outputs.clone());
    for pre in sorted(full.outputs_pre_checkpoint.clone()) {
        let pos = expected.binary_search(&pre).expect("pre output in full");
        expected.remove(pos);
    }

    let mut opts = RunOptions::new(data.path().join("run2"));
    opts.collect_outputs = true;
    opts.watermark_interval = 100;
    opts.restore_from = Some(ckpt.path().to_path_buf());
    let resumed = run_job(
        &job,
        tuples.into_iter().skip(2_000),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    assert_eq!(sorted(resumed.outputs), expected);
}

#[test]
fn resume_replays_from_a_durable_log_source() {
    // The full recovery story (paper §8): tuples persisted to a
    // rewindable log (the Kafka analog), checkpoint at offset K, crash,
    // then restore state and replay the log from K.
    use flowkv_spe::source::{LogSource, TupleLog};

    let events = 10_000u64;
    let checkpoint_at = 5_000u64;
    let log_dir = ScratchDir::new("eckpt-log").unwrap();
    let log_path = log_dir.path().join("stream.log");
    TupleLog::record(&log_path, source(events)).unwrap();

    let params = QueryParams::new(500).with_parallelism(2);
    let job = QueryId::Q11.build(params);
    let data = ScratchDir::new("eckpt-log-data").unwrap();
    let ckpt = ScratchDir::new("eckpt-log-snap").unwrap();
    let backend = &BackendChoice::all_small_for_tests()[1];

    let mut opts = RunOptions::new(data.path().join("run1"));
    opts.collect_outputs = true;
    opts.watermark_interval = 100;
    opts.checkpoint_after_tuples = Some(checkpoint_at);
    opts.checkpoint_dir = Some(ckpt.path().to_path_buf());
    let full = run_job(
        &job,
        LogSource::open(&log_path).unwrap(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    assert!(full.checkpoint_taken);
    assert_eq!(full.input_count, events);

    let mut expected = sorted(full.outputs.clone());
    for pre in sorted(full.outputs_pre_checkpoint.clone()) {
        let pos = expected.binary_search(&pre).expect("pre output in full");
        expected.remove(pos);
    }

    let mut opts = RunOptions::new(data.path().join("run2"));
    opts.collect_outputs = true;
    opts.watermark_interval = 100;
    opts.restore_from = Some(ckpt.path().to_path_buf());
    let resumed = run_job(
        &job,
        LogSource::open_at(&log_path, checkpoint_at).unwrap(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    assert_eq!(resumed.input_count, events - checkpoint_at);
    assert_eq!(sorted(resumed.outputs), expected);
}
