//! Trace-export validation: the cluster's Chrome trace-event JSON is
//! schema-valid with one pid per worker, span-ring wraparound preserves
//! recording order, and the Q11 attribution table reconciles with the
//! sink's end-to-end `LatencySummary`.

use std::collections::BTreeSet;
use std::sync::Arc;

use flowkv_common::scratch::ScratchDir;
use flowkv_common::trace::{self, SpanPhase, Tracer};
use flowkv_nexmark::{EventGenerator, GeneratorConfig, QueryId, QueryParams};
use flowkv_spe::{run_cluster, run_job, BackendChoice, FactoryOptions, RunOptions};
use proptest::prelude::*;

const NUM_EVENTS: u64 = 8_000;
const WM_INTERVAL: usize = 100;

fn generator() -> EventGenerator {
    EventGenerator::new(GeneratorConfig {
        num_events: NUM_EVENTS,
        seed: 7,
        events_per_second: 5_000,
        active_people: 50,
        active_auctions: 80,
        ..GeneratorConfig::default()
    })
}

/// A sharded Q7 run at N=2 must export a trace that passes full schema
/// validation (stack-disciplined begin/end per lane, monotone
/// timestamps, every parent resolving, no span left open — all checked
/// by `validate_chrome_trace`) with exactly one Chrome pid per worker.
#[test]
fn q7_cluster_trace_exports_one_pid_per_worker() {
    let dir = ScratchDir::new("trace-q7-cluster").unwrap();
    let job = QueryId::Q7.build(QueryParams::new(1_000).with_parallelism(2));
    let backend = &BackendChoice::all_small_for_tests()[0];
    let path = dir.path().join("q7.trace.json");
    let opts = RunOptions::builder(dir.path().join("run"))
        .watermark_interval(WM_INTERVAL)
        .workers(2)
        .trace_out(&path)
        .build();
    let result = run_cluster(
        &job,
        generator().tuples(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .expect("q7 sharded run");
    assert!(!result.outputs.is_empty(), "q7 produced no output");

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let stats = trace::validate_chrome_trace(&text).expect("schema-valid trace");
    assert!(stats.spans > 0, "no spans recorded");
    let events = trace::parse_chrome_trace(&text).unwrap();
    let pids: BTreeSet<u32> = events.iter().map(|e| e.pid).collect();
    assert_eq!(
        pids,
        BTreeSet::from([0, 1]),
        "expected exactly the two shard pids (coordinator records no \
         events without a rescale)"
    );
}

proptest! {
    /// Ring wraparound only ever evicts the oldest events: whatever the
    /// capacity and load, the ring holds exactly the most recent
    /// `min(recorded, capacity)` events in recording order, the shared
    /// dropped counter accounts for the rest, and the wrapped ring
    /// still exports as schema-valid Chrome JSON (unmatched halves of
    /// evicted spans are dropped on export, not emitted dangling).
    #[test]
    fn span_ring_wraparound_never_reorders(cap in 16u64..96, spans in 0u64..240) {
        let tracer = Tracer::with_capacity(cap as usize);
        let rec = tracer.thread(0, "worker");
        // Each iteration records two events (begin + end), both tagged
        // with the iteration's sequence number.
        for i in 0..spans {
            let span = rec.begin_with("work", "compute", None, vec![("seq", i as i64)]);
            rec.end_with(span, "work", "compute", vec![("seq", i as i64)]);
        }
        let recorded = 2 * spans;
        // Capacity below 16 is clamped up to 16.
        let effective_cap = (cap as usize).max(16) as u64;
        let kept = recorded.min(effective_cap);

        let events = rec.snapshot();
        prop_assert_eq!(events.len() as u64, kept);
        prop_assert_eq!(tracer.dropped(), recorded - kept);
        // The survivors are exactly the tail of the recorded sequence:
        // B0 E0 B1 E1 ... — same order, nothing skipped.
        let got: Vec<(u64, bool)> = events
            .iter()
            .map(|e| {
                let seq = e.args.iter().find(|(k, _)| *k == "seq").unwrap().1 as u64;
                (seq, e.phase == SpanPhase::Begin)
            })
            .collect();
        let want: Vec<(u64, bool)> = (0..spans)
            .flat_map(|i| [(i, true), (i, false)])
            .skip((recorded - kept) as usize)
            .collect();
        prop_assert_eq!(got, want);
        prop_assert!(events.windows(2).all(|w| w[0].nanos <= w[1].nanos));

        let json = trace::chrome_trace_json(&tracer.snapshot());
        let stats = trace::validate_chrome_trace(&json);
        prop_assert!(stats.is_ok(), "wrapped ring export invalid: {:?}", stats);
    }
}

/// The attribution table must reconcile with the sink's latency
/// summary: restricted to traces the sink completed (whose `batch_done`
/// total measures source departure → sink arrival, the exact interval
/// `LatencySummary` samples), the per-stage rows decompose the
/// end-to-end total exactly, and the slowest trace agrees with the
/// summary's max within 5%.
#[test]
fn q11_attribution_reconciles_with_latency_summary() {
    let dir = ScratchDir::new("trace-q11-reconcile").unwrap();
    let job = QueryId::Q11.build(QueryParams::new(1_000).with_parallelism(2));
    let backend = &BackendChoice::all_small_for_tests()[0];
    let tracer = Tracer::new();
    let opts = RunOptions::builder(dir.path().join("run"))
        .watermark_interval(WM_INTERVAL)
        .record_latency(true)
        .trace(Arc::clone(&tracer))
        .trace_sample(1)
        .build();
    let result = run_job(
        &job,
        generator().tuples(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .expect("q11 run");
    assert!(result.latency.count > 0, "no latency samples");

    let events = trace::flatten(&tracer.drain());
    let sink_traces: BTreeSet<u64> = events
        .iter()
        .filter(|e| e.name == "batch_done" && e.cat == "sink")
        .map(|e| e.trace)
        .collect();
    assert!(!sink_traces.is_empty(), "no sink-completed traces");
    let filtered: Vec<_> = events
        .iter()
        .filter(|e| sink_traces.contains(&e.trace))
        .cloned()
        .collect();
    let a = trace::attribution(&filtered);
    assert!(a.traces > 0, "attribution reconstructed no traces");

    // The stage rows decompose the end-to-end total exactly — `other`
    // is defined as the per-trace residual.
    let stage_sum: u64 = a.rows.iter().map(|r| r.total_nanos).sum();
    assert_eq!(
        stage_sum, a.total.total_nanos,
        "stage rows do not sum to the total"
    );

    // With fewer than 1000 traces the nearest-rank p999 is the max, and
    // the sink histogram tracks its max exactly — so the two ends of
    // the pipeline must agree on the slowest source→sink interval.
    assert!(
        a.traces <= 1000,
        "p999==max shortcut needs <=1000 traces, got {}",
        a.traces
    );
    let attr_max = a.total.p999 as f64;
    let lat_max = result.latency.max as f64;
    let rel = (attr_max - lat_max).abs() / lat_max.max(1.0);
    assert!(
        rel <= 0.05,
        "attribution max {:.3} ms vs latency max {:.3} ms: {:.1}% apart",
        attr_max / 1e6,
        lat_max / 1e6,
        rel * 100.0
    );
}
