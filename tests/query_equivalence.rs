//! Cross-backend equivalence: every NEXMark query must produce exactly
//! the same results on the in-memory store, FlowKV, the LSM baseline,
//! and the hash baseline. The in-memory store acts as the reference
//! semantics; any divergence in a persistent store is a correctness bug.

use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::Tuple;
use flowkv_nexmark::{EventGenerator, GeneratorConfig, QueryId, QueryParams};
use flowkv_spe::{run_job, BackendChoice, FactoryOptions, RunOptions};

/// Runs `query` on `backend` over a small deterministic stream and
/// returns its outputs as sorted `(key, value, ts)` triples.
fn run_query(query: QueryId, backend: &BackendChoice) -> Vec<(Vec<u8>, Vec<u8>, i64)> {
    let dir = ScratchDir::new(&format!("equiv-{}-{}", query.name(), backend.name())).unwrap();
    let cfg = GeneratorConfig {
        num_events: 20_000,
        seed: 7,
        events_per_second: 5_000,
        active_people: 50,
        active_auctions: 80,
        ..GeneratorConfig::default()
    };
    let params = QueryParams::new(1_000).with_parallelism(2);
    let job = query.build(params);
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    opts.watermark_interval = 100;
    let result = run_job(
        &job,
        EventGenerator::new(cfg).tuples(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", query.name(), backend.name()));
    let mut outputs: Vec<(Vec<u8>, Vec<u8>, i64)> = result
        .outputs
        .into_iter()
        .map(
            |Tuple {
                 key,
                 value,
                 timestamp,
             }| (key, value, timestamp),
        )
        .collect();
    outputs.sort();
    outputs
}

fn assert_equivalent(query: QueryId) {
    let backends = BackendChoice::all_small_for_tests();
    let reference = run_query(query, &backends[0]);
    assert!(
        !reference.is_empty(),
        "{}: reference run produced no output",
        query.name()
    );
    for backend in &backends[1..] {
        let got = run_query(query, backend);
        assert_eq!(
            got,
            reference,
            "{} diverges on backend {}",
            query.name(),
            backend.name()
        );
    }
}

#[test]
fn q5_equivalent_across_backends() {
    assert_equivalent(QueryId::Q5);
}

#[test]
fn q5_append_equivalent_across_backends() {
    assert_equivalent(QueryId::Q5Append);
}

#[test]
fn q7_equivalent_across_backends() {
    assert_equivalent(QueryId::Q7);
}

#[test]
fn q7_session_equivalent_across_backends() {
    assert_equivalent(QueryId::Q7Session);
}

#[test]
fn q8_equivalent_across_backends() {
    assert_equivalent(QueryId::Q8);
}

#[test]
fn q11_equivalent_across_backends() {
    assert_equivalent(QueryId::Q11);
}

#[test]
fn q11_median_equivalent_across_backends() {
    assert_equivalent(QueryId::Q11Median);
}

#[test]
fn q12_equivalent_across_backends() {
    assert_equivalent(QueryId::Q12);
}
