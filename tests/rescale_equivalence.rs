//! Rescale equivalence matrix: for every backend, Q7 / Q11-Median / Q11
//! must produce byte-identical committed output at N=1, at N=4, and
//! across an N=2→4 mid-job rescale — and all three must match the plain
//! single-process `run_job` result.
//!
//! The crash cell additionally injects one random store-operation crash
//! into a sharded run (drawn from the `FLOWKV_FAULT_SEED` SplitMix64
//! stream, like `crash_matrix`) and requires the cluster's per-worker
//! deterministic-backoff retry to recover with identical output. The
//! seed is printed so any failure replays with
//! `FLOWKV_FAULT_SEED=<seed> cargo test`.

mod common;

use common::{fault_seed, nexmark_generator, sorted_triples};
use flowkv_common::scratch::ScratchDir;
use flowkv_common::vfs::{FaultPlan, FaultVfs, StdVfs};
use flowkv_nexmark::{EventGenerator, QueryId, QueryParams};
use flowkv_spe::{run_cluster, run_job, BackendChoice, FactoryOptions, RunOptions};

const NUM_EVENTS: u64 = 8_000;
const DEFAULT_SEED: u64 = 0xF10C;
const WM_INTERVAL: usize = 100;

fn generator() -> EventGenerator {
    nexmark_generator(NUM_EVENTS, 7)
}

fn rescale_cell(query: QueryId, backend: &BackendChoice) {
    let dir = ScratchDir::new(&format!("rescale-eq-{}-{}", query.name(), backend.name())).unwrap();
    let job = query.build(QueryParams::new(1_000).with_parallelism(2));

    // Plain single-process reference.
    let ref_opts = RunOptions::builder(dir.path().join("ref"))
        .collect_outputs(true)
        .watermark_interval(WM_INTERVAL)
        .build();
    let reference = run_job(
        &job,
        generator().tuples(),
        backend.build(FactoryOptions::new()),
        &ref_opts,
    )
    .unwrap_or_else(|e| panic!("{} on {}: reference: {e}", query.name(), backend.name()));
    let want = sorted_triples(&reference.outputs);
    assert!(
        !want.is_empty(),
        "{} on {}: reference produced no output",
        query.name(),
        backend.name()
    );

    // Sharded at N=1 and N=4.
    for n in [1usize, 4] {
        let opts = RunOptions::builder(dir.path().join(format!("n{n}")))
            .watermark_interval(WM_INTERVAL)
            .workers(n)
            .build();
        let result = run_cluster(
            &job,
            generator().tuples(),
            backend.build(FactoryOptions::new()),
            &opts,
        )
        .unwrap_or_else(|e| panic!("{} on {} N={n}: {e}", query.name(), backend.name()));
        assert_eq!(
            sorted_triples(&result.outputs),
            want,
            "{} on {}: N={n} diverged from the single-process run",
            query.name(),
            backend.name()
        );
    }

    // Live rescale N=2→4 at the stream's midpoint.
    let ropts = RunOptions::builder(dir.path().join("rescale"))
        .watermark_interval(WM_INTERVAL)
        .workers(2)
        .rescale_to(4)
        .checkpoint(NUM_EVENTS / 2, dir.path().join("rescale-ckpt"))
        .build();
    let rescaled = run_cluster(
        &job,
        generator().tuples(),
        backend.build(FactoryOptions::new()),
        &ropts,
    )
    .unwrap_or_else(|e| panic!("{} on {} rescale: {e}", query.name(), backend.name()));
    assert_eq!(rescaled.workers, 4);
    let pause = rescaled
        .rescale_pause
        .expect("rescale must report its pause");
    assert!(pause.as_nanos() > 0);
    assert_eq!(
        sorted_triples(&rescaled.outputs),
        want,
        "{} on {}: N=2→4 rescale diverged from the single-process run",
        query.name(),
        backend.name()
    );
}

fn rescale_row(query: QueryId) {
    for backend in &BackendChoice::all_small_for_tests() {
        rescale_cell(query, backend);
    }
}

#[test]
fn rescale_equivalence_q7() {
    rescale_row(QueryId::Q7);
}

#[test]
fn rescale_equivalence_q11_median() {
    rescale_row(QueryId::Q11Median);
}

#[test]
fn rescale_equivalence_q11() {
    rescale_row(QueryId::Q11);
}

/// The crash cell: one injected store-op crash inside a sharded run;
/// the failing worker retries (deterministic seed-derived backoff) and
/// the merged output must still match the undisturbed run.
#[test]
fn sharded_crash_recovers_with_identical_output() {
    let seed = fault_seed(DEFAULT_SEED);
    println!("rescale matrix crash cell: FLOWKV_FAULT_SEED={seed} (set the env var to replay)");
    let query = QueryId::Q11;
    let backend = &BackendChoice::all_small_for_tests()[1];
    let dir = ScratchDir::new("rescale-crash").unwrap();
    let job = query.build(QueryParams::new(1_000).with_parallelism(2));

    let opts = |root: &str| {
        RunOptions::builder(dir.path().join(root))
            .watermark_interval(WM_INTERVAL)
            .workers(4)
            .build()
    };
    let clean = run_cluster(
        &job,
        generator().tuples(),
        backend.build(FactoryOptions::new()),
        &opts("clean"),
    )
    .expect("clean sharded run");

    // Count the run's store-op footprint, then crash inside it.
    let counter = FaultVfs::counting(StdVfs::shared());
    run_cluster(
        &job,
        generator().tuples(),
        backend.build(FactoryOptions::new().vfs(counter.clone())),
        &opts("count"),
    )
    .expect("counting run");
    let total_ops = counter.ops();
    assert!(total_ops > 0, "stores never touched the vfs");

    let plan = FaultPlan::random_crash(seed, total_ops * 9 / 10);
    let faulty = FaultVfs::new(StdVfs::shared(), plan);
    let mut copts = opts("crash");
    copts.max_restarts = 2;
    copts.restart_backoff = std::time::Duration::from_millis(1);
    let recovered = run_cluster(
        &job,
        generator().tuples(),
        backend.build(FactoryOptions::new().vfs(faulty.clone())),
        &copts,
    )
    .unwrap_or_else(|e| panic!("sharded run did not recover (seed {seed}): {e}"));
    let fired = faulty.fired();
    assert_eq!(
        fired.len(),
        1,
        "expected exactly one injected crash (seed {seed}), fired {fired:?}"
    );
    assert_eq!(
        sorted_triples(&recovered.outputs),
        sorted_triples(&clean.outputs),
        "recovered sharded output diverged (seed {seed}, crash at op {})",
        fired[0].0
    );
}
