//! Custom window functions end to end (paper §8, "Custom Window
//! Operations").
//!
//! A user-defined assigner (tumbling windows offset by 37 ms — a shape
//! no built-in window function expresses) runs through the engine. The
//! store sees only `WindowKind::Custom`, classifies the operator as
//! unaligned-read, and — when the user registers an ETT predictor — runs
//! predictive batch reads despite knowing nothing about the window
//! function itself.

use std::sync::Arc;

use flowkv::FlowKvConfig;
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::{Tuple, WindowId};
use flowkv_spe::functions::{decode_u64, FnProcess};
use flowkv_spe::job::{AggregateSpec, Job, JobBuilder};
use flowkv_spe::window::WindowAssigner;
use flowkv_spe::{run_job, BackendChoice, FactoryOptions, RunOptions};

const OFFSET: i64 = 37;
const SIZE: i64 = 500;

fn offset_tumbling() -> WindowAssigner {
    WindowAssigner::Custom {
        assign: Arc::new(|ts| {
            let start = (ts - OFFSET).div_euclid(SIZE) * SIZE + OFFSET;
            vec![WindowId::new(start, start + SIZE)]
        }),
    }
}

fn job() -> Job {
    JobBuilder::new("custom-windows")
        .parallelism(2)
        .window(
            "offset-count",
            offset_tumbling(),
            AggregateSpec::FullList(Arc::new(FnProcess::new(|_k, _w, vals| {
                vec![(vals.len() as u64).to_le_bytes().to_vec()]
            }))),
        )
        .build()
}

fn input() -> Vec<Tuple> {
    (0..20_000i64)
        .map(|i| {
            Tuple::new(
                format!("key-{}", i % 40).into_bytes(),
                1u64.to_le_bytes().to_vec(),
                i / 2,
            )
        })
        .collect()
}

fn run(backend: BackendChoice) -> Vec<(Vec<u8>, Vec<u8>, i64)> {
    let dir = ScratchDir::new("custom-win").unwrap();
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    opts.watermark_interval = 100;
    let result = run_job(
        &job(),
        input().into_iter(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    let mut out: Vec<(Vec<u8>, Vec<u8>, i64)> = result
        .outputs
        .into_iter()
        .map(|t| (t.key, t.value, t.timestamp))
        .collect();
    out.sort();
    out
}

#[test]
fn custom_windows_have_offset_boundaries() {
    let outputs = run(BackendChoice::all_small_for_tests().remove(0));
    assert!(!outputs.is_empty());
    // Output timestamps are window.end - 1, so (ts + 1 - OFFSET) must be
    // a multiple of the window size.
    for (_, _, ts) in &outputs {
        assert_eq!(
            (ts + 1 - OFFSET).rem_euclid(SIZE),
            0,
            "boundary {ts} not offset-aligned"
        );
    }
    // Counts conserve the input.
    let total: u64 = outputs.iter().map(|(_, v, _)| decode_u64(v)).sum();
    assert_eq!(total, 20_000);
}

#[test]
fn flowkv_matches_reference_on_custom_windows() {
    let reference = run(BackendChoice::all_small_for_tests().remove(0));
    let flowkv = run(BackendChoice::FlowKv(FlowKvConfig::small_for_tests()));
    assert_eq!(flowkv, reference);
}

#[test]
fn user_ett_predictor_enables_prefetching() {
    // Without a predictor, custom windows are unpredictable: FlowKV
    // falls back to per-window reads (misses only). With the §8 user
    // hint ("this custom window triggers at its end"), predictive batch
    // read engages and serves most reads from the prefetch buffer.
    let dir = ScratchDir::new("custom-ett").unwrap();
    let mut cfg = FlowKvConfig::small_for_tests();
    cfg.write_buffer_bytes = 2 << 10; // Force state through disk.
    let mut opts = RunOptions::new(dir.path());
    opts.watermark_interval = 100;
    let no_hint = run_job(
        &job(),
        input().into_iter(),
        BackendChoice::FlowKv(cfg.clone()).build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    let m = no_hint.store_metrics;
    assert_eq!(
        m.prefetch_hits, 0,
        "unpredictable windows must not prefetch"
    );
    assert!(m.prefetch_misses > 0, "expected disk reads without a hint");

    cfg.custom_ett = Some(Arc::new(|_key, window, _max_ts| Some(window.end)));
    let dir = ScratchDir::new("custom-ett-hint").unwrap();
    let mut opts = RunOptions::new(dir.path());
    opts.watermark_interval = 100;
    let hinted = run_job(
        &job(),
        input().into_iter(),
        BackendChoice::FlowKv(cfg).build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    let m = hinted.store_metrics;
    let hit_ratio = m.prefetch_hit_ratio().unwrap_or(0.0);
    assert!(
        hit_ratio > 0.5,
        "user ETT hint should enable batched reads, hit ratio {hit_ratio}"
    );
}
