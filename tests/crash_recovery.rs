//! Crash recovery: stores must reopen cleanly after a torn write.
//!
//! A crash mid-flush leaves a partial record at the tail of an
//! append-only log. On reopen, every store must truncate the torn tail
//! and serve the longest intact prefix — never fail to open, never
//! serve corrupt data. (Lost suffixes are re-supplied by source replay,
//! the engine-level recovery contract of paper §8.)

use std::fs::OpenOptions;
use std::path::Path;

use flowkv::aur::{AurConfig, AurStore};
use flowkv::ett::EttPredictor;
use flowkv::rmw::{RmwConfig, RmwStore};
use flowkv_common::metrics::StoreMetrics;
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::WindowId;
use flowkv_hashkv::{HashDb, HashDbConfig};

/// Chops `bytes` off the end of the largest file matching `suffix`.
fn tear_tail(dir: &Path, suffix: &str, bytes: u64) {
    let mut best: Option<(u64, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(suffix) {
            let len = entry.metadata().unwrap().len();
            if best.as_ref().is_none_or(|(l, _)| len > *l) {
                best = Some((len, entry.path()));
            }
        }
    }
    let (len, path) = best.unwrap_or_else(|| panic!("no {suffix} file in {}", dir.display()));
    assert!(len > bytes, "file too small to tear");
    let f = OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - bytes).unwrap();
}

fn w(start: i64, end: i64) -> WindowId {
    WindowId::new(start, end)
}

#[test]
fn aur_survives_torn_index_tail() {
    let dir = ScratchDir::new("crash-aur").unwrap();
    let cfg = AurConfig {
        write_buffer_bytes: 1 << 20,
        read_batch_ratio: 0.1,
        max_space_amplification: 1.5,
    };
    {
        let mut s = AurStore::open(
            dir.path(),
            cfg.clone(),
            EttPredictor::SessionGap { gap: 100 },
            StoreMetrics::new_shared(),
        )
        .unwrap();
        for i in 0..50u64 {
            s.append(
                format!("key-{i}").as_bytes(),
                w(0, 100),
                &i.to_le_bytes(),
                i as i64,
            )
            .unwrap();
        }
        s.flush().unwrap();
        // Another flush whose index record we will tear in half.
        s.append(b"torn-key", w(0, 100), b"torn-value", 99).unwrap();
        s.flush().unwrap();
        // The store is dropped without sync: simulate the crash by
        // tearing the tail of the durable file directly.
    }
    tear_tail(dir.path(), ".auri", 5);

    let mut s = AurStore::open(
        dir.path(),
        cfg,
        EttPredictor::SessionGap { gap: 100 },
        StoreMetrics::new_shared(),
    )
    .unwrap();
    // The intact prefix must be fully readable.
    for i in 0..50u64 {
        let got = s.take(format!("key-{i}").as_bytes(), w(0, 100)).unwrap();
        assert_eq!(got, vec![i.to_le_bytes().to_vec()], "key {i}");
    }
    // The torn record is gone, not corrupt.
    assert!(s.take(b"torn-key", w(0, 100)).unwrap().is_empty());
}

#[test]
fn rmw_survives_torn_log_tail() {
    let dir = ScratchDir::new("crash-rmw").unwrap();
    let cfg = RmwConfig {
        write_buffer_bytes: 1 << 20,
        max_space_amplification: 1.5,
    };
    {
        let mut s = RmwStore::open(dir.path(), cfg.clone(), StoreMetrics::new_shared()).unwrap();
        for i in 0..50u64 {
            s.put(format!("key-{i}").as_bytes(), w(0, 100), &i.to_le_bytes())
                .unwrap();
        }
        s.flush().unwrap();
        s.put(b"torn-key", w(0, 100), b"torn").unwrap();
        s.flush().unwrap();
    }
    tear_tail(dir.path(), ".rmw", 3);

    let mut s = RmwStore::open(dir.path(), cfg, StoreMetrics::new_shared()).unwrap();
    for i in 0..50u64 {
        let got = s.take(format!("key-{i}").as_bytes(), w(0, 100)).unwrap();
        assert_eq!(got, Some(i.to_le_bytes().to_vec()), "key {i}");
    }
    assert_eq!(s.take(b"torn-key", w(0, 100)).unwrap(), None);
}

#[test]
fn hashdb_survives_torn_log_tail() {
    let dir = ScratchDir::new("crash-hash").unwrap();
    let cfg = HashDbConfig {
        mem_budget: 1 << 20,
        ..HashDbConfig::small_for_tests()
    };
    {
        let mut db = HashDb::open(dir.path(), cfg.clone()).unwrap();
        for i in 0..50u64 {
            db.upsert(format!("key-{i}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        db.flush().unwrap();
        db.upsert(b"torn-key", b"torn").unwrap();
        db.flush().unwrap();
    }
    tear_tail(dir.path(), "hybrid.log", 2);

    let db = HashDb::open(dir.path(), cfg).unwrap();
    for i in 0..50u64 {
        assert_eq!(
            db.read(format!("key-{i}").as_bytes()).unwrap(),
            Some(i.to_le_bytes().to_vec()),
            "key {i}"
        );
    }
    assert_eq!(db.read(b"torn-key").unwrap(), None);
}

#[test]
fn aar_survives_torn_window_file_tail() {
    use flowkv::aar::AarStore;
    let dir = ScratchDir::new("crash-aar").unwrap();
    {
        let mut s = AarStore::open(dir.path(), 1 << 20, 8, StoreMetrics::new_shared()).unwrap();
        for i in 0..50u64 {
            s.append(format!("key-{i}").as_bytes(), w(0, 100), &i.to_le_bytes())
                .unwrap();
        }
        s.flush().unwrap();
        s.append(b"torn-key", w(0, 100), b"torn").unwrap();
        s.flush().unwrap();
    }
    tear_tail(dir.path(), ".aar", 3);

    // The AAR read path reads sequentially; a torn tail surfaces as a
    // clean end of the drain at the last intact record.
    let mut s = AarStore::open(dir.path(), 1 << 20, 8, StoreMetrics::new_shared()).unwrap();
    let mut keys = Vec::new();
    loop {
        match s.get_window_chunk(w(0, 100)) {
            Ok(Some(chunk)) => keys.extend(chunk.into_iter().map(|(k, _)| k)),
            Ok(None) => break,
            Err(e) => {
                // Tail corruption is also acceptable as a detected error,
                // but must not appear before the intact prefix is served.
                assert!(e.is_corruption(), "unexpected error {e}");
                break;
            }
        }
    }
    assert!(keys.len() >= 50, "intact prefix lost: {} keys", keys.len());
}
