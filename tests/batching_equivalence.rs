//! Micro-batched exchange equivalence: for each FlowKV access pattern
//! (Q7 = AAR, Q11-Median = AUR, Q11 = RMW), a batched run must produce
//! byte-identical outputs to the classic tuple-at-a-time run
//! (`batch_size = 1`). A second pass injects a mid-stream checkpoint
//! barrier and additionally requires the *pre-checkpoint* output split
//! to stay exact — batches are flushed before every barrier, so batching
//! must never smear tuples across the alignment boundary.

mod common;

use common::{nexmark_generator, sorted_owned as sorted, SortedOutputs};
use flowkv::FlowKvConfig;
use flowkv_common::scratch::ScratchDir;
use flowkv_nexmark::{QueryId, QueryParams};
use flowkv_spe::{run_job, BackendChoice, FactoryOptions, RunOptions};

/// Runs `query` on FlowKV with the given exchange batch size, optionally
/// with a checkpoint barrier after 12 000 source tuples (late enough
/// that some windows have already closed and emitted). Returns the
/// sorted full outputs and (when checkpointing) the sorted
/// pre-checkpoint outputs.
fn run_batched(
    query: QueryId,
    batch_size: usize,
    checkpoint: bool,
) -> (SortedOutputs, SortedOutputs) {
    let dir = ScratchDir::new(&format!(
        "batch-equiv-{}-{batch_size}-{checkpoint}",
        query.name()
    ))
    .unwrap();
    let ckpt = ScratchDir::new(&format!(
        "batch-equiv-ckpt-{}-{batch_size}-{checkpoint}",
        query.name()
    ))
    .unwrap();
    let backend = BackendChoice::FlowKv(FlowKvConfig::small_for_tests());
    let params = QueryParams::new(1_000).with_parallelism(2);
    let job = query.build(params);
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    opts.record_latency = true;
    opts.watermark_interval = 100;
    opts.batch_size = batch_size;
    if checkpoint {
        opts.checkpoint_after_tuples = Some(12_000);
        opts.checkpoint_dir = Some(ckpt.path().to_path_buf());
    }
    let result = run_job(
        &job,
        nexmark_generator(20_000, 11).tuples(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap_or_else(|e| panic!("{} batch={batch_size}: {e}", query.name()));
    if checkpoint {
        assert!(
            result.checkpoint_taken,
            "{} batch={batch_size}: barrier never completed at the sink",
            query.name()
        );
    }
    assert_eq!(
        result.latency.count,
        result.output_count,
        "{} batch={batch_size}: latency must be sampled once per tuple, not per batch",
        query.name()
    );
    (
        sorted(result.outputs),
        sorted(result.outputs_pre_checkpoint),
    )
}

fn assert_batching_invisible(query: QueryId) {
    let (reference, _) = run_batched(query, 1, false);
    assert!(
        !reference.is_empty(),
        "{}: reference run produced no output",
        query.name()
    );
    let (batched, _) = run_batched(query, 256, false);
    assert_eq!(
        batched,
        reference,
        "{}: batch_size=256 diverges from tuple-at-a-time",
        query.name()
    );

    // With a mid-stream barrier, the exact pre-checkpoint split must
    // also be preserved: flush-before-barrier keeps alignment exact.
    let (ckpt_ref, pre_ref) = run_batched(query, 1, true);
    let (ckpt_batched, pre_batched) = run_batched(query, 256, true);
    assert_eq!(
        ckpt_batched,
        ckpt_ref,
        "{}: checkpointed batch_size=256 run diverges",
        query.name()
    );
    assert!(
        !pre_ref.is_empty(),
        "{}: no output arrived before the checkpoint barrier",
        query.name()
    );
    assert_eq!(
        pre_batched,
        pre_ref,
        "{}: pre-checkpoint output split moved under batching",
        query.name()
    );
}

#[test]
fn q7_aar_batching_invisible() {
    assert_batching_invisible(QueryId::Q7);
}

#[test]
fn q11_median_aur_batching_invisible() {
    assert_batching_invisible(QueryId::Q11Median);
}

#[test]
fn q11_rmw_batching_invisible() {
    assert_batching_invisible(QueryId::Q11);
}
