//! Shared run-compare-checksum harness for the equivalence matrices
//! (`batching_equivalence`, `async_ring_equivalence`,
//! `rescale_equivalence`, `crash_matrix`, `tiered_equivalence`).
//!
//! Every matrix follows the same recipe: generate a deterministic
//! NEXMark stream, run a reference configuration and a configuration
//! under test, and require byte-identical sorted output triples — with
//! any per-cell randomness derived from the one `FLOWKV_FAULT_SEED`
//! stream so a CI failure replays from a single number.
#![allow(dead_code)]

use flowkv_common::types::Tuple;
use flowkv_nexmark::{EventGenerator, GeneratorConfig, QueryId};
use flowkv_spe::BackendChoice;

/// The replayable fault/randomness seed: `FLOWKV_FAULT_SEED` when set,
/// else the matrix's own default (each suite uses a distinct default so
/// their unseeded runs exercise different crash points).
pub fn fault_seed(default: u64) -> u64 {
    std::env::var("FLOWKV_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The matrices' common NEXMark stream shape: only the event count and
/// generator seed vary between suites.
pub fn nexmark_generator(num_events: u64, seed: u64) -> EventGenerator {
    EventGenerator::new(GeneratorConfig {
        num_events,
        seed,
        events_per_second: 5_000,
        active_people: 50,
        active_auctions: 80,
        ..GeneratorConfig::default()
    })
}

/// Sorted `(key, value, timestamp)` triples — the canonical
/// order-insensitive output checksum every equivalence assert compares.
pub type SortedOutputs = Vec<(Vec<u8>, Vec<u8>, i64)>;

/// Borrowing variant: checksum a result's outputs without consuming it.
pub fn sorted_triples(tuples: &[Tuple]) -> SortedOutputs {
    let mut v: SortedOutputs = tuples
        .iter()
        .map(|t| (t.key.clone(), t.value.clone(), t.timestamp))
        .collect();
    v.sort();
    v
}

/// Owning variant for call sites that are done with the tuples.
pub fn sorted_owned(tuples: Vec<Tuple>) -> SortedOutputs {
    let mut v: SortedOutputs = tuples
        .into_iter()
        .map(
            |Tuple {
                 key,
                 value,
                 timestamp,
             }| (key, value, timestamp),
        )
        .collect();
    v.sort();
    v
}

/// Distinct per-cell randomness (crash points, shuffle seeds), all
/// reproducible from the one suite seed. `round` distinguishes repeated
/// runs of the same cell; `round = 0` matches the historical
/// single-round derivation, keeping old seeds' crash points replayable.
pub fn cell_seed(seed: u64, query: QueryId, backend: &BackendChoice, round: u64) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15 ^ round.wrapping_mul(0xD134_2543_DE82_EF95);
    for b in query.name().bytes().chain(backend.name().bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h
}
