//! Schema and semantics checks of the JSONL telemetry stream.
//!
//! Runs real NEXMark jobs with `RunOptions::telemetry_out` set and
//! validates the file the writer thread produced: every line passes the
//! checked-in schema validator, snapshot sequence numbers and operator
//! watermarks advance monotonically, stall counters never regress, and
//! the Q11-Median (AUR session windows) flight record carries `"ett"`
//! events from which prefetch trigger-time error is computable.

use std::sync::Arc;
use std::time::Duration;

use flowkv::{FlowKvConfig, FlowKvFactory};
use flowkv_common::scratch::ScratchDir;
use flowkv_common::telemetry::{parse_json, validate_jsonl_line, Json};
use flowkv_nexmark::{EventGenerator, GeneratorConfig, QueryId, QueryParams};
use flowkv_spe::{run_job, RunOptions};

fn generator(events: u64) -> GeneratorConfig {
    GeneratorConfig {
        num_events: events,
        seed: 11,
        first_ts: 0,
        events_per_second: 10_000,
        active_people: 400,
        active_auctions: 400,
        hot_ratio: 0.1,
        out_of_order_ms: 0,
    }
}

/// Runs `query` with the JSONL writer attached and returns the parsed,
/// schema-validated lines. `io_threads > 0` turns on the background I/O
/// ring (asynchronous prefetch).
fn run_with_jsonl(query: QueryId, events: u64, scratch: &str, io_threads: usize) -> Vec<Json> {
    let dir = ScratchDir::new(scratch).unwrap();
    let out_path = dir.path().join("telemetry.jsonl");
    let job = query.build(QueryParams::new(1_000).with_parallelism(2));
    let mut opts = RunOptions::new(dir.path());
    opts.watermark_interval = 100;
    opts.record_latency = true;
    opts.telemetry_out = Some(out_path.clone());
    opts.telemetry_interval = Duration::from_millis(25);
    opts.io_threads = io_threads;
    let factory = Arc::new(FlowKvFactory::new(FlowKvConfig::small_for_tests()));
    run_job(
        &job,
        EventGenerator::new(generator(events)).tuples(),
        factory,
        &opts,
    )
    .expect("job run failed");

    let text = std::fs::read_to_string(&out_path).expect("telemetry file missing");
    assert!(!text.is_empty(), "telemetry file is empty");
    text.lines()
        .map(|line| {
            validate_jsonl_line(line).unwrap_or_else(|e| panic!("bad line: {e}\n{line}"));
            parse_json(line).expect("validated line failed to parse")
        })
        .collect()
}

/// Extracts `metrics` entries of one kind whose name starts with `prefix`,
/// as `(name, value)` pairs, from a snapshot line.
fn metric_values<'a>(snapshot: &'a Json, prefix: &str, kind: &str) -> Vec<(&'a str, i64)> {
    let metrics = snapshot
        .get("metrics")
        .and_then(Json::as_obj)
        .expect("snapshot without metrics object");
    metrics
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .filter(|(_, v)| v.get("kind").and_then(Json::as_str) == Some(kind))
        .map(|(name, v)| {
            let value = v
                .get("value")
                .and_then(Json::as_i64)
                .expect("metric without integer value");
            (name.as_str(), value)
        })
        .collect()
}

#[test]
fn q7_jsonl_stream_is_well_formed_and_monotone() {
    let lines = run_with_jsonl(QueryId::Q7, 60_000, "telemetry-q7", 0);
    let snapshots: Vec<&Json> = lines
        .iter()
        .filter(|l| l.get("type").and_then(Json::as_str) == Some("snapshot"))
        .collect();
    assert!(
        snapshots.len() >= 2,
        "expected multiple snapshots, got {}",
        snapshots.len()
    );

    // Snapshot sequence numbers strictly increase.
    let seqs: Vec<i64> = snapshots
        .iter()
        .map(|s| s.get("seq").and_then(Json::as_i64).expect("missing seq"))
        .collect();
    assert!(
        seqs.windows(2).all(|w| w[1] > w[0]),
        "snapshot seq not strictly increasing: {seqs:?}"
    );

    // Per-operator watermarks advance monotonically across snapshots,
    // and the lag gauge derived from them never goes negative.
    let mut last_watermark: std::collections::HashMap<String, i64> = Default::default();
    for snap in &snapshots {
        for (name, value) in metric_values(snap, "operator_watermark", "gauge") {
            if name.contains("watermark_lag") {
                assert!(value >= 0, "negative watermark lag in {name}: {value}");
                continue;
            }
            let prev = last_watermark.insert(name.to_string(), value);
            if let Some(prev) = prev {
                assert!(
                    value >= prev,
                    "watermark regressed in {name}: {prev} -> {value}"
                );
            }
        }
    }
    assert!(
        last_watermark.values().any(|&w| w > 0),
        "no operator watermark ever advanced"
    );

    // Backpressure-stall counters are non-negative and never regress.
    let mut last_stall: std::collections::HashMap<String, i64> = Default::default();
    let mut saw_stall_metric = false;
    for snap in &snapshots {
        for (name, value) in metric_values(snap, "exchange_stall_nanos", "counter") {
            saw_stall_metric = true;
            assert!(value >= 0, "negative stall counter in {name}: {value}");
            let prev = last_stall.insert(name.to_string(), value);
            if let Some(prev) = prev {
                assert!(
                    value >= prev,
                    "stall counter regressed in {name}: {prev} -> {value}"
                );
            }
        }
    }
    assert!(saw_stall_metric, "no exchange_stall_nanos counter emitted");

    // The executor's core per-operator instruments are all present in
    // the final snapshot.
    let terminal = snapshots.last().unwrap();
    for prefix in [
        "operator_busy_nanos",
        "operator_idle_nanos",
        "operator_tuples_total",
        "operator_queue_depth",
        "exchange_batch_fill",
        "sink_latency_nanos",
        "source_tuples_total",
    ] {
        let metrics = terminal.get("metrics").and_then(Json::as_obj).unwrap();
        assert!(
            metrics.iter().any(|(name, _)| name.starts_with(prefix)),
            "terminal snapshot missing {prefix}"
        );
    }
}

#[test]
fn prefetch_families_report_ring_accuracy() {
    let lines = run_with_jsonl(QueryId::Q11Median, 60_000, "telemetry-prefetch", 2);
    let terminal = lines
        .iter()
        .rfind(|l| l.get("type").and_then(Json::as_str) == Some("snapshot"))
        .expect("run produced no snapshots");

    // Every counter of the prefetch-accuracy family is present with the
    // right kind, and all values are sane.
    let mut totals: std::collections::HashMap<&str, i64> = Default::default();
    for prefix in [
        "prefetch_issued_total",
        "prefetch_hits_total",
        "prefetch_late_total",
        "prefetch_wasted_bytes",
    ] {
        let values = metric_values(terminal, prefix, "counter");
        assert!(!values.is_empty(), "terminal snapshot missing {prefix}");
        for (name, value) in values {
            assert!(value >= 0, "negative prefetch counter {name}: {value}");
            *totals.entry(prefix).or_default() += value;
        }
    }

    // The ring had work to do on this AUR query, and a prefetch can only
    // be served after it was issued.
    assert!(totals["prefetch_issued_total"] > 0, "ring issued nothing");
    assert!(
        totals["prefetch_issued_total"] >= totals["prefetch_hits_total"],
        "more hits than issues: {totals:?}"
    );

    // Timeliness is a histogram: no scalar value, but count/sum fields.
    let metrics = terminal.get("metrics").and_then(Json::as_obj).unwrap();
    let timeliness: Vec<_> = metrics
        .iter()
        .filter(|(name, _)| name.starts_with("prefetch_timeliness_ms"))
        .collect();
    assert!(
        !timeliness.is_empty(),
        "terminal snapshot missing prefetch_timeliness_ms"
    );
    let mut observations = 0i64;
    for (name, v) in timeliness {
        assert_eq!(
            v.get("kind").and_then(Json::as_str),
            Some("histogram"),
            "{name} has wrong kind"
        );
        observations += v.get("count").and_then(Json::as_i64).expect("no count");
    }
    // Timeliness is recorded only on prefetch-served reads that carried
    // an ETT prediction, so observations never exceed hits.
    assert!(
        observations <= totals["prefetch_hits_total"],
        "more timeliness observations ({observations}) than hits ({totals:?})"
    );
}

#[test]
fn q11_median_flight_record_yields_ett_error() {
    let lines = run_with_jsonl(QueryId::Q11Median, 60_000, "telemetry-q11m", 0);
    let mut observations = 0u64;
    let mut abs_error_sum = 0i64;
    for line in &lines {
        if line.get("type").and_then(Json::as_str) != Some("event") {
            continue;
        }
        if line.get("kind").and_then(Json::as_str) != Some("ett") {
            continue;
        }
        let fields = line.get("fields").expect("ett event without fields");
        let predicted = fields.get("predicted").and_then(Json::as_i64).unwrap();
        let actual = fields.get("actual").and_then(Json::as_i64).unwrap();
        let error = fields.get("error").and_then(Json::as_i64).unwrap();
        // The recorded error is exactly the predicted-vs-actual delta,
        // so prefetch accuracy is computable from the flight record
        // alone.
        assert_eq!(error, actual - predicted, "inconsistent ett event");
        observations += 1;
        abs_error_sum += error.abs();
    }
    assert!(
        observations > 0,
        "AUR run produced no ett flight-recorder events"
    );
    // Mean absolute trigger-time error in event-time ms: finite and
    // bounded by the stream's horizon, or the record is garbage.
    let mean_abs_error = abs_error_sum as f64 / observations as f64;
    assert!(
        (0.0..=60_000.0).contains(&mean_abs_error),
        "implausible mean ETT error: {mean_abs_error}"
    );
}
