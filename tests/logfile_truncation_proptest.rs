//! Property: a log truncated at *any* byte offset inside its final
//! record recovers to the longest intact prefix — the reader serves
//! every earlier record and stops cleanly, and `LogWriter::open_append`
//! resumes writing exactly at the recovery point. Holds identically
//! through the plain [`StdVfs`] and a (fault-free) [`FaultVfs`], so the
//! fault-injection decorator is proven transparent on the same inputs.

use std::path::Path;
use std::sync::Arc;

use flowkv_common::error::StoreError;
use flowkv_common::logfile::{LogReader, LogWriter};
use flowkv_common::scratch::ScratchDir;
use flowkv_common::vfs::{FaultPlan, FaultVfs, StdVfs, Vfs};
use proptest::prelude::*;

/// Reads records until a clean end or a torn tail; a torn tail must be
/// reported as corruption at exactly `expect_tail` (the last intact
/// record boundary), never as a hard error earlier in the file.
fn read_surviving(vfs: &Arc<dyn Vfs>, path: &Path, expect_tail: u64) -> Vec<Vec<u8>> {
    let mut reader = LogReader::open_in(vfs, path).unwrap();
    let mut records = Vec::new();
    loop {
        match reader.next_record() {
            Ok(Some((_, payload))) => records.push(payload),
            Ok(None) => break,
            Err(StoreError::Corruption { offset, .. }) => {
                assert_eq!(offset, expect_tail, "corruption before the torn tail");
                break;
            }
            Err(e) => panic!("unexpected error reading truncated log: {e}"),
        }
    }
    records
}

fn check_all_cut_points(vfs: Arc<dyn Vfs>, dir: &Path, payloads: &[Vec<u8>]) {
    vfs.create_dir_all(dir).unwrap();
    let full = dir.join("full.log");
    let mut writer = LogWriter::create_in(&vfs, &full).unwrap();
    let mut last_start = 0u64;
    for p in payloads {
        last_start = writer.append(p).unwrap().offset;
    }
    writer.sync().unwrap();
    let full_len = writer.offset();
    drop(writer);
    let bytes = vfs.read(&full).unwrap();
    assert_eq!(bytes.len() as u64, full_len);

    let intact = &payloads[..payloads.len() - 1];
    for cut in last_start..full_len {
        let copy = dir.join(format!("cut-{cut}.log"));
        vfs.write(&copy, &bytes[..cut as usize]).unwrap();

        // The reader must serve every record before the torn one.
        let survivors = read_surviving(&vfs, &copy, last_start);
        assert_eq!(survivors, intact, "cut at byte {cut}");

        // Re-opening for append truncates the torn tail and resumes at
        // the recovery point; the log is then fully usable again.
        let mut appender = LogWriter::open_append_in(&vfs, &copy).unwrap();
        assert_eq!(appender.offset(), last_start, "cut at byte {cut}");
        appender.append(b"recovered").unwrap();
        appender.sync().unwrap();
        drop(appender);
        let mut expected: Vec<Vec<u8>> = intact.to_vec();
        expected.push(b"recovered".to_vec());
        let reread = read_surviving(&vfs, &copy, u64::MAX);
        assert_eq!(reread, expected, "cut at byte {cut}");
        vfs.remove_file(&copy).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn truncation_inside_final_record_recovers(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 2..8)
    ) {
        let dir = ScratchDir::new("logfile-truncation").unwrap();
        let std_vfs: Arc<dyn Vfs> = StdVfs::shared();
        check_all_cut_points(std_vfs, &dir.path().join("std"), &payloads);
        let fault_vfs: Arc<dyn Vfs> = FaultVfs::new(StdVfs::shared(), FaultPlan::new());
        check_all_cut_points(fault_vfs, &dir.path().join("fault"), &payloads);
    }
}
