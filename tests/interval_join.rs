//! End-to-end interval joins (paper §8, future work) against a
//! brute-force model, on every backend.
//!
//! Bids are interval-joined with the auctions they belong to: a bid
//! matches when it falls within `[auction.ts, auction.ts + horizon]`.
//! The engine result must equal the O(n²) reference join, identically on
//! the in-memory store, FlowKV, the LSM baseline, and the hash baseline.

use std::sync::Arc;

use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::Tuple;
use flowkv_spe::join::{tag_left, tag_right};
use flowkv_spe::{run_job, BackendChoice, FactoryOptions, JobBuilder, RunOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const HORIZON: i64 = 200;

/// A two-sided stream: left = "auction opened", right = "bid placed".
fn input(seed: u64, n: usize, keys: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tuples = Vec::with_capacity(n);
    for i in 0..n {
        let key = format!("k{}", rng.gen_range(0..keys));
        let ts = i as i64; // In-order arrival.
        if rng.gen_bool(0.3) {
            tuples.push(Tuple::new(
                key.into_bytes(),
                tag_left(format!("A{i}").as_bytes()),
                ts,
            ));
        } else {
            tuples.push(Tuple::new(
                key.into_bytes(),
                tag_right(format!("B{i}").as_bytes()),
                ts,
            ));
        }
    }
    tuples
}

/// O(n²) reference join.
fn brute_force(tuples: &[Tuple]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for l in tuples.iter().filter(|t| t.value[0] == 0) {
        for r in tuples.iter().filter(|t| t.value[0] == 1) {
            if l.key == r.key && r.timestamp >= l.timestamp && r.timestamp <= l.timestamp + HORIZON
            {
                let mut v = l.value[1..].to_vec();
                v.push(b'|');
                v.extend_from_slice(&r.value[1..]);
                out.push(v);
            }
        }
    }
    out.sort();
    out
}

fn run_join(backend: &BackendChoice, tuples: Vec<Tuple>) -> Vec<Vec<u8>> {
    let dir = ScratchDir::new(&format!("ijoin-{}", backend.name())).unwrap();
    let job = JobBuilder::new("interval-join")
        .parallelism(2)
        .interval_join(
            "auction-bids",
            0,
            HORIZON,
            64,
            Arc::new(|_k, l: &[u8], r: &[u8]| {
                let mut v = l.to_vec();
                v.push(b'|');
                v.extend_from_slice(r);
                Some(v)
            }),
        )
        .build();
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    opts.watermark_interval = 50;
    let result = run_job(
        &job,
        tuples.into_iter(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    let mut out: Vec<Vec<u8>> = result.outputs.into_iter().map(|t| t.value).collect();
    out.sort();
    out
}

#[test]
fn interval_join_matches_brute_force_on_all_backends() {
    let tuples = input(77, 2_000, 10);
    let expected = brute_force(&tuples);
    assert!(!expected.is_empty(), "degenerate test input");
    for backend in BackendChoice::all_small_for_tests() {
        let got = run_join(&backend, tuples.clone());
        assert_eq!(
            got,
            expected,
            "interval join diverges on {}",
            backend.name()
        );
    }
}

#[test]
fn interval_join_state_is_purged_by_watermarks() {
    // A long stream with few keys: buffered rows must be purged as event
    // time advances, so backend memory stays bounded well below total
    // input size.
    let tuples = input(5, 20_000, 4);
    let backend = BackendChoice::all_small_for_tests().remove(0); // In-memory: OOMs if purging fails.
    let dir = ScratchDir::new("ijoin-purge").unwrap();
    let job = JobBuilder::new("interval-join")
        .parallelism(1)
        .interval_join("j", -50, 50, 64, Arc::new(|_k, _l: &[u8], _r: &[u8]| None))
        .build();
    let mut opts = RunOptions::new(dir.path());
    opts.watermark_interval = 100;
    // 64 KiB budget: holding all 20 k rows (~1 MB) would OOM; purged
    // steady-state is a few hundred rows.
    let backend = match backend {
        BackendChoice::InMemory { .. } => BackendChoice::InMemory {
            budget_per_partition: 64 << 10,
        },
        other => other,
    };
    let result = run_job(
        &job,
        tuples.into_iter(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    assert_eq!(result.input_count, 20_000);
}
