//! Property: key-range repartition is lossless and disjoint.
//!
//! For random key/window populations, every backend, and any N→M
//! rescale, splitting a store's extracted state across N shards and then
//! re-splitting across M must (a) land every key on exactly one shard at
//! each step — the shard its key hash's range owns — and (b) leave the
//! union of the migrated states equal to the original, entry for entry,
//! with per-key value order intact.
//!
//! The tiered cases run the same property with every store (source and
//! targets) wrapped in the forced-demotion two-tier layout
//! (`tier_hot_bytes = 0`): all state lives in compressed columnar cold
//! blocks, so the round-trip proves `extract_range`/`inject_entries`
//! migrate cold blocks losslessly.

use std::collections::HashMap;

use flowkv::KeyRangePartitioner;
use flowkv_common::backend::{
    AggregateKind, OperatorContext, OperatorSemantics, StateBackend, StateEntry, WindowKind,
};
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::WindowId;
use flowkv_spe::{BackendChoice, FactoryOptions};
use proptest::prelude::*;

const WINDOW_SIZE: i64 = 100;

fn window(w: u8) -> WindowId {
    let start = i64::from(w) * WINDOW_SIZE;
    WindowId::new(start, start + WINDOW_SIZE)
}

fn key(k: u8) -> Vec<u8> {
    format!("key-{k}").into_bytes()
}

/// One generated population: per (key, window), either a value list
/// (append pattern) or a single aggregate (RMW pattern).
#[derive(Clone, Debug)]
struct Population {
    kind: AggregateKind,
    /// `(key, window, values)`; for `Incremental` only the last value
    /// per (key, window) survives, matching `put_aggregate` overwrite.
    rows: Vec<(u8, u8, Vec<Vec<u8>>)>,
}

fn populations() -> impl Strategy<Value = Population> {
    let values = prop::collection::vec(prop::collection::vec(any::<u8>(), 1..16), 1..5);
    let rows = prop::collection::vec((0u8..24, 0u8..4, values), 1..40);
    (
        prop_oneof![
            Just(AggregateKind::FullList),
            Just(AggregateKind::Incremental)
        ],
        rows,
    )
        .prop_map(|(kind, rows)| Population { kind, rows })
}

fn make_store(
    choice: &BackendChoice,
    kind: AggregateKind,
    tiered: bool,
    tag: &str,
) -> Box<dyn StateBackend> {
    let dir = ScratchDir::new(&format!("repart-{}-{tag}", choice.name())).unwrap();
    let ctx = OperatorContext {
        operator: "repart".into(),
        partition: 0,
        semantics: OperatorSemantics::new(kind, WindowKind::Fixed { size: WINDOW_SIZE }),
        data_dir: dir.into_kept(),
        telemetry: None,
        io: None,
    };
    let factory = if tiered {
        // Forced demotion: every row the test writes seals into a cold
        // block before extraction touches it.
        choice.build(FactoryOptions::new().tiered(flowkv::tier::TierConfig::new(0)))
    } else {
        choice.build(FactoryOptions::new())
    };
    factory.create(&ctx).unwrap()
}

/// Loads the population into a fresh store of `choice`.
fn seed_store(
    choice: &BackendChoice,
    pop: &Population,
    tiered: bool,
    tag: &str,
) -> Box<dyn StateBackend> {
    let mut store = make_store(choice, pop.kind, tiered, tag);
    for (k, w, values) in &pop.rows {
        for value in values {
            match pop.kind {
                AggregateKind::FullList => {
                    store
                        .append(&key(*k), window(*w), value, window(*w).start)
                        .unwrap();
                }
                AggregateKind::Incremental => {
                    store.put_aggregate(&key(*k), window(*w), value).unwrap();
                }
            }
        }
    }
    store
}

/// Canonical form of a store's full extracted state.
fn canonical(mut entries: Vec<StateEntry>) -> Vec<StateEntry> {
    entries.sort();
    entries
}

/// Splits every entry of `source` across `shards` stores by key range,
/// checking disjointness along the way.
fn split(
    source: &mut dyn StateBackend,
    choice: &BackendChoice,
    kind: AggregateKind,
    tiered: bool,
    shards: usize,
    tag: &str,
) -> Result<Vec<Box<dyn StateBackend>>, TestCaseError> {
    let part = KeyRangePartitioner::new(shards);
    let entries = source.extract_range(&|_| true, kind).unwrap();
    let mut targets: Vec<Box<dyn StateBackend>> = (0..shards)
        .map(|s| make_store(choice, kind, tiered, &format!("{tag}-s{s}")))
        .collect();
    let mut owner: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut batches: Vec<Vec<StateEntry>> = (0..shards).map(|_| Vec::new()).collect();
    for entry in entries {
        let shard = part.shard_of(entry.key());
        // Disjointness: one shard per key, and it is the shard whose
        // hash range covers the key.
        let prev = owner.insert(entry.key().to_vec(), shard);
        prop_assert!(prev.is_none_or(|p| p == shard), "key split across shards");
        let (lo, hi) = part.range(shard);
        let h = KeyRangePartitioner::key_hash(entry.key());
        prop_assert!((lo..=hi).contains(&h), "key routed outside its range");
        batches[shard].push(entry);
    }
    for (target, batch) in targets.iter_mut().zip(batches) {
        target.inject_entries(batch).unwrap();
    }
    Ok(targets)
}

fn check_repartition(
    choice: &BackendChoice,
    pop: &Population,
    tiered: bool,
    n: usize,
    m: usize,
) -> Result<(), TestCaseError> {
    let mut source = seed_store(choice, pop, tiered, "src");
    let original = canonical(source.extract_range(&|_| true, pop.kind).unwrap());

    // Split to N shards, then re-split every shard to M — the same two
    // hops a live rescale takes.
    let mut level1 = split(&mut *source, choice, pop.kind, tiered, n, "n")?;
    let mut union1 = Vec::new();
    for shard in &mut level1 {
        union1.extend(shard.extract_range(&|_| true, pop.kind).unwrap());
    }
    prop_assert_eq!(&canonical(union1), &original, "N-way split lost state");

    let mut union2 = Vec::new();
    for (i, shard) in level1.iter_mut().enumerate() {
        let mut level2 = split(&mut **shard, choice, pop.kind, tiered, m, &format!("m{i}"))?;
        for target in level2.iter_mut() {
            union2.extend(target.extract_range(&|_| true, pop.kind).unwrap());
        }
    }
    prop_assert_eq!(&canonical(union2), &original, "N→M re-split lost state");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn repartition_is_lossless_and_disjoint(
        pop in populations(),
        n in 1usize..6,
        m in 1usize..6,
    ) {
        for choice in BackendChoice::all_small_for_tests() {
            check_repartition(&choice, &pop, false, n, m)?;
        }
    }

    /// Same property with all state demoted to cold blocks: extraction
    /// must decode them, injection must re-tier them, and nothing may
    /// be lost or duplicated on either hop.
    #[test]
    fn tiered_repartition_round_trips_cold_blocks(
        pop in populations(),
        n in 1usize..6,
        m in 1usize..6,
    ) {
        for choice in BackendChoice::all_small_for_tests() {
            check_repartition(&choice, &pop, true, n, m)?;
        }
    }
}
