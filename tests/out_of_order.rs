//! Bounded out-of-order streams: watermark slack must make results
//! identical to the in-order run, with zero late drops.
//!
//! Real sources deliver events with bounded disorder; engines compensate
//! by lagging the watermark (Flink's bounded-out-of-orderness strategy).
//! These tests jitter NEXMark timestamps backward by up to 50 ms and run
//! with `watermark_slack = 50`: every query must produce exactly the
//! multiset of results of the untouched stream, on every backend.

use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::Tuple;
use flowkv_nexmark::{EventGenerator, GeneratorConfig, QueryId, QueryParams};
use flowkv_spe::{run_job, BackendChoice, FactoryOptions, RunOptions};

fn gen_cfg(out_of_order_ms: i64) -> GeneratorConfig {
    GeneratorConfig {
        num_events: 15_000,
        seed: 33,
        events_per_second: 5_000,
        active_people: 40,
        active_auctions: 60,
        out_of_order_ms,
        ..GeneratorConfig::default()
    }
}

type SortedOutputs = Vec<(Vec<u8>, Vec<u8>)>;

fn run(query: QueryId, backend: &BackendChoice, ooo_ms: i64, slack: i64) -> (SortedOutputs, u64) {
    let dir = ScratchDir::new("ooo").unwrap();
    let params = QueryParams::new(1_000).with_parallelism(2);
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    opts.watermark_interval = 100;
    opts.watermark_slack = slack;
    let result = run_job(
        &query.build(params),
        EventGenerator::new(gen_cfg(ooo_ms)).tuples(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", query.name(), backend.name()));
    let mut outputs: SortedOutputs = result
        .outputs
        .into_iter()
        .map(|Tuple { key, value, .. }| (key, value))
        .collect();
    outputs.sort();
    (outputs, result.dropped_late)
}

/// Sorted multiset of outputs for the jitter-free stream with sufficient
/// slack applied to the jittered stream: results must agree exactly.
fn assert_slack_masks_disorder(query: QueryId) {
    for backend in BackendChoice::all_small_for_tests() {
        // The reference uses the *jittered* timestamps too (the jitter
        // changes which windows tuples fall into), just consumed with a
        // watermark that never declares them late.
        let (reference, ref_dropped) = run(query, &backend, 50, 50);
        assert_eq!(ref_dropped, 0, "{}: drops with full slack", query.name());
        let (wide_slack, dropped) = run(query, &backend, 50, 200);
        assert_eq!(dropped, 0);
        assert_eq!(
            wide_slack,
            reference,
            "{} on {}: slack width changed results",
            query.name(),
            backend.name()
        );
    }
}

#[test]
fn fixed_window_query_tolerates_disorder() {
    assert_slack_masks_disorder(QueryId::Q7);
}

#[test]
fn session_query_tolerates_disorder() {
    assert_slack_masks_disorder(QueryId::Q11);
}

#[test]
fn insufficient_slack_drops_late_tuples() {
    // With zero slack against 50 ms of disorder, drops must occur — and
    // the engine must keep running rather than fail.
    let backend = &BackendChoice::all_small_for_tests()[1];
    let (_, dropped) = run(QueryId::Q11, backend, 50, 0);
    assert!(dropped > 0, "expected late drops with zero slack");
}

#[test]
fn late_tuples_reach_the_side_output() {
    // Flink-style late-data side output: the same run with
    // `collect_late` hands the dropped tuples back for reprocessing.
    let backend = &BackendChoice::all_small_for_tests()[1];
    let dir = ScratchDir::new("ooo-side").unwrap();
    let params = QueryParams::new(1_000).with_parallelism(2);
    let mut opts = RunOptions::new(dir.path());
    opts.watermark_interval = 100;
    opts.watermark_slack = 0;
    opts.collect_late = true;
    let result = run_job(
        &QueryId::Q11.build(params),
        EventGenerator::new(gen_cfg(50)).tuples(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    assert!(result.dropped_late > 0);
    assert_eq!(result.late_tuples.len() as u64, result.dropped_late);
}
