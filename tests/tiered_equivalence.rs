//! Differential tier-testing harness: every query × backend runs
//! hot-only and tiered, and the outputs must be byte-identical.
//!
//! Three tiered configurations per cell:
//!
//! 1. a moderate hot budget (some windows demote, some stay hot),
//! 2. the pathological `tier_hot_bytes = 0` cell — every write
//!    immediately seals to a compressed cold block, so *all* served
//!    state round-trips through the columnar codec (the telemetry
//!    assert proves demotion actually happened), and
//! 3. forced demotion with the background I/O ring enabled, so
//!    promotion and prefetch reads ride the async path.
//!
//! A final seeded cell crashes a forced-demotion run at a random store
//! operation drawn from the `FLOWKV_FAULT_SEED` stream (printed in
//! every failure message) and requires supervised recovery to restore
//! both tiers to byte-identical output.

mod common;

use std::sync::Arc;

use common::{cell_seed, fault_seed, nexmark_generator, sorted_triples, SortedOutputs};
use flowkv::tier::TierConfig;
use flowkv_common::scratch::ScratchDir;
use flowkv_common::telemetry::{SampleValue, Telemetry};
use flowkv_common::vfs::{FaultPlan, FaultVfs, StdVfs};
use flowkv_nexmark::{QueryId, QueryParams};
use flowkv_spe::source::{LogSource, TupleLog};
use flowkv_spe::{run_job, run_supervised, BackendChoice, FactoryOptions, RunOptions};

const NUM_EVENTS: u64 = 5_000;
const DEFAULT_SEED: u64 = 0x71E2;
/// Moderate per-partition hot budget: small enough that the 5k-event
/// streams overflow it and demote, large enough that hot hits remain.
const MODERATE_HOT_BYTES: u64 = 16 << 10;

fn counter_value(telemetry: &Telemetry, name: &str) -> u64 {
    telemetry
        .registry()
        .snapshot()
        .iter()
        .find(|s| s.name == name)
        .map_or(0, |s| match s.value {
            SampleValue::Counter(v) => v,
            _ => 0,
        })
}

/// Runs one tiered configuration of the cell and compares against the
/// hot-only checksum. Returns the run's demotion count.
#[allow(clippy::too_many_arguments)]
fn tiered_run(
    query: QueryId,
    backend: &BackendChoice,
    log: &std::path::Path,
    dir: &std::path::Path,
    label: &str,
    hot_bytes: u64,
    io_threads: usize,
    expected: &SortedOutputs,
) -> u64 {
    let job = query.build(QueryParams::new(1_000).with_parallelism(2));
    let telemetry = Telemetry::new_shared();
    let mut builder = RunOptions::builder(dir.join(label))
        .collect_outputs(true)
        .watermark_interval(100)
        .tier_hot_bytes(hot_bytes)
        .telemetry(Arc::clone(&telemetry));
    if io_threads > 0 {
        builder = builder.io_threads(io_threads);
    }
    let opts = builder.build();
    let result = run_job(
        &job,
        LogSource::open(log).unwrap(),
        backend.build(FactoryOptions::new()),
        &opts,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} on {} [{label}]: tiered run failed: {e}",
            query.name(),
            backend.name()
        )
    });
    assert_eq!(
        sorted_triples(&result.outputs),
        *expected,
        "{} on {} [{label}]: tiered output diverged from hot-only",
        query.name(),
        backend.name()
    );
    counter_value(&telemetry, "tier_demotions_total")
}

/// One differential cell: hot-only reference, then the three tiered
/// configurations, all byte-identical.
fn differential_cell(query: QueryId, backend: &BackendChoice) {
    let dir = ScratchDir::new(&format!("tiered-eq-{}-{}", query.name(), backend.name())).unwrap();
    let log = dir.path().join("events.log");
    TupleLog::record(&log, nexmark_generator(NUM_EVENTS, 23).tuples()).unwrap();
    let job = query.build(QueryParams::new(1_000).with_parallelism(2));

    let ref_opts = RunOptions::builder(dir.path().join("hot-only"))
        .collect_outputs(true)
        .watermark_interval(100)
        .build();
    let reference = run_job(
        &job,
        LogSource::open(&log).unwrap(),
        backend.build(FactoryOptions::new()),
        &ref_opts,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} on {}: hot-only reference failed: {e}",
            query.name(),
            backend.name()
        )
    });
    assert!(
        !reference.outputs.is_empty(),
        "{} on {}: hot-only reference produced no output",
        query.name(),
        backend.name()
    );
    let expected = sorted_triples(&reference.outputs);

    let d = dir.path();
    tiered_run(
        query,
        backend,
        &log,
        d,
        "moderate",
        MODERATE_HOT_BYTES,
        0,
        &expected,
    );
    let forced = tiered_run(query, backend, &log, d, "forced", 0, 0, &expected);
    assert!(
        forced > 0,
        "{} on {}: tier_hot_bytes=0 run never demoted — the cell did not exercise the cold tier",
        query.name(),
        backend.name()
    );
    let forced_ring = tiered_run(query, backend, &log, d, "forced-ring", 0, 2, &expected);
    assert!(
        forced_ring > 0,
        "{} on {}: ring-enabled forced run never demoted",
        query.name(),
        backend.name()
    );
}

fn differential_row(query: QueryId) {
    for backend in &BackendChoice::all_small_for_tests() {
        differential_cell(query, backend);
    }
}

#[test]
fn tiered_differential_q7() {
    differential_row(QueryId::Q7);
}

#[test]
fn tiered_differential_q11_median() {
    differential_row(QueryId::Q11Median);
}

#[test]
fn tiered_differential_q11() {
    differential_row(QueryId::Q11);
}

/// The seeded crash cell: a forced-demotion tiered run (cold log and
/// inner store both behind the FaultVfs) crashes at a random store op
/// and recovers under supervision to byte-identical output.
fn tiered_crash_cell(query: QueryId, backend: &BackendChoice, seed: u64) {
    let dir = ScratchDir::new(&format!(
        "tiered-eq-crash-{}-{}",
        query.name(),
        backend.name()
    ))
    .unwrap();
    let log = dir.path().join("events.log");
    TupleLog::record(&log, nexmark_generator(NUM_EVENTS, 23).tuples()).unwrap();
    let job = query.build(QueryParams::new(1_000).with_parallelism(2));
    let tier_cfg = TierConfig::new(0);

    let ref_opts = RunOptions::builder(dir.path().join("ref"))
        .collect_outputs(true)
        .watermark_interval(100)
        .build();
    let reference = run_job(
        &job,
        LogSource::open(&log).unwrap(),
        backend.build(FactoryOptions::new()),
        &ref_opts,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} on {}: hot-only reference failed (seed {seed}): {e}",
            query.name(),
            backend.name()
        )
    });

    // Count the tiered run's store-op footprint (cold-log traffic
    // included), then crash inside it.
    let counter = FaultVfs::counting(StdVfs::shared());
    let counted_opts = RunOptions::builder(dir.path().join("count"))
        .watermark_interval(100)
        .checkpoint(NUM_EVENTS / 2, dir.path().join("count-ckpt"))
        .build();
    run_job(
        &job,
        LogSource::open(&log).unwrap(),
        backend.build(
            FactoryOptions::new()
                .tiered(tier_cfg.clone())
                .vfs(counter.clone()),
        ),
        &counted_opts,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} on {}: tiered counting run failed (seed {seed}): {e}",
            query.name(),
            backend.name()
        )
    });
    let total_ops = counter.ops();
    assert!(
        total_ops > 0,
        "{} on {}: tiered store never touched the vfs (seed {seed})",
        query.name(),
        backend.name()
    );

    let combo_seed = cell_seed(seed, query, backend, 29);
    let plan = FaultPlan::random_crash(combo_seed, total_ops * 9 / 10);
    let faulty = FaultVfs::new(StdVfs::shared(), plan);
    let opts = RunOptions::builder(dir.path().join("data"))
        .collect_outputs(true)
        .watermark_interval(100)
        .checkpoint(NUM_EVENTS / 2, dir.path().join("ckpt"))
        .max_restarts(2)
        .restart_backoff(std::time::Duration::from_millis(1))
        .build();
    let sup = run_supervised(
        &job,
        &log,
        backend.build(FactoryOptions::new().tiered(tier_cfg).vfs(faulty.clone())),
        &opts,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} on {}: supervised tiered run failed (seed {seed}): {e}",
            query.name(),
            backend.name()
        )
    });

    let fired = faulty.fired();
    assert_eq!(
        fired.len(),
        1,
        "{} on {}: expected exactly one injected crash (seed {seed}), fired {fired:?}",
        query.name(),
        backend.name()
    );
    assert_eq!(
        sorted_triples(&sup.all_outputs()),
        sorted_triples(&reference.outputs),
        "{} on {}: recovered tiered output diverged (seed {seed}, crash at op {})",
        query.name(),
        backend.name(),
        fired[0].0
    );
}

#[test]
fn tiered_crash_recovers_byte_identical() {
    let seed = fault_seed(DEFAULT_SEED);
    println!("tiered crash cell: FLOWKV_FAULT_SEED={seed} (set the env var to replay)");
    for backend in BackendChoice::all_small_for_tests()
        .into_iter()
        .filter(|b| matches!(b, BackendChoice::FlowKv(_) | BackendChoice::Lsm(_)))
    {
        tiered_crash_cell(QueryId::Q11Median, &backend, seed);
    }
}
