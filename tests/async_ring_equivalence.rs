//! Semantic equivalence of the background I/O ring: for every backend ×
//! query pair, a run with asynchronous prefetch enabled must produce
//! byte-identical output to the fully synchronous run — under randomized
//! completion reordering, and under an injected crash with supervised
//! recovery.
//!
//! Reorder seeds and the crash point derive from the SplitMix64 stream
//! seeded by `FLOWKV_FAULT_SEED` (default below); the seed is printed so
//! any failure reproduces with `FLOWKV_FAULT_SEED=<seed> cargo test`.

mod common;

use common::{cell_seed, fault_seed, nexmark_generator, sorted_triples};
use flowkv_common::scratch::ScratchDir;
use flowkv_common::vfs::{FaultPlan, FaultVfs, StdVfs};
use flowkv_nexmark::{EventGenerator, QueryId, QueryParams};
use flowkv_spe::source::{LogSource, TupleLog};
use flowkv_spe::{run_job, run_supervised, BackendChoice, FactoryOptions, RunOptions};

const NUM_EVENTS: u64 = 5_000;
const DEFAULT_SEED: u64 = 0xA5F0;
const IO_THREADS: usize = 2;

fn generator() -> EventGenerator {
    nexmark_generator(NUM_EVENTS, 23)
}

/// Runs `query` synchronously once, then with the ring enabled under
/// several completion-shuffle seeds, and requires identical output.
fn reorder_row(query: QueryId) {
    let seed = fault_seed(DEFAULT_SEED);
    println!(
        "async reorder {}: FLOWKV_FAULT_SEED={seed} (set the env var to replay)",
        query.name()
    );
    let dir = ScratchDir::new(&format!("async-reorder-{}", query.name())).unwrap();
    let log = dir.path().join("events.log");
    TupleLog::record(&log, generator().tuples()).unwrap();
    let job = query.build(QueryParams::new(1_000).with_parallelism(2));

    for backend in &BackendChoice::all_small_for_tests() {
        let ref_opts = RunOptions::builder(dir.path().join(format!("{}-ref", backend.name())))
            .collect_outputs(true)
            .watermark_interval(100)
            .build();
        let reference = run_job(
            &job,
            LogSource::open(&log).unwrap(),
            backend.build(FactoryOptions::new()),
            &ref_opts,
        )
        .unwrap_or_else(|e| {
            panic!(
                "{} on {}: sync reference failed: {e}",
                query.name(),
                backend.name()
            )
        });
        assert!(
            !reference.outputs.is_empty(),
            "{} on {}: reference produced no output",
            query.name(),
            backend.name()
        );
        let expected = sorted_triples(&reference.outputs);

        for round in 0..2u64 {
            let shuffle = cell_seed(seed, query, backend, round);
            let opts =
                RunOptions::builder(dir.path().join(format!("{}-ring{round}", backend.name())))
                    .collect_outputs(true)
                    .watermark_interval(100)
                    .io_threads(IO_THREADS)
                    .io_shuffle_seed(shuffle)
                    .build();
            let ring_run = run_job(
                &job,
                LogSource::open(&log).unwrap(),
                backend.build(FactoryOptions::new()),
                &opts,
            )
            .unwrap_or_else(|e| {
                panic!(
                    "{} on {}: ring run failed (seed {seed}, shuffle {shuffle}): {e}",
                    query.name(),
                    backend.name()
                )
            });
            assert_eq!(
                sorted_triples(&ring_run.outputs),
                expected,
                "{} on {}: async output diverged (seed {seed}, shuffle {shuffle})",
                query.name(),
                backend.name()
            );
        }
    }
}

/// Crashes a ring-enabled run at a random store operation, recovers
/// under supervision, and requires byte-identical output versus the
/// synchronous reference — the async path must not weaken exactly-once.
fn crash_cell(query: QueryId, backend: &BackendChoice, seed: u64) {
    let dir = ScratchDir::new(&format!("async-crash-{}-{}", query.name(), backend.name())).unwrap();
    let log = dir.path().join("events.log");
    TupleLog::record(&log, generator().tuples()).unwrap();
    let job = query.build(QueryParams::new(1_000).with_parallelism(2));

    let ref_opts = RunOptions::builder(dir.path().join("ref"))
        .collect_outputs(true)
        .watermark_interval(100)
        .build();
    let reference = run_job(
        &job,
        LogSource::open(&log).unwrap(),
        backend.build(FactoryOptions::new()),
        &ref_opts,
    )
    .unwrap();

    // Count the ring run's store-op footprint, then crash inside the
    // first half of it: background reads make the tail of the op range
    // noisier than in the synchronous matrix, and the early half is
    // where in-flight prefetches are most likely to be live.
    let counter = FaultVfs::counting(StdVfs::shared());
    let counted_opts = RunOptions::builder(dir.path().join("count"))
        .watermark_interval(100)
        .checkpoint(NUM_EVENTS / 2, dir.path().join("count-ckpt"))
        .io_threads(IO_THREADS)
        .build();
    run_job(
        &job,
        LogSource::open(&log).unwrap(),
        backend.build(FactoryOptions::new().vfs(counter.clone())),
        &counted_opts,
    )
    .unwrap();
    let total_ops = counter.ops();
    assert!(total_ops > 0, "store never touched the vfs");

    let combo_seed = cell_seed(seed, query, backend, 7);
    let plan = FaultPlan::random_crash(combo_seed, total_ops / 2);
    let faulty = FaultVfs::new(StdVfs::shared(), plan);
    let opts = RunOptions::builder(dir.path().join("data"))
        .collect_outputs(true)
        .watermark_interval(100)
        .checkpoint(NUM_EVENTS / 2, dir.path().join("ckpt"))
        .max_restarts(2)
        .restart_backoff(std::time::Duration::from_millis(1))
        .io_threads(IO_THREADS)
        .io_shuffle_seed(combo_seed)
        .build();
    let sup = run_supervised(
        &job,
        &log,
        backend.build(FactoryOptions::new().vfs(faulty.clone())),
        &opts,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} on {}: supervised ring run failed (seed {seed}): {e}",
            query.name(),
            backend.name()
        )
    });

    let fired = faulty.fired();
    assert_eq!(
        fired.len(),
        1,
        "{} on {}: expected exactly one injected crash (seed {seed}), fired {fired:?}",
        query.name(),
        backend.name()
    );
    assert_eq!(
        sup.restarts,
        1,
        "{} on {}: one crash must cost exactly one restart (seed {seed})",
        query.name(),
        backend.name()
    );
    assert_eq!(
        sorted_triples(&sup.all_outputs()),
        sorted_triples(&reference.outputs),
        "{} on {}: recovered async output diverged (seed {seed}, crash at op {})",
        query.name(),
        backend.name(),
        fired[0].0
    );
}

/// Crash cells cover the two backends that actually route reads through
/// the ring (FlowKV's AAR/AUR prefetch and the LSM block warm-up); the
/// other backends ignore the I/O policy and are already exercised by the
/// synchronous crash matrix.
fn crash_row(query: QueryId) {
    let seed = fault_seed(DEFAULT_SEED);
    println!(
        "async crash {}: FLOWKV_FAULT_SEED={seed} (set the env var to replay)",
        query.name()
    );
    for backend in BackendChoice::all_small_for_tests()
        .into_iter()
        .filter(|b| matches!(b, BackendChoice::FlowKv(_) | BackendChoice::Lsm(_)))
    {
        crash_cell(query, &backend, seed);
    }
}

#[test]
fn async_reorder_q7() {
    reorder_row(QueryId::Q7);
}

#[test]
fn async_reorder_q11_median() {
    reorder_row(QueryId::Q11Median);
}

#[test]
fn async_reorder_q11() {
    reorder_row(QueryId::Q11);
}

#[test]
fn async_crash_q7() {
    crash_row(QueryId::Q7);
}

#[test]
fn async_crash_q11_median() {
    crash_row(QueryId::Q11Median);
}
