//! End-to-end test: serving live state never changes what the job
//! computes.
//!
//! Runs the same NEXMark Q12 job twice over identical inputs — once
//! unobserved, once with snapshot publication, a TCP server, and client
//! threads querying throughout the run — and asserts the outputs are
//! byte-identical. Also checks that the concurrent queries actually did
//! real work (hits on live keys, scans, metrics) so the equivalence is
//! not vacuous.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use flowkv::{FlowKvConfig, FlowKvFactory};
use flowkv_common::registry::StateRegistry;
use flowkv_common::scratch::ScratchDir;
use flowkv_common::telemetry::{validate_prometheus, Telemetry};
use flowkv_common::types::{Tuple, MAX_TIMESTAMP, MIN_TIMESTAMP};
use flowkv_nexmark::{EventGenerator, GeneratorConfig, QueryId, QueryParams};
use flowkv_serve::{StateClient, StateServer};
use flowkv_spe::{run_job, RunOptions};

const JOB: &str = "q12";
const OPERATOR: &str = "count-global";
const EVENTS: u64 = 60_000;

fn generator() -> GeneratorConfig {
    GeneratorConfig {
        num_events: EVENTS,
        seed: 7,
        first_ts: 0,
        events_per_second: 10_000,
        active_people: 500,
        active_auctions: 500,
        hot_ratio: 0.1,
        out_of_order_ms: 0,
    }
}

fn run_q12(
    dir: &std::path::Path,
    registry: Option<Arc<StateRegistry>>,
    rate: Option<u64>,
) -> Vec<Tuple> {
    let job = QueryId::Q12.build(QueryParams::new(1_000).with_parallelism(2));
    let mut opts = RunOptions::new(dir);
    opts.collect_outputs = true;
    opts.watermark_interval = 100;
    opts.rate_limit = rate;
    opts.registry = registry;
    let factory = Arc::new(FlowKvFactory::new(FlowKvConfig::small_for_tests()));
    let result = run_job(
        &job,
        EventGenerator::new(generator()).tuples(),
        factory,
        &opts,
    )
    .expect("job run failed");
    let mut outputs = result.outputs;
    outputs.sort_by(|a, b| (&a.key, &a.value, a.timestamp).cmp(&(&b.key, &b.value, b.timestamp)));
    outputs
}

#[test]
fn concurrent_queries_never_change_job_output() {
    // Baseline: no registry, no server, full speed.
    let baseline_dir = ScratchDir::new("serve-int-baseline").unwrap();
    let baseline = run_q12(baseline_dir.path(), None, None);
    assert!(!baseline.is_empty(), "baseline produced no outputs");

    // Served run: rate-limited so the job is alive for a while, with
    // query traffic hammering the server the whole time.
    let registry = StateRegistry::new_shared();
    let mut server = StateServer::spawn("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let hits = Arc::new(AtomicU64::new(0));
    let scanned = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::new();
    for t in 0..3u64 {
        let stop = Arc::clone(&stop);
        let hits = Arc::clone(&hits);
        let scanned = Arc::clone(&scanned);
        clients.push(std::thread::spawn(move || {
            let mut client = StateClient::connect(addr).expect("connect");
            client.ping().expect("ping");
            let mut sampled: Vec<Vec<u8>> = Vec::new();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                // Refresh the key sample from a live scan now and then;
                // before any snapshot exists these return UnknownState,
                // which is fine — keep polling.
                if sampled.is_empty() || i % 64 == 0 {
                    if let Ok(scan) = client.scan(JOB, OPERATOR, MIN_TIMESTAMP, MAX_TIMESTAMP, 512)
                    {
                        scanned.fetch_add(scan.entries.len() as u64, Ordering::Relaxed);
                        sampled = scan.entries.into_iter().map(|e| e.key).collect();
                    }
                }
                if let Some(key) = sampled.get(i % sampled.len().max(1)) {
                    if let Ok(r) = client.lookup_latest(JOB, OPERATOR, key) {
                        if r.found.is_some() {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                if i % 128 == t as usize {
                    let _ = client.metrics(JOB, OPERATOR);
                    let _ = client.list_states();
                }
                i += 1;
            }
        }));
    }

    let served_dir = ScratchDir::new("serve-int-served").unwrap();
    let served = run_q12(
        served_dir.path(),
        Some(Arc::clone(&registry)),
        Some(120_000),
    );

    // Give clients a last window against the terminal snapshot, then stop.
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::SeqCst);
    for c in clients {
        c.join().expect("client thread panicked");
    }

    assert_eq!(
        baseline, served,
        "serving concurrent queries changed the job's output"
    );
    assert!(
        hits.load(Ordering::Relaxed) > 0,
        "no lookup ever hit a live key; the equivalence check is vacuous"
    );
    assert!(
        scanned.load(Ordering::Relaxed) > 0,
        "no scan ever returned entries"
    );
    assert!(server.requests_served() > 0);
    server.shutdown();
}

#[test]
fn terminal_snapshot_reflects_the_drained_store() {
    // Q12's global window fires exactly once, when the end-of-stream
    // watermark closes it — and firing *consumes* the RMW state. The
    // terminal snapshot published at stream end must therefore be empty
    // and aligned to the max watermark: a query after the job ends sees
    // read-your-drains consistency, not stale aggregates.
    let registry = StateRegistry::new_shared();
    let dir = ScratchDir::new("serve-int-terminal").unwrap();
    let outputs = run_q12(dir.path(), Some(Arc::clone(&registry)), None);
    assert!(!outputs.is_empty());

    let mut server = StateServer::spawn("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let mut client = StateClient::connect(server.local_addr()).unwrap();
    client.ping().unwrap();

    let states = client.list_states().unwrap();
    assert_eq!(states.len(), 2, "expected one snapshot per partition");
    assert!(states.iter().all(|s| s.key.job == JOB));
    assert!(states.iter().all(|s| s.watermark == MAX_TIMESTAMP));
    assert!(states.iter().all(|s| s.epoch > 0));
    assert!(
        states.iter().all(|s| s.entries == 0),
        "terminal snapshot still holds entries the window drain consumed"
    );

    // Emitted keys are gone from queryable state, but the answer still
    // carries the snapshot's coordinates.
    for out in outputs.iter().take(50) {
        let got = client.lookup_latest(JOB, OPERATOR, &out.key).unwrap();
        assert!(got.found.is_none(), "drained key {:?} still live", out.key);
        assert_eq!(got.watermark, MAX_TIMESTAMP);
    }

    let metrics = client.metrics(JOB, OPERATOR).unwrap();
    assert_eq!(metrics.partitions, 2);
    assert_eq!(metrics.entries, 0);
    assert!(
        metrics.metrics.records_written > 0,
        "merged metrics should reflect the job's writes"
    );
    server.shutdown();
}

#[test]
fn telemetry_server_exposes_prometheus_and_registry_samples() {
    // Run a small job with a telemetry handle attached, then serve both
    // the published snapshots and the telemetry registry.
    let telemetry = Telemetry::new_shared();
    let registry = StateRegistry::new_shared();
    let dir = ScratchDir::new("serve-int-telemetry").unwrap();
    {
        let job = QueryId::Q12.build(QueryParams::new(1_000).with_parallelism(2));
        let mut opts = RunOptions::new(dir.path());
        opts.watermark_interval = 100;
        opts.registry = Some(Arc::clone(&registry));
        opts.telemetry = Some(Arc::clone(&telemetry));
        let factory = Arc::new(FlowKvFactory::new(FlowKvConfig::small_for_tests()));
        run_job(
            &job,
            EventGenerator::new(generator()).tuples(),
            factory,
            &opts,
        )
        .expect("job run failed");
    }

    let mut server = StateServer::spawn_with_telemetry(
        "127.0.0.1:0",
        Arc::clone(&registry),
        Some(Arc::clone(&telemetry)),
    )
    .unwrap();
    let mut client = StateClient::connect(server.local_addr()).unwrap();

    // The Prometheus opcode returns well-formed exposition text covering
    // both the executor's telemetry metrics and the per-operator store
    // counters.
    let text = client.prometheus().unwrap();
    validate_prometheus(&text).expect("invalid Prometheus exposition text");
    assert!(
        text.contains("flowkv_operator_busy_nanos"),
        "missing executor telemetry in:\n{text}"
    );
    assert!(
        text.contains("flowkv_store_records_written"),
        "missing store counters in:\n{text}"
    );
    assert!(text.contains("# TYPE"), "missing TYPE comments");

    // The extended metrics opcode carries the registry samples; the
    // legacy form stays sample-free.
    let (report, samples) = client.metrics_with_registry(JOB, OPERATOR).unwrap();
    assert_eq!(report.partitions, 2);
    assert!(
        samples
            .iter()
            .any(|s| s.name.starts_with("operator_busy_nanos")),
        "registry ride-along missing executor metrics"
    );
    assert!(client.metrics(JOB, OPERATOR).is_ok());
    server.shutdown();
}
