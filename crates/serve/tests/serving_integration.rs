//! End-to-end tests of the serving layer.
//!
//! The centrepiece runs the same NEXMark Q12 job twice over identical
//! inputs — once unobserved, once with snapshot publication, a TCP
//! server, and client threads querying throughout the run (point
//! lookups, pipelined batches, filtered scans) — and asserts the
//! outputs are byte-identical. Around it: protocol-compatibility tests
//! proving a v1 client round-trips unchanged against the v2 event-loop
//! server, that pipelined v2 batches correlate by request id, and that
//! both serving cores (event loop and legacy threaded) speak the same
//! wire bytes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use flowkv::{FlowKvConfig, FlowKvFactory};
use flowkv_common::registry::{StateKey, StatePattern, StateRegistry, StateView, ViewValue};
use flowkv_common::scratch::ScratchDir;
use flowkv_common::telemetry::{validate_prometheus, Telemetry};
use flowkv_common::types::{Tuple, WindowId, MAX_TIMESTAMP, MIN_TIMESTAMP};
use flowkv_nexmark::{EventGenerator, GeneratorConfig, QueryId, QueryParams};
use flowkv_serve::{
    route_key, Request, Response, ScanFilter, ServerBuilder, StateClient, StateServer, PROTOCOL_V1,
    PROTOCOL_V2,
};
use flowkv_spe::{run_job, RunOptions};

const JOB: &str = "q12";
const OPERATOR: &str = "count-global";
const EVENTS: u64 = 60_000;

fn generator() -> GeneratorConfig {
    GeneratorConfig {
        num_events: EVENTS,
        seed: 7,
        first_ts: 0,
        events_per_second: 10_000,
        active_people: 500,
        active_auctions: 500,
        hot_ratio: 0.1,
        out_of_order_ms: 0,
    }
}

fn run_q12(
    dir: &std::path::Path,
    registry: Option<Arc<StateRegistry>>,
    rate: Option<u64>,
) -> Vec<Tuple> {
    let job = QueryId::Q12.build(QueryParams::new(1_000).with_parallelism(2));
    let mut opts = RunOptions::new(dir);
    opts.collect_outputs = true;
    opts.watermark_interval = 100;
    opts.rate_limit = rate;
    opts.registry = registry;
    let factory = Arc::new(FlowKvFactory::new(FlowKvConfig::small_for_tests()));
    let result = run_job(
        &job,
        EventGenerator::new(generator()).tuples(),
        factory,
        &opts,
    )
    .expect("job run failed");
    let mut outputs = result.outputs;
    outputs.sort_by(|a, b| (&a.key, &a.value, a.timestamp).cmp(&(&b.key, &b.value, b.timestamp)));
    outputs
}

/// Publishes a small two-partition registry by hand: each key lands in
/// the partition [`route_key`] routes it to, so server-side lookups
/// resolve. Returns the keys published.
fn publish_fixture(registry: &StateRegistry, partitions: usize) -> Vec<Vec<u8>> {
    let mut views: Vec<StateView> = (0..partitions)
        .map(|_| {
            let mut v = StateView::empty(StatePattern::Rmw);
            v.epoch = 3;
            v.watermark = 5_000;
            v.ttl_ms = Some(1_000);
            v
        })
        .collect();
    let keys: Vec<Vec<u8>> = (0..16u8)
        .map(|i| format!("user:{i:02}").into_bytes())
        .collect();
    for (i, key) in keys.iter().enumerate() {
        let p = route_key(JOB, OPERATOR, key, partitions).partition;
        views[p].entries.insert(
            (key.clone(), WindowId::new(0, 1_000)),
            ViewValue::Aggregate(vec![i as u8; 4]),
        );
    }
    for (p, view) in views.into_iter().enumerate() {
        registry.publish(StateKey::new(JOB, OPERATOR, p), view);
    }
    keys
}

#[test]
fn concurrent_queries_never_change_job_output() {
    // Baseline: no registry, no server, full speed.
    let baseline_dir = ScratchDir::new("serve-int-baseline").unwrap();
    let baseline = run_q12(baseline_dir.path(), None, None);
    assert!(!baseline.is_empty(), "baseline produced no outputs");

    // Served run: rate-limited so the job is alive for a while, with
    // query traffic hammering the server the whole time.
    let registry = StateRegistry::new_shared();
    let mut server = ServerBuilder::new("127.0.0.1:0", Arc::clone(&registry))
        .spawn()
        .unwrap();
    let addr = server.local_addr();
    #[cfg(unix)]
    assert_eq!(server.core(), "event-loop");

    let stop = Arc::new(AtomicBool::new(false));
    let hits = Arc::new(AtomicU64::new(0));
    let scanned = Arc::new(AtomicU64::new(0));
    let batch_hits = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::new();
    for t in 0..3u64 {
        let stop = Arc::clone(&stop);
        let hits = Arc::clone(&hits);
        let scanned = Arc::clone(&scanned);
        let batch_hits = Arc::clone(&batch_hits);
        clients.push(std::thread::spawn(move || {
            let mut client = StateClient::connect(addr).expect("connect");
            client.ping().expect("ping");
            assert_eq!(client.version(), PROTOCOL_V2);
            let mut sampled: Vec<Vec<u8>> = Vec::new();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                // Refresh the key sample from a live scan now and then;
                // before any snapshot exists these return UnknownState,
                // which is fine — keep polling.
                if sampled.is_empty() || i % 64 == 0 {
                    if let Ok(scan) = client.scan(JOB, OPERATOR, MIN_TIMESTAMP, MAX_TIMESTAMP, 512)
                    {
                        scanned.fetch_add(scan.entries.len() as u64, Ordering::Relaxed);
                        sampled = scan.entries.into_iter().map(|e| e.key).collect();
                    }
                }
                if let Some(key) = sampled.get(i % sampled.len().max(1)) {
                    if let Ok(r) = client.lookup_latest(JOB, OPERATOR, key) {
                        if r.found.is_some() {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // Exercise the batched v2 surface against the live job:
                // a multi-key lookup over the sample, and a filtered
                // scan restricted to one sampled key's prefix.
                if i % 32 == 0 && !sampled.is_empty() {
                    let keys: Vec<Vec<u8>> = sampled.iter().take(8).cloned().collect();
                    if let Ok(batch) = client.lookup_many(JOB, OPERATOR, &keys, None) {
                        assert_eq!(batch.found.len(), keys.len());
                        let live = batch.found.iter().filter(|f| f.is_some()).count();
                        batch_hits.fetch_add(live as u64, Ordering::Relaxed);
                    }
                    let prefix = sampled[0].clone();
                    if let Ok(scan) = client.scan_filtered(
                        JOB,
                        OPERATOR,
                        ScanFilter::range(MIN_TIMESTAMP, MAX_TIMESTAMP, 64).with_prefix(prefix),
                    ) {
                        scanned.fetch_add(scan.entries.len() as u64, Ordering::Relaxed);
                    }
                }
                if i % 128 == t as usize {
                    let _ = client.metrics(JOB, OPERATOR);
                    let _ = client.list_states();
                    let _ = client.list_states_v2();
                }
                i += 1;
            }
        }));
    }

    let served_dir = ScratchDir::new("serve-int-served").unwrap();
    let served = run_q12(
        served_dir.path(),
        Some(Arc::clone(&registry)),
        Some(120_000),
    );

    // Give clients a last window against the terminal snapshot, then stop.
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::SeqCst);
    for c in clients {
        c.join().expect("client thread panicked");
    }

    assert_eq!(
        baseline, served,
        "serving concurrent queries changed the job's output"
    );
    assert!(
        hits.load(Ordering::Relaxed) > 0,
        "no lookup ever hit a live key; the equivalence check is vacuous"
    );
    assert!(
        scanned.load(Ordering::Relaxed) > 0,
        "no scan ever returned entries"
    );
    assert!(
        batch_hits.load(Ordering::Relaxed) > 0,
        "no batched lookup ever hit a live key"
    );
    assert!(server.requests_served() > 0);
    server.shutdown();
}

#[test]
fn terminal_snapshot_reflects_the_drained_store() {
    // Q12's global window fires exactly once, when the end-of-stream
    // watermark closes it — and firing *consumes* the RMW state. The
    // terminal snapshot published at stream end must therefore be empty
    // and aligned to the max watermark: a query after the job ends sees
    // read-your-drains consistency, not stale aggregates.
    let registry = StateRegistry::new_shared();
    let dir = ScratchDir::new("serve-int-terminal").unwrap();
    let outputs = run_q12(dir.path(), Some(Arc::clone(&registry)), None);
    assert!(!outputs.is_empty());

    let mut server = ServerBuilder::new("127.0.0.1:0", Arc::clone(&registry))
        .spawn()
        .unwrap();
    let mut client = StateClient::connect(server.local_addr()).unwrap();
    client.ping().unwrap();

    let states = client.list_states().unwrap();
    assert_eq!(states.len(), 2, "expected one snapshot per partition");
    assert!(states.iter().all(|s| s.key.job == JOB));
    assert!(states.iter().all(|s| s.watermark == MAX_TIMESTAMP));
    assert!(states.iter().all(|s| s.epoch > 0));
    assert!(
        states.iter().all(|s| s.entries == 0),
        "terminal snapshot still holds entries the window drain consumed"
    );
    // The v1 listing never carries TTLs; Q12's global window never
    // expires, so the v2 listing reports none either.
    assert!(states.iter().all(|s| s.ttl_ms.is_none()));
    let states_v2 = client.list_states_v2().unwrap();
    assert_eq!(states_v2.len(), 2);
    assert!(states_v2.iter().all(|s| s.ttl_ms.is_none()));

    // Emitted keys are gone from queryable state, but the answer still
    // carries the snapshot's coordinates.
    for out in outputs.iter().take(50) {
        let got = client.lookup_latest(JOB, OPERATOR, &out.key).unwrap();
        assert!(got.found.is_none(), "drained key {:?} still live", out.key);
        assert_eq!(got.watermark, MAX_TIMESTAMP);
    }

    // The batched form agrees with the single-shot form, positionally.
    let keys: Vec<Vec<u8>> = outputs.iter().take(10).map(|o| o.key.clone()).collect();
    let batch = client.lookup_many(JOB, OPERATOR, &keys, None).unwrap();
    assert_eq!(batch.found.len(), keys.len());
    assert!(batch.found.iter().all(|f| f.is_none()));
    assert_eq!(batch.watermark, MAX_TIMESTAMP);

    let metrics = client.metrics(JOB, OPERATOR).unwrap();
    assert_eq!(metrics.partitions, 2);
    assert_eq!(metrics.entries, 0);
    assert!(
        metrics.metrics.records_written > 0,
        "merged metrics should reflect the job's writes"
    );
    server.shutdown();
}

#[test]
fn telemetry_server_exposes_prometheus_and_registry_samples() {
    // Run a small job with a telemetry handle attached, then serve both
    // the published snapshots and the telemetry registry.
    let telemetry = Telemetry::new_shared();
    let registry = StateRegistry::new_shared();
    let dir = ScratchDir::new("serve-int-telemetry").unwrap();
    {
        let job = QueryId::Q12.build(QueryParams::new(1_000).with_parallelism(2));
        let mut opts = RunOptions::new(dir.path());
        opts.watermark_interval = 100;
        opts.registry = Some(Arc::clone(&registry));
        opts.telemetry = Some(Arc::clone(&telemetry));
        let factory = Arc::new(FlowKvFactory::new(FlowKvConfig::small_for_tests()));
        run_job(
            &job,
            EventGenerator::new(generator()).tuples(),
            factory,
            &opts,
        )
        .expect("job run failed");
    }

    let mut server = ServerBuilder::new("127.0.0.1:0", Arc::clone(&registry))
        .telemetry(Arc::clone(&telemetry))
        .spawn()
        .unwrap();
    let mut client = StateClient::connect(server.local_addr()).unwrap();

    // The Prometheus opcode returns well-formed exposition text covering
    // the executor's telemetry metrics, the per-operator store counters,
    // and the server's own serving probes.
    let text = client.prometheus().unwrap();
    validate_prometheus(&text).expect("invalid Prometheus exposition text");
    assert!(
        text.contains("flowkv_operator_busy_nanos"),
        "missing executor telemetry in:\n{text}"
    );
    assert!(
        text.contains("flowkv_store_records_written"),
        "missing store counters in:\n{text}"
    );
    assert!(
        text.contains("flowkv_serve_requests_total"),
        "missing serving probes in:\n{text}"
    );
    assert!(text.contains("# TYPE"), "missing TYPE comments");

    // The extended metrics opcode carries the registry samples; the
    // legacy form stays sample-free.
    let (report, samples) = client.metrics_with_registry(JOB, OPERATOR).unwrap();
    assert_eq!(report.partitions, 2);
    assert!(
        samples
            .iter()
            .any(|s| s.name.starts_with("operator_busy_nanos")),
        "registry ride-along missing executor metrics"
    );
    assert!(client.metrics(JOB, OPERATOR).is_ok());
    server.shutdown();
}

/// A pre-v2 client build — no handshake, v1 framing only — round-trips
/// unchanged against the v2 event-loop server: every legacy operation
/// answers exactly as before, including naive pipelining (write N
/// frames, read N in-order responses), which the strict in-order v1
/// path guarantees.
#[test]
fn v1_client_round_trips_unchanged_against_the_v2_server() {
    let registry = StateRegistry::new_shared();
    let keys = publish_fixture(&registry, 2);
    let mut server = ServerBuilder::new("127.0.0.1:0", Arc::clone(&registry))
        .spawn()
        .unwrap();

    let mut client = StateClient::connect_v1(server.local_addr()).unwrap();
    assert_eq!(client.version(), PROTOCOL_V1);
    client.ping().unwrap();

    let states = client.list_states().unwrap();
    assert_eq!(states.len(), 2);
    assert!(
        states.iter().all(|s| s.ttl_ms.is_none()),
        "a v1 listing must not carry TTL metadata"
    );

    for key in &keys {
        let got = client.lookup_latest(JOB, OPERATOR, key).unwrap();
        assert!(got.found.is_some(), "key {key:?} missing over v1");
        assert_eq!(got.epoch, 3);
        assert_eq!(got.watermark, 5_000);
    }
    let scan = client
        .scan(JOB, OPERATOR, MIN_TIMESTAMP, MAX_TIMESTAMP, 1_024)
        .unwrap();
    assert_eq!(scan.entries.len(), keys.len());

    // v1 pipelining: the batch façade falls back to in-order pairing.
    let batch = client
        .call_batch(&[Request::Ping, Request::ListStates, Request::Ping])
        .unwrap();
    assert_eq!(batch.len(), 3);
    assert_eq!(batch[0], Response::Pong);
    assert!(matches!(batch[1], Response::States(_)));
    assert_eq!(batch[2], Response::Pong);

    server.shutdown();
}

/// The v2 path: the handshake upgrades the connection, pipelined
/// batches correlate answers by request id, per-request errors stay in
/// their slot, and the batched query surface (multi-key lookups,
/// filtered scans, TTL-carrying listings) answers correctly.
#[test]
fn pipelined_v2_batches_correlate_by_request_id() {
    let registry = StateRegistry::new_shared();
    let keys = publish_fixture(&registry, 2);
    let mut server = ServerBuilder::new("127.0.0.1:0", Arc::clone(&registry))
        .spawn()
        .unwrap();

    let mut client = StateClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.version(), PROTOCOL_V2);

    // One pipelined batch mixing every shape, including a request that
    // fails (unknown operator): the error must land in its own slot,
    // not poison the batch.
    let batch = client
        .call_batch(&[
            Request::Ping,
            Request::LookupMany {
                job: JOB.into(),
                operator: OPERATOR.into(),
                keys: keys.clone(),
                window: None,
            },
            Request::Lookup {
                job: JOB.into(),
                operator: "no-such-operator".into(),
                key: keys[0].clone(),
                window: None,
            },
            Request::ListStatesV2,
            Request::ScanFiltered {
                job: JOB.into(),
                operator: OPERATOR.into(),
                filter: ScanFilter::range(MIN_TIMESTAMP, MAX_TIMESTAMP, 4),
            },
        ])
        .unwrap();
    assert_eq!(batch.len(), 5);
    assert_eq!(batch[0], Response::Pong);
    match &batch[1] {
        Response::ValueBatch { found, .. } => {
            assert_eq!(found.len(), keys.len());
            assert!(found.iter().all(|f| f.is_some()), "all fixture keys live");
        }
        other => panic!("slot 1: unexpected {other:?}"),
    }
    assert!(
        matches!(&batch[2], Response::Error { .. }),
        "unknown operator must error in its slot, got {:?}",
        batch[2]
    );
    match &batch[3] {
        Response::StatesV2(states) => {
            assert_eq!(states.len(), 2);
            assert!(states.iter().all(|s| s.ttl_ms == Some(1_000)));
        }
        other => panic!("slot 3: unexpected {other:?}"),
    }
    match &batch[4] {
        Response::ScanResult { entries, .. } => assert_eq!(entries.len(), 4),
        other => panic!("slot 4: unexpected {other:?}"),
    }

    // The typed façade over the same surface.
    let batch = client.lookup_many(JOB, OPERATOR, &keys, None).unwrap();
    assert_eq!(batch.epoch, 3);
    assert_eq!(batch.found.len(), keys.len());
    let filtered = client
        .scan_filtered(
            JOB,
            OPERATOR,
            ScanFilter::range(MIN_TIMESTAMP, MAX_TIMESTAMP, 1_024).with_prefix(&b"user:0"[..]),
        )
        .unwrap();
    assert!(!filtered.entries.is_empty());
    assert!(filtered
        .entries
        .iter()
        .all(|e| e.key.starts_with(b"user:0")));

    server.shutdown();
}

/// Both serving cores speak identical wire bytes: the legacy threaded
/// core (kept as the benchmark baseline behind
/// [`ServerBuilder::threaded`]) serves the same v1 and v2 traffic.
#[test]
fn threaded_core_serves_both_protocol_versions() {
    let registry = StateRegistry::new_shared();
    let keys = publish_fixture(&registry, 2);
    let mut server = ServerBuilder::new("127.0.0.1:0", Arc::clone(&registry))
        .threaded(true)
        .max_connections(8)
        .read_timeout(Duration::from_secs(30))
        .spawn()
        .unwrap();
    assert_eq!(server.core(), "threaded");

    let mut v1 = StateClient::connect_v1(server.local_addr()).unwrap();
    v1.ping().unwrap();
    assert!(v1
        .lookup_latest(JOB, OPERATOR, &keys[0])
        .unwrap()
        .found
        .is_some());

    let mut v2 = StateClient::connect(server.local_addr()).unwrap();
    assert_eq!(v2.version(), PROTOCOL_V2);
    let batch = v2.lookup_many(JOB, OPERATOR, &keys, None).unwrap();
    assert!(batch.found.iter().all(|f| f.is_some()));

    server.shutdown();
}

/// The deprecated one-shot constructors still work — they are thin
/// wrappers over [`ServerBuilder`] kept for source compatibility.
#[test]
#[allow(deprecated)]
fn deprecated_spawn_wrappers_still_serve() {
    let registry = StateRegistry::new_shared();
    publish_fixture(&registry, 2);
    let mut server = StateServer::spawn("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let mut client = StateClient::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    assert_eq!(client.list_states().unwrap().len(), 2);
    server.shutdown();

    let mut server = StateServer::spawn_with_telemetry(
        "127.0.0.1:0",
        Arc::clone(&registry),
        Some(Telemetry::new_shared()),
    )
    .unwrap();
    let mut client = StateClient::connect(server.local_addr()).unwrap();
    assert!(client
        .prometheus()
        .unwrap()
        .contains("flowkv_serve_requests_total"));
    server.shutdown();
}
