//! Property tests of the wire protocol: every request and response frame
//! round-trips byte-exactly, malformed frames (truncation, oversized
//! or zero lengths, trailing garbage) are rejected rather than
//! misparsed, and the v2 framing provably wraps byte-identical v1
//! bodies — the compatibility contract behind the version handshake.

use flowkv_common::codec::put_u32;
use flowkv_common::registry::{StateKey, StatePattern, ViewValue};
use flowkv_common::telemetry::{HistogramSnapshot, MetricSample, SampleValue};
use flowkv_common::types::WindowId;
use flowkv_serve::protocol::{
    peek_frame, read_frame, split_request_id, write_frame, write_frame_v2, Request, Response,
    ScanEntry, ScanFilter, StateInfo, MAX_FRAME, MAX_PROTOCOL, PROTOCOL_V2,
};
use proptest::prelude::*;
use proptest::strategy::Union;

fn name_strategy() -> impl Strategy<Value = String> {
    (any::<u64>(), 0u64..4).prop_map(|(v, style)| match style {
        0 => format!("job-{v}"),
        1 => String::new(),
        2 => format!("op/{v}/π"), // non-ASCII survives UTF-8 framing
        _ => format!("{v:x}"),
    })
}

fn bytes_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..64)
}

fn window_strategy() -> impl Strategy<Value = WindowId> {
    any::<(i64, i64)>().prop_map(|(a, b)| WindowId {
        start: a.min(b),
        end: a.max(b),
    })
}

fn view_value_strategy() -> Union<ViewValue> {
    prop_oneof![
        bytes_strategy().prop_map(ViewValue::Aggregate),
        prop::collection::vec(bytes_strategy(), 0..8).prop_map(ViewValue::Values),
    ]
}

fn request_strategy() -> Union<Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::ListStates),
        Just(Request::ListStatesV2),
        any::<u8>().prop_map(|max_version| Request::Hello { max_version }),
        (
            name_strategy(),
            name_strategy(),
            prop::collection::vec(bytes_strategy(), 0..8),
            prop_oneof![Just(None), window_strategy().prop_map(Some),],
        )
            .prop_map(|(job, operator, keys, window)| Request::LookupMany {
                job,
                operator,
                keys,
                window,
            }),
        (
            name_strategy(),
            name_strategy(),
            bytes_strategy(),
            any::<i64>(),
            any::<i64>(),
            any::<u64>(),
        )
            .prop_map(
                |(job, operator, key_prefix, a, b, limit)| Request::ScanFiltered {
                    job,
                    operator,
                    filter: ScanFilter {
                        key_prefix,
                        range_start: a.min(b),
                        range_end: a.max(b),
                        limit,
                    },
                }
            ),
        (
            name_strategy(),
            name_strategy(),
            bytes_strategy(),
            prop_oneof![Just(None), window_strategy().prop_map(Some),],
        )
            .prop_map(|(job, operator, key, window)| Request::Lookup {
                job,
                operator,
                key,
                window,
            }),
        (
            name_strategy(),
            name_strategy(),
            any::<i64>(),
            any::<i64>(),
            any::<u64>(),
        )
            .prop_map(
                |(job, operator, range_start, range_end, limit)| Request::Scan {
                    job,
                    operator,
                    range_start,
                    range_end,
                    limit,
                }
            ),
        (name_strategy(), name_strategy(), any::<bool>()).prop_map(
            |(job, operator, include_registry)| Request::Metrics {
                job,
                operator,
                include_registry,
            }
        ),
        Just(Request::Prometheus),
        any::<bool>().prop_map(|drain| Request::TraceSummary { drain }),
    ]
}

fn attr_row_strategy() -> impl Strategy<Value = flowkv_common::trace::AttributionRow> {
    (name_strategy(), prop::collection::vec(any::<u64>(), 5..6)).prop_map(|(stage, v)| {
        flowkv_common::trace::AttributionRow {
            stage,
            count: v[0],
            p50: v[1],
            p99: v[2],
            p999: v[3],
            total_nanos: v[4],
        }
    })
}

fn sample_strategy() -> impl Strategy<Value = MetricSample> {
    (
        name_strategy(),
        prop_oneof![
            any::<u64>().prop_map(SampleValue::Counter),
            any::<i64>().prop_map(SampleValue::Gauge),
            (
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                prop::collection::vec(any::<u64>(), 0..32),
            )
                .prop_map(|(count, sum, min, max, counts)| {
                    SampleValue::Histogram(HistogramSnapshot {
                        counts,
                        count,
                        sum,
                        min,
                        max,
                    })
                }),
        ],
    )
        .prop_map(|(name, value)| MetricSample { name, value })
}

fn state_info_strategy() -> impl Strategy<Value = StateInfo> {
    (
        (name_strategy(), name_strategy(), 0usize..64),
        0u64..4,
        any::<u64>(),
        any::<i64>(),
        prop_oneof![Just(None), any::<u64>().prop_map(Some)],
    )
        .prop_map(
            |((job, operator, partition), pattern, epoch, watermark, ttl_ms)| StateInfo {
                key: StateKey::new(job, operator, partition),
                pattern: StatePattern::from_u8(pattern as u8),
                epoch,
                watermark,
                entries: epoch.wrapping_mul(31),
                ttl_ms,
            },
        )
}

fn scan_entry_strategy() -> impl Strategy<Value = ScanEntry> {
    (bytes_strategy(), window_strategy(), view_value_strategy())
        .prop_map(|(key, window, value)| ScanEntry { key, window, value })
}

fn metrics_strategy() -> impl Strategy<Value = flowkv_common::metrics::MetricsSnapshot> {
    prop::collection::vec(any::<u64>(), 12..13).prop_map(|v| {
        let mut m = flowkv_common::metrics::MetricsSnapshot::default();
        m.write_nanos = v[0];
        m.read_nanos = v[1];
        m.compaction_nanos = v[2];
        m.bytes_written = v[3];
        m.bytes_read = v[4];
        m.records_written = v[5];
        m.records_read = v[6];
        m.prefetch_hits = v[7];
        m.prefetch_misses = v[8];
        m.prefetch_evictions = v[9];
        m.flushes = v[10];
        m.compactions = v[11];
        m
    })
}

fn response_strategy() -> Union<Response> {
    prop_oneof![
        Just(Response::Pong),
        any::<u8>().prop_map(|version| Response::HelloAck { version }),
        // The v1 listing never carries TTLs: the frame has no slot for
        // them, so a faithful roundtrip needs them cleared.
        prop::collection::vec(state_info_strategy(), 0..8).prop_map(|mut states| {
            for s in &mut states {
                s.ttl_ms = None;
            }
            Response::States(states)
        }),
        prop::collection::vec(state_info_strategy(), 0..8).prop_map(Response::StatesV2),
        (
            any::<u64>(),
            any::<i64>(),
            prop::collection::vec(
                prop_oneof![
                    Just(None),
                    (window_strategy(), view_value_strategy()).prop_map(Some),
                ],
                0..8,
            ),
        )
            .prop_map(|(epoch, watermark, found)| Response::ValueBatch {
                epoch,
                watermark,
                found,
            }),
        (
            any::<u64>(),
            any::<i64>(),
            prop_oneof![
                Just(None),
                (window_strategy(), view_value_strategy()).prop_map(Some),
            ],
        )
            .prop_map(|(epoch, watermark, found)| Response::Value {
                epoch,
                watermark,
                found,
            }),
        (
            any::<u64>(),
            any::<i64>(),
            prop::collection::vec(scan_entry_strategy(), 0..8),
        )
            .prop_map(|(epoch, watermark, entries)| Response::ScanResult {
                epoch,
                watermark,
                entries,
            }),
        (
            0u64..4,
            any::<u64>(),
            any::<u64>(),
            any::<i64>(),
            metrics_strategy(),
            prop::collection::vec(sample_strategy(), 0..6),
        )
            .prop_map(
                |(pattern, partitions, entries, watermark, metrics, registry)| {
                    Response::MetricsReport {
                        pattern: StatePattern::from_u8(pattern as u8),
                        partitions,
                        entries,
                        watermark,
                        metrics,
                        registry,
                    }
                }
            ),
        name_strategy().prop_map(Response::PrometheusText),
        (
            any::<u64>(),
            prop::collection::vec(attr_row_strategy(), 0..8),
            attr_row_strategy(),
        )
            .prop_map(|(traces, rows, total)| Response::TraceSummaryReport {
                traces,
                rows,
                total,
            }),
        (0u64..3, name_strategy()).prop_map(|(code, message)| Response::Error {
            code: match code {
                0 => flowkv_serve::ErrorCode::BadRequest,
                1 => flowkv_serve::ErrorCode::UnknownState,
                _ => flowkv_serve::ErrorCode::Internal,
            },
            message,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrip(req in request_strategy()) {
        let payload = req.encode();
        prop_assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    #[test]
    fn response_roundtrip(resp in response_strategy()) {
        let payload = resp.encode();
        prop_assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn framed_roundtrip_through_a_stream(
        reqs in prop::collection::vec(request_strategy(), 1..10),
    ) {
        let mut wire = Vec::new();
        for r in &reqs {
            write_frame(&mut wire, &r.encode()).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for r in &reqs {
            let payload = read_frame(&mut cursor).unwrap().expect("frame present");
            prop_assert_eq!(&Request::decode(&payload).unwrap(), r);
        }
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_never_parse(
        req in request_strategy(),
        cut_sel in any::<prop::sample::Index>(),
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        // Cut strictly inside the frame: decoding must error, not hang or
        // return a bogus frame.
        let cut = 1 + cut_sel.index(wire.len() - 1);
        let mut cursor = std::io::Cursor::new(&wire[..cut]);
        prop_assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected(req in request_strategy(), junk in 1u8..=255) {
        let mut payload = req.encode();
        payload.push(junk);
        match (&req, junk) {
            // The one deliberate exception: a flag-less Metrics frame
            // followed by the single byte `1` IS the extended frame that
            // requests registry samples.
            (
                Request::Metrics {
                    job,
                    operator,
                    include_registry: false,
                },
                1,
            ) => {
                let decoded = Request::decode(&payload).unwrap();
                prop_assert_eq!(
                    decoded,
                    Request::Metrics {
                        job: job.clone(),
                        operator: operator.clone(),
                        include_registry: true,
                    }
                );
            }
            // Same pattern for TraceSummary: a flag-less frame plus the
            // byte `1` is the drain request.
            (Request::TraceSummary { drain: false }, 1) => {
                prop_assert_eq!(
                    Request::decode(&payload).unwrap(),
                    Request::TraceSummary { drain: true }
                );
            }
            _ => prop_assert!(Request::decode(&payload).is_err()),
        }
    }

    /// A bare TraceSummary opcode (what a minimal client sends) decodes
    /// as `drain: false`, the new encoder emits exactly that one-byte
    /// frame when the flag is off, and the drain frame is the same frame
    /// plus a single `1` byte.
    #[test]
    fn legacy_trace_summary_frames_interoperate(_seed in any::<u8>()) {
        let legacy = vec![0x07u8];
        let off = Request::TraceSummary { drain: false };
        prop_assert_eq!(&off.encode(), &legacy);
        prop_assert_eq!(Request::decode(&legacy).unwrap(), off);
        let on = Request::TraceSummary { drain: true };
        let mut extended = legacy;
        extended.push(1);
        prop_assert_eq!(&on.encode(), &extended);
        prop_assert_eq!(Request::decode(&extended).unwrap(), on);
    }

    /// A pre-telemetry client's Metrics frame (opcode + the two names,
    /// no flag byte) still decodes, as `include_registry: false` — and
    /// the new encoder emits exactly that legacy frame when the flag is
    /// off, so old servers keep answering new clients.
    #[test]
    fn legacy_metrics_request_frames_interoperate(
        job in name_strategy(),
        operator in name_strategy(),
    ) {
        let mut legacy = vec![0x05u8];
        flowkv_common::codec::put_len_prefixed(&mut legacy, job.as_bytes());
        flowkv_common::codec::put_len_prefixed(&mut legacy, operator.as_bytes());
        let off = Request::Metrics {
            job: job.clone(),
            operator: operator.clone(),
            include_registry: false,
        };
        prop_assert_eq!(&off.encode(), &legacy);
        prop_assert_eq!(Request::decode(&legacy).unwrap(), off);
        let on = Request::Metrics {
            job,
            operator,
            include_registry: true,
        };
        let mut extended = legacy;
        extended.push(1);
        prop_assert_eq!(&on.encode(), &extended);
        prop_assert_eq!(Request::decode(&extended).unwrap(), on);
    }

    /// The registry samples ride as a pure suffix on the MetricsReport
    /// frame: the extended frame starts with the byte-identical legacy
    /// frame, and that legacy prefix alone still decodes (what an old
    /// client effectively sees when the registry is empty).
    #[test]
    fn metrics_report_registry_suffix_is_optional(
        partitions in any::<u64>(),
        entries in any::<u64>(),
        watermark in any::<i64>(),
        metrics in metrics_strategy(),
        registry in prop::collection::vec(sample_strategy(), 1..6),
    ) {
        let make = |registry: Vec<MetricSample>| Response::MetricsReport {
            pattern: StatePattern::from_u8(1),
            partitions,
            entries,
            watermark,
            metrics: metrics.clone(),
            registry,
        };
        let legacy = make(Vec::new()).encode();
        let full = make(registry.clone()).encode();
        prop_assert!(full.len() > legacy.len());
        prop_assert_eq!(&full[..legacy.len()], &legacy[..]);
        match Response::decode(&legacy).unwrap() {
            Response::MetricsReport { registry, .. } => prop_assert!(registry.is_empty()),
            other => prop_assert!(false, "unexpected: {:?}", other),
        }
        match Response::decode(&full).unwrap() {
            Response::MetricsReport { registry: got, .. } => prop_assert_eq!(got, registry),
            other => prop_assert!(false, "unexpected: {:?}", other),
        }
    }

    #[test]
    fn corrupt_response_payloads_do_not_panic(
        resp in response_strategy(),
        idx in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut payload = resp.encode();
        let i = idx.index(payload.len());
        payload[i] ^= flip;
        // Any outcome but a panic is acceptable: either the mutation is
        // caught, or it decodes to a (different or equal-by-luck) value.
        let _ = Response::decode(&payload);
    }

    #[test]
    fn oversized_lengths_are_rejected(extra in 1u64..=u32::MAX as u64 - MAX_FRAME as u64) {
        let mut wire = Vec::new();
        put_u32(&mut wire, (MAX_FRAME as u64 + extra) as u32);
        wire.extend_from_slice(&[0u8; 64]);
        prop_assert!(read_frame(&mut std::io::Cursor::new(wire)).is_err());
    }

    /// The v2 handshake changes framing, never bodies: any v1 request
    /// wrapped in a v2 frame carries the byte-identical v1 payload after
    /// the request id, and decodes to the same value. This is the
    /// compatibility contract that lets one `Session` serve both
    /// versions from the same decoder.
    #[test]
    fn v1_request_bodies_decode_identically_after_handshake(
        req in request_strategy(),
        id in any::<u64>(),
    ) {
        let v1_payload = req.encode();
        let mut wire = Vec::new();
        write_frame_v2(&mut wire, id, &v1_payload).unwrap();
        let (consumed, range) = peek_frame(&wire).unwrap().expect("complete frame");
        prop_assert_eq!(consumed, wire.len());
        let (got_id, body) = split_request_id(&wire[range]).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(body, &v1_payload[..]);
        prop_assert_eq!(&Request::decode(body).unwrap(), &req);
    }

    /// Same contract on the response path: the id-prefixed v2 frame
    /// wraps the byte-identical v1 response payload.
    #[test]
    fn v1_response_bodies_decode_identically_after_handshake(
        resp in response_strategy(),
        id in any::<u64>(),
    ) {
        let v1_payload = resp.encode();
        let mut wire = Vec::new();
        write_frame_v2(&mut wire, id, &v1_payload).unwrap();
        let (_, range) = peek_frame(&wire).unwrap().expect("complete frame");
        let (got_id, body) = split_request_id(&wire[range]).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(body, &v1_payload[..]);
        prop_assert_eq!(&Response::decode(body).unwrap(), &resp);
    }

    /// A pipelined burst of v2 frames splits back into the same
    /// (id, request) sequence, in order — what the event loop's
    /// buffer-draining loop relies on.
    #[test]
    fn pipelined_v2_frames_preserve_ids_and_order(
        batch in prop::collection::vec((any::<u64>(), request_strategy()), 1..10),
    ) {
        let mut wire = Vec::new();
        for (id, req) in &batch {
            write_frame_v2(&mut wire, *id, &req.encode()).unwrap();
        }
        let mut offset = 0usize;
        for (id, req) in &batch {
            let (consumed, range) = peek_frame(&wire[offset..]).unwrap().expect("frame");
            let (got_id, body) = split_request_id(&wire[offset..][range]).unwrap();
            prop_assert_eq!(got_id, *id);
            prop_assert_eq!(&Request::decode(body).unwrap(), req);
            offset += consumed;
        }
        prop_assert_eq!(offset, wire.len());
        prop_assert!(peek_frame(&wire[offset..]).unwrap().is_none());
    }

    /// Handshake frames always travel in v1 framing (they are what
    /// *establishes* v2), so they must roundtrip through the v1
    /// stream reader like any legacy frame.
    #[test]
    fn handshake_frames_travel_in_v1_framing(version in any::<u8>()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Hello { max_version: MAX_PROTOCOL }.encode()).unwrap();
        write_frame(&mut wire, &Response::HelloAck { version }.encode()).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let hello = read_frame(&mut cursor).unwrap().expect("hello frame");
        prop_assert_eq!(
            Request::decode(&hello).unwrap(),
            Request::Hello { max_version: MAX_PROTOCOL }
        );
        let ack = read_frame(&mut cursor).unwrap().expect("ack frame");
        prop_assert_eq!(Response::decode(&ack).unwrap(), Response::HelloAck { version });
        let _ = PROTOCOL_V2;
    }

    /// The v1 listing silently drops TTL metadata: rows with TTLs encode
    /// byte-identically to rows without, and decode with `ttl_ms: None` —
    /// while the v2 listing roundtrips them faithfully. An old client
    /// asking `ListStates` therefore sees exactly the pre-TTL frame.
    #[test]
    fn v1_listing_drops_ttl_v2_listing_keeps_it(
        states in prop::collection::vec(state_info_strategy(), 0..8),
    ) {
        let mut cleared = states.clone();
        for s in &mut cleared {
            s.ttl_ms = None;
        }
        let with_ttl = Response::States(states.clone()).encode();
        let without = Response::States(cleared.clone()).encode();
        prop_assert_eq!(&with_ttl, &without);
        match Response::decode(&with_ttl).unwrap() {
            Response::States(got) => prop_assert_eq!(got, cleared),
            other => prop_assert!(false, "unexpected: {:?}", other),
        }
        let v2 = Response::StatesV2(states.clone()).encode();
        match Response::decode(&v2).unwrap() {
            Response::StatesV2(got) => prop_assert_eq!(got, states),
            other => prop_assert!(false, "unexpected: {:?}", other),
        }
    }
}
