//! TCP server answering read-only queries over a [`StateRegistry`].
//!
//! The server never touches a live store: it only reads the immutable
//! [`StateView`](flowkv_common::registry::StateView) snapshots workers
//! publish at watermark boundaries. Snapshots are shared via `Arc`, so
//! concurrent queries cost no copies and no coordination with the job's
//! workers.
//!
//! Two serving cores share one wire-protocol state machine
//! ([`Session`]):
//!
//! * The default **event-loop core** ([`event_loop`](crate::event_loop))
//!   multiplexes every connection onto one readiness-polled thread with
//!   per-connection read/write buffers. Pipelined clients get every
//!   buffered frame answered per wake-up.
//! * The legacy **threaded core** dedicates a thread per connection,
//!   blocking on each read. It remains available via
//!   [`ServerBuilder::threaded`] as a baseline and as the fallback on
//!   platforms without readiness polling.
//!
//! Both cores are configured through [`ServerBuilder`]; the old
//! `StateServer::spawn*` constructors survive as deprecated wrappers.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flowkv_common::error::{Result, StoreError};
use flowkv_common::hash::partition_of;
use flowkv_common::metrics::MetricsSnapshot;
use flowkv_common::registry::{StateKey, StatePattern, StateRegistry};
use flowkv_common::telemetry::{
    self, Counter, Gauge, Histogram, MetricSample, SampleValue, Telemetry,
};
use flowkv_common::trace::{self, TraceHandle};
use flowkv_common::types::{Timestamp, MAX_TIMESTAMP};

use crate::protocol::{
    read_frame, split_request_id, write_frame, write_frame_v2, ErrorCode, Request, Response,
    ScanEntry, StateInfo, MAX_PROTOCOL, PROTOCOL_V1, PROTOCOL_V2,
};

/// How often the threaded accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Default cap on concurrently open client connections.
const DEFAULT_MAX_CONNECTIONS: usize = 1024;

/// Telemetry probes of the serving layer (the `serve_*` metric family).
pub(crate) struct ServeProbes {
    /// Frames answered, including errors (`serve_requests_total`).
    pub requests: Arc<Counter>,
    /// Error responses sent (`serve_errors_total`).
    pub errors: Arc<Counter>,
    /// Connections ever accepted (`serve_connections_total`).
    pub connections_total: Arc<Counter>,
    /// Currently open connections (`serve_connections_open`).
    pub connections_open: Arc<Gauge>,
    /// Completed v2 handshakes (`serve_handshakes_total`).
    pub handshakes: Arc<Counter>,
    /// Frames answered per read wake-up (`serve_pipeline_depth`): depth
    /// 1 is a strict request/response client, higher means pipelining
    /// is paying off.
    pub pipeline_depth: Arc<Histogram>,
    /// Bytes read off client sockets (`serve_bytes_read_total`).
    pub bytes_read: Arc<Counter>,
    /// Bytes written to client sockets (`serve_bytes_written_total`).
    pub bytes_written: Arc<Counter>,
}

impl ServeProbes {
    fn new(t: &Telemetry) -> Self {
        let r = t.registry();
        ServeProbes {
            requests: r.counter("serve_requests_total"),
            errors: r.counter("serve_errors_total"),
            connections_total: r.counter("serve_connections_total"),
            connections_open: r.gauge("serve_connections_open"),
            handshakes: r.counter("serve_handshakes_total"),
            pipeline_depth: r.histogram("serve_pipeline_depth"),
            bytes_read: r.counter("serve_bytes_read_total"),
            bytes_written: r.counter("serve_bytes_written_total"),
        }
    }
}

/// Everything a serving core needs to answer requests, shared across
/// connections and cores.
pub(crate) struct ServeShared {
    pub registry: Arc<StateRegistry>,
    pub telemetry: Option<Arc<Telemetry>>,
    pub served: Arc<AtomicU64>,
    pub probes: Option<ServeProbes>,
}

/// Per-connection wire-protocol state machine, shared by both cores.
///
/// A session starts in protocol v1. A [`Request::Hello`] switches it to
/// the negotiated version; from then on every frame carries (and every
/// response echoes) a request id. Keeping this logic in one place is
/// what guarantees the event-loop core and the threaded core speak
/// byte-identical protocol.
pub(crate) struct Session {
    version: u8,
}

impl Session {
    pub fn new() -> Self {
        Session {
            version: PROTOCOL_V1,
        }
    }

    /// Answers one frame payload, appending the complete response frame
    /// (length prefix included) to `out`.
    ///
    /// An `Err` is fatal to the connection: it means the peer broke
    /// framing (e.g. a v2 frame too short for its request id), after
    /// which no resynchronisation is possible.
    pub fn handle(
        &mut self,
        shared: &ServeShared,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        shared.served.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &shared.probes {
            p.requests.inc();
        }
        let (request_id, response) = if self.version >= PROTOCOL_V2 {
            let (id, body) = split_request_id(payload)?;
            let response = match Request::decode(body) {
                // Renegotiating mid-stream is not a thing: ids would be
                // ambiguous across the switch.
                Ok(Request::Hello { .. }) => Response::Error {
                    code: ErrorCode::BadRequest,
                    message: "handshake already completed".into(),
                },
                Ok(request) => answer(&shared.registry, shared.telemetry.as_deref(), request),
                Err(e) => Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                },
            };
            (Some(id), response)
        } else {
            let response = match Request::decode(payload) {
                Ok(Request::Hello { max_version }) => {
                    let version = max_version.clamp(PROTOCOL_V1, MAX_PROTOCOL);
                    // The ack still travels in v1 framing; the switch
                    // applies from the next frame.
                    self.version = version;
                    if version >= PROTOCOL_V2 {
                        if let Some(p) = &shared.probes {
                            p.handshakes.inc();
                        }
                    }
                    Response::HelloAck { version }
                }
                Ok(request) => answer(&shared.registry, shared.telemetry.as_deref(), request),
                Err(e) => Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                },
            };
            (None, response)
        };
        if matches!(response, Response::Error { .. }) {
            if let Some(p) = &shared.probes {
                p.errors.inc();
            }
        }
        match request_id {
            Some(id) => write_frame_v2(out, id, &response.encode()),
            None => write_frame(out, &response.encode()),
        }
    }
}

/// Configures and spawns a [`StateServer`].
///
/// This is the one construction path for the serving layer: address and
/// registry are mandatory, everything else has defaults.
///
/// ```no_run
/// # use std::sync::Arc;
/// # use flowkv_common::registry::StateRegistry;
/// # use flowkv_serve::ServerBuilder;
/// let registry = StateRegistry::new_shared();
/// let server = ServerBuilder::new("127.0.0.1:0", Arc::clone(&registry))
///     .max_connections(256)
///     .spawn()
///     .unwrap();
/// ```
pub struct ServerBuilder {
    addrs: std::io::Result<Vec<SocketAddr>>,
    registry: Arc<StateRegistry>,
    telemetry: Option<Arc<Telemetry>>,
    trace: Option<TraceHandle>,
    max_connections: usize,
    read_timeout: Option<Duration>,
    threaded: bool,
}

impl ServerBuilder {
    /// Starts a builder binding `addr` (e.g. `"127.0.0.1:0"` for an
    /// ephemeral port), serving the snapshots published in `registry`.
    pub fn new(addr: impl ToSocketAddrs, registry: Arc<StateRegistry>) -> Self {
        ServerBuilder {
            addrs: addr.to_socket_addrs().map(|it| it.collect()),
            registry,
            telemetry: None,
            trace: None,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            read_timeout: None,
            threaded: false,
        }
    }

    /// Exposes `telemetry` through the metrics and Prometheus opcodes,
    /// and registers the server's own `serve_*` probes in it.
    pub fn telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Attaches a span tracer, served by the trace-summary opcode. The
    /// handle is installed into the server's telemetry (which is created
    /// if none was given).
    pub fn tracer(mut self, handle: TraceHandle) -> Self {
        self.trace = Some(handle);
        self
    }

    /// Caps concurrently open client connections (default 1024).
    /// Accepts beyond the cap are closed immediately.
    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = n.max(1);
        self
    }

    /// Closes connections that complete no frame for `timeout`
    /// (default: never).
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Selects the legacy thread-per-connection core instead of the
    /// event loop. Useful as a benchmark baseline; platforms without
    /// readiness polling fall back to it automatically.
    pub fn threaded(mut self, threaded: bool) -> Self {
        self.threaded = threaded;
        self
    }

    /// Binds the address and starts serving.
    pub fn spawn(self) -> Result<StateServer> {
        let addrs = self
            .addrs
            .map_err(|e| StoreError::io("state server resolve", e))?;
        let listener =
            TcpListener::bind(&addrs[..]).map_err(|e| StoreError::io("state server bind", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| StoreError::io("state server set_nonblocking", e))?;
        let local = listener
            .local_addr()
            .map_err(|e| StoreError::io("state server local_addr", e))?;
        let telemetry = match (self.telemetry, self.trace) {
            (telemetry, Some(handle)) => {
                let t = telemetry.unwrap_or_else(Telemetry::new_shared);
                t.set_trace(handle);
                Some(t)
            }
            (telemetry, None) => telemetry,
        };
        let probes = telemetry.as_deref().map(ServeProbes::new);
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let shared = Arc::new(ServeShared {
            registry: self.registry,
            telemetry,
            served: Arc::clone(&served),
            probes,
        });

        #[cfg(unix)]
        let poller = if self.threaded {
            None
        } else {
            // A poller that cannot be built (exotic platform, fd limit)
            // downgrades to the threaded core instead of failing spawn.
            crate::poll::Poller::new().ok()
        };
        #[cfg(not(unix))]
        let poller: Option<crate::poll::Poller> = None;

        let core = if poller.is_some() {
            "event-loop"
        } else {
            "threaded"
        };
        let max_connections = self.max_connections;
        let read_timeout = self.read_timeout;
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("flowkv-serve-core".into())
                .spawn(move || match poller {
                    #[cfg(unix)]
                    Some(poller) => crate::event_loop::run(
                        poller,
                        listener,
                        shared,
                        stop,
                        crate::event_loop::EventLoopConfig {
                            max_connections,
                            idle_timeout: read_timeout,
                        },
                    ),
                    _ => accept_loop(listener, shared, stop, max_connections, read_timeout),
                })
                .map_err(|e| StoreError::io("state server core thread", e))?
        };
        Ok(StateServer {
            addr: local,
            stop,
            core_thread: Some(thread),
            served,
            core,
        })
    }
}

/// A running state server.
///
/// Dropping the handle (or calling [`StateServer::shutdown`]) stops the
/// serving core and joins its threads.
pub struct StateServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    core_thread: Option<JoinHandle<()>>,
    served: Arc<AtomicU64>,
    core: &'static str,
}

impl StateServer {
    /// Binds `addr` and starts serving queries over `registry`.
    #[deprecated(note = "use `ServerBuilder::new(addr, registry).spawn()`")]
    pub fn spawn(addr: impl ToSocketAddrs, registry: Arc<StateRegistry>) -> Result<Self> {
        ServerBuilder::new(addr, registry).spawn()
    }

    /// Like `spawn`, additionally exposing `telemetry` through the
    /// metrics and Prometheus opcodes.
    #[deprecated(note = "use `ServerBuilder::new(addr, registry).telemetry(t).spawn()`")]
    pub fn spawn_with_telemetry(
        addr: impl ToSocketAddrs,
        registry: Arc<StateRegistry>,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<Self> {
        let mut builder = ServerBuilder::new(addr, registry);
        if let Some(t) = telemetry {
            builder = builder.telemetry(t);
        }
        builder.spawn()
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests answered so far (including errors).
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Which serving core is running: `"event-loop"` or `"threaded"`.
    pub fn core(&self) -> &'static str {
        self.core
    }

    /// Stops accepting connections and joins the serving core.
    ///
    /// Responses already computed are flushed; anything unread on a
    /// socket afterwards is dropped.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.core_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StateServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<ServeShared>,
    stop: Arc<AtomicBool>,
    max_connections: usize,
    read_timeout: Option<Duration>,
) {
    let open = Arc::new(AtomicI64::new(0));
    let mut conn_threads = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if open.load(Ordering::Relaxed) >= max_connections as i64 {
                    drop(stream);
                    continue;
                }
                open.fetch_add(1, Ordering::Relaxed);
                if let Some(p) = &shared.probes {
                    p.connections_total.inc();
                    p.connections_open.set(open.load(Ordering::Relaxed));
                }
                let thread_shared = Arc::clone(&shared);
                let thread_stop = Arc::clone(&stop);
                let thread_open = Arc::clone(&open);
                let handle = std::thread::Builder::new()
                    .name("flowkv-serve-conn".into())
                    .spawn(move || {
                        serve_connection(stream, &thread_shared, &thread_stop, read_timeout);
                        let n = thread_open.fetch_sub(1, Ordering::Relaxed) - 1;
                        if let Some(p) = &thread_shared.probes {
                            p.connections_open.set(n);
                        }
                    });
                match handle {
                    Ok(h) => conn_threads.push(h),
                    Err(_) => {
                        open.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
        // Reap finished connection threads so a long-lived server does
        // not accumulate handles.
        conn_threads.retain(|h| !h.is_finished());
    }
    for h in conn_threads {
        let _ = h.join();
    }
}

fn serve_connection(
    stream: TcpStream,
    shared: &ServeShared,
    stop: &AtomicBool,
    read_timeout: Option<Duration>,
) {
    // A finite socket timeout doubles as the shutdown poll interval: an
    // idle connection wakes up, notices the flag, and exits.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    let mut session = Session::new();
    let mut out = Vec::new();
    let mut last_active = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(StoreError::Io { source, .. })
                if matches!(
                    source.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if read_timeout.is_some_and(|t| last_active.elapsed() > t) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        last_active = Instant::now();
        out.clear();
        if session.handle(shared, &payload, &mut out).is_err() {
            return;
        }
        use std::io::Write as _;
        if writer.write_all(&out).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

fn unknown_state(job: &str, operator: &str) -> Response {
    Response::Error {
        code: ErrorCode::UnknownState,
        message: format!("no published state for {job}/{operator}"),
    }
}

/// Computes the response for one decoded request.
///
/// Exposed to the crate so the integration tests can exercise query
/// semantics without a socket. [`Request::Hello`] never reaches this
/// function on a live connection ([`Session`] intercepts it); a stray
/// one is answered with `BadRequest`.
pub(crate) fn answer(
    registry: &StateRegistry,
    telemetry: Option<&Telemetry>,
    request: Request,
) -> Response {
    match request {
        Request::Hello { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "unexpected handshake frame".into(),
        },
        Request::Ping => Response::Pong,
        Request::ListStates => {
            Response::States(registry.list().into_iter().map(StateInfo::from).collect())
        }
        Request::ListStatesV2 => {
            Response::StatesV2(registry.list().into_iter().map(StateInfo::from).collect())
        }
        Request::Lookup {
            job,
            operator,
            key,
            window,
        } => {
            // Keys are routed to partitions by hash, exactly as the
            // executor routes tuples, so only one snapshot can hold the
            // key. The partition count is recovered from the registry:
            // workers publish densely indexed partitions 0..n.
            let views = registry.operator_views(&job, &operator);
            if views.is_empty() {
                return unknown_state(&job, &operator);
            }
            let n = views.last().map(|(p, _)| p + 1).unwrap_or(1);
            let target = partition_of(&key, n);
            let Some(view) = views
                .iter()
                .find(|(p, _)| *p == target)
                .map(|(_, v)| Arc::clone(v))
            else {
                return unknown_state(&job, &operator);
            };
            let found = match window {
                Some(w) => view.get(&key, w).map(|v| (w, v.clone())),
                None => view.get_latest(&key).map(|(w, v)| (w, v.clone())),
            };
            Response::Value {
                epoch: view.epoch,
                watermark: view.watermark,
                found,
            }
        }
        Request::LookupMany {
            job,
            operator,
            keys,
            window,
        } => {
            let views = registry.operator_views(&job, &operator);
            if views.is_empty() {
                return unknown_state(&job, &operator);
            }
            let n = views.last().map(|(p, _)| p + 1).unwrap_or(1);
            let mut epoch = u64::MAX;
            let mut watermark = MAX_TIMESTAMP;
            for (_, view) in &views {
                epoch = epoch.min(view.epoch);
                watermark = watermark.min(view.watermark);
            }
            let found =
                keys.iter()
                    .map(|key| {
                        let target = partition_of(key, n);
                        views.iter().find(|(p, _)| *p == target).and_then(
                            |(_, view)| match window {
                                Some(w) => view.get(key, w).map(|v| (w, v.clone())),
                                None => view.get_latest(key).map(|(w, v)| (w, v.clone())),
                            },
                        )
                    })
                    .collect();
            Response::ValueBatch {
                epoch,
                watermark,
                found,
            }
        }
        Request::Scan {
            job,
            operator,
            range_start,
            range_end,
            limit,
        } => {
            let views = registry.operator_views(&job, &operator);
            if views.is_empty() {
                return unknown_state(&job, &operator);
            }
            let limit = usize::try_from(limit).unwrap_or(usize::MAX);
            let mut entries = Vec::new();
            let mut epoch = u64::MAX;
            let mut watermark = MAX_TIMESTAMP;
            for (_, view) in &views {
                epoch = epoch.min(view.epoch);
                watermark = watermark.min(view.watermark);
                let remaining = limit.saturating_sub(entries.len());
                if remaining == 0 {
                    break;
                }
                for (key, window, value) in view.scan_windows(range_start, range_end, remaining) {
                    entries.push(ScanEntry {
                        key: key.to_vec(),
                        window,
                        value: value.clone(),
                    });
                }
            }
            Response::ScanResult {
                epoch,
                watermark,
                entries,
            }
        }
        Request::ScanFiltered {
            job,
            operator,
            filter,
        } => {
            let views = registry.operator_views(&job, &operator);
            if views.is_empty() {
                return unknown_state(&job, &operator);
            }
            let limit = usize::try_from(filter.limit).unwrap_or(usize::MAX);
            let mut entries = Vec::new();
            let mut epoch = u64::MAX;
            let mut watermark = MAX_TIMESTAMP;
            for (_, view) in &views {
                epoch = epoch.min(view.epoch);
                watermark = watermark.min(view.watermark);
                let remaining = limit.saturating_sub(entries.len());
                if remaining == 0 {
                    continue;
                }
                for (key, window, value) in view.scan_filtered(
                    &filter.key_prefix,
                    filter.range_start,
                    filter.range_end,
                    remaining,
                ) {
                    entries.push(ScanEntry {
                        key: key.to_vec(),
                        window,
                        value: value.clone(),
                    });
                }
            }
            Response::ScanResult {
                epoch,
                watermark,
                entries,
            }
        }
        Request::Metrics {
            job,
            operator,
            include_registry,
        } => {
            let views = registry.operator_views(&job, &operator);
            if views.is_empty() {
                return unknown_state(&job, &operator);
            }
            let mut metrics = MetricsSnapshot::default();
            let mut entries = 0u64;
            let mut watermark: Timestamp = MAX_TIMESTAMP;
            let mut pattern = StatePattern::Unknown;
            for (_, view) in &views {
                metrics = metrics.merged(&view.metrics);
                entries += view.len() as u64;
                watermark = watermark.min(view.watermark);
                pattern = view.pattern;
            }
            let samples = if include_registry {
                telemetry
                    .map(|t| t.registry().snapshot())
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            Response::MetricsReport {
                pattern,
                partitions: views.len() as u64,
                entries,
                watermark,
                metrics,
                registry: samples,
            }
        }
        Request::Prometheus => {
            let samples = prometheus_samples(registry, telemetry);
            Response::PrometheusText(telemetry::render_prometheus(&samples))
        }
        Request::TraceSummary { drain } => {
            // An untraced job answers with an empty (all-zero) table
            // rather than an error: clients can poll unconditionally.
            let threads = telemetry
                .and_then(|t| t.trace())
                .map(|h| {
                    if drain {
                        h.tracer.drain()
                    } else {
                        h.tracer.snapshot()
                    }
                })
                .unwrap_or_default();
            let a = trace::attribution(&trace::flatten(&threads));
            Response::TraceSummaryReport {
                traces: a.traces,
                rows: a.rows,
                total: a.total,
            }
        }
    }
}

/// Collects everything the server can expose to a Prometheus scrape:
/// the telemetry registry plus the per-operator store counters of every
/// published state, rendered as
/// `store_<counter>{job=...,operator=...}` series.
fn prometheus_samples(
    registry: &StateRegistry,
    telemetry: Option<&Telemetry>,
) -> Vec<MetricSample> {
    let mut samples = telemetry
        .map(|t| t.registry().snapshot())
        .unwrap_or_default();
    let mut operators: Vec<(String, String)> = registry
        .list()
        .into_iter()
        .map(|d| (d.key.job, d.key.operator))
        .collect();
    operators.sort();
    operators.dedup();
    for (job, operator) in operators {
        let mut merged = MetricsSnapshot::default();
        for (_, view) in registry.operator_views(&job, &operator) {
            merged = merged.merged(&view.metrics);
        }
        for (name, value) in merged.named() {
            samples.push(MetricSample {
                name: format!("store_{name}{{job={job},operator={operator}}}"),
                value: SampleValue::Counter(value),
            });
        }
    }
    samples
}

/// Builds the [`StateKey`] a lookup for `key` routes to, given the
/// partition count. Exposed for tests and tools that want to bypass the
/// server's own routing.
pub fn route_key(job: &str, operator: &str, key: &[u8], partitions: usize) -> StateKey {
    StateKey::new(job, operator, partition_of(key, partitions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ScanFilter;
    use flowkv_common::registry::{StatePattern, StateView, ViewValue};
    use flowkv_common::types::WindowId;

    fn view_with(entries: &[(&[u8], WindowId, ViewValue)], epoch: u64) -> StateView {
        let mut v = StateView::empty(StatePattern::Rmw);
        v.epoch = epoch;
        v.watermark = 1_000;
        for (k, w, val) in entries {
            v.entries.insert((k.to_vec(), *w), val.clone());
        }
        v
    }

    fn shared(registry: Arc<StateRegistry>) -> ServeShared {
        ServeShared {
            registry,
            telemetry: None,
            served: Arc::new(AtomicU64::new(0)),
            probes: None,
        }
    }

    #[test]
    fn lookup_routes_to_the_owning_partition() {
        let registry = StateRegistry::new_shared();
        let n = 4;
        let key = b"user-17".to_vec();
        let w = WindowId::global();
        for p in 0..n {
            let mut view = view_with(&[], 3);
            if p == partition_of(&key, n) {
                view.entries
                    .insert((key.clone(), w), ViewValue::Aggregate(vec![9, 9]));
            }
            registry.publish(StateKey::new("j", "op", p), view);
        }
        let resp = answer(
            &registry,
            None,
            Request::Lookup {
                job: "j".into(),
                operator: "op".into(),
                key: key.clone(),
                window: None,
            },
        );
        match resp {
            Response::Value {
                epoch,
                found: Some((window, ViewValue::Aggregate(a))),
                ..
            } => {
                assert_eq!(epoch, 3);
                assert_eq!(window, w);
                assert_eq!(a, vec![9, 9]);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn lookup_many_answers_positionally() {
        let registry = StateRegistry::new_shared();
        let n = 4;
        let w = WindowId::global();
        let keys: Vec<Vec<u8>> = (0..32u32)
            .map(|i| format!("user-{i}").into_bytes())
            .collect();
        for p in 0..n {
            let mut view = view_with(&[], 2);
            for key in &keys {
                if partition_of(key, n) == p {
                    view.entries
                        .insert((key.clone(), w), ViewValue::Aggregate(key.clone()));
                }
            }
            registry.publish(StateKey::new("j", "op", p), view);
        }
        let mut queried = keys.clone();
        queried.push(b"missing".to_vec());
        let resp = answer(
            &registry,
            None,
            Request::LookupMany {
                job: "j".into(),
                operator: "op".into(),
                keys: queried.clone(),
                window: None,
            },
        );
        match resp {
            Response::ValueBatch { epoch, found, .. } => {
                assert_eq!(epoch, 2);
                assert_eq!(found.len(), queried.len());
                for (key, slot) in keys.iter().zip(&found) {
                    match slot {
                        Some((window, ViewValue::Aggregate(a))) => {
                            assert_eq!(*window, w);
                            assert_eq!(a, key);
                        }
                        other => panic!("missing slot for {key:?}: {other:?}"),
                    }
                }
                assert!(found.last().unwrap().is_none());
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn filtered_scan_applies_prefix_range_and_limit() {
        let registry = StateRegistry::new_shared();
        let w_in = WindowId::new(0, 100);
        let w_out = WindowId::new(500, 600);
        registry.publish(
            StateKey::new("j", "op", 0),
            view_with(
                &[
                    (b"a:1", w_in, ViewValue::Aggregate(vec![1])),
                    (b"a:2", w_in, ViewValue::Aggregate(vec![2])),
                    (b"a:3", w_out, ViewValue::Aggregate(vec![3])),
                    (b"b:1", w_in, ViewValue::Aggregate(vec![4])),
                ],
                5,
            ),
        );
        let resp = answer(
            &registry,
            None,
            Request::ScanFiltered {
                job: "j".into(),
                operator: "op".into(),
                filter: ScanFilter::range(0, 200, 10).with_prefix(&b"a:"[..]),
            },
        );
        match resp {
            Response::ScanResult { entries, .. } => {
                let keys: Vec<&[u8]> = entries.iter().map(|e| e.key.as_slice()).collect();
                assert_eq!(keys, vec![&b"a:1"[..], &b"a:2"[..]]);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // The limit applies after the filters.
        let resp = answer(
            &registry,
            None,
            Request::ScanFiltered {
                job: "j".into(),
                operator: "op".into(),
                filter: ScanFilter::range(0, 200, 1).with_prefix(&b"a:"[..]),
            },
        );
        match resp {
            Response::ScanResult { entries, .. } => assert_eq!(entries.len(), 1),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn list_states_v2_carries_ttl() {
        let registry = StateRegistry::new_shared();
        let mut view = view_with(&[], 1);
        view.ttl_ms = Some(60_000);
        registry.publish(StateKey::new("j", "op", 0), view);
        match answer(&registry, None, Request::ListStatesV2) {
            Response::StatesV2(states) => {
                assert_eq!(states.len(), 1);
                assert_eq!(states[0].ttl_ms, Some(60_000));
            }
            other => panic!("unexpected response {other:?}"),
        }
        // The v1 listing still answers (encoding drops the ttl).
        assert!(matches!(
            answer(&registry, None, Request::ListStates),
            Response::States(_)
        ));
    }

    #[test]
    fn session_switches_framing_after_hello() {
        let registry = StateRegistry::new_shared();
        let shared = shared(registry);
        let mut session = Session::new();
        let mut out = Vec::new();

        // Frame 1: hello in v1 framing, answered in v1 framing.
        session
            .handle(
                &shared,
                &Request::Hello { max_version: 7 }.encode(),
                &mut out,
            )
            .unwrap();
        let mut cursor = std::io::Cursor::new(std::mem::take(&mut out));
        let ack = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(
            Response::decode(&ack).unwrap(),
            Response::HelloAck {
                version: PROTOCOL_V2
            }
        );

        // Frame 2: v2 framing with a request id, echoed back.
        let mut framed = Vec::new();
        write_frame_v2(&mut framed, 99, &Request::Ping.encode()).unwrap();
        session
            .handle(&shared, &framed[crate::protocol::FRAME_HEADER..], &mut out)
            .unwrap();
        let mut cursor = std::io::Cursor::new(std::mem::take(&mut out));
        let payload = read_frame(&mut cursor).unwrap().unwrap();
        let (id, body) = split_request_id(&payload).unwrap();
        assert_eq!(id, 99);
        assert_eq!(Response::decode(body).unwrap(), Response::Pong);

        // A second hello is rejected but the connection stays usable.
        let mut framed = Vec::new();
        write_frame_v2(
            &mut framed,
            100,
            &Request::Hello { max_version: 2 }.encode(),
        )
        .unwrap();
        session
            .handle(&shared, &framed[crate::protocol::FRAME_HEADER..], &mut out)
            .unwrap();
        let mut cursor = std::io::Cursor::new(std::mem::take(&mut out));
        let payload = read_frame(&mut cursor).unwrap().unwrap();
        let (id, body) = split_request_id(&payload).unwrap();
        assert_eq!(id, 100);
        assert!(matches!(
            Response::decode(body).unwrap(),
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
    }

    #[test]
    fn v1_session_never_switches_without_hello() {
        let registry = StateRegistry::new_shared();
        let shared = shared(registry);
        let mut session = Session::new();
        let mut out = Vec::new();
        for _ in 0..3 {
            session
                .handle(&shared, &Request::Ping.encode(), &mut out)
                .unwrap();
        }
        let mut cursor = std::io::Cursor::new(out);
        for _ in 0..3 {
            let payload = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(Response::decode(&payload).unwrap(), Response::Pong);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn scan_merges_partitions_and_honours_limit() {
        let registry = StateRegistry::new_shared();
        let w = WindowId::new(0, 100);
        registry.publish(
            StateKey::new("j", "op", 0),
            view_with(&[(b"a", w, ViewValue::Aggregate(vec![1]))], 5),
        );
        registry.publish(
            StateKey::new("j", "op", 1),
            view_with(
                &[
                    (b"b", w, ViewValue::Aggregate(vec![2])),
                    (b"c", w, ViewValue::Aggregate(vec![3])),
                ],
                7,
            ),
        );
        let resp = answer(
            &registry,
            None,
            Request::Scan {
                job: "j".into(),
                operator: "op".into(),
                range_start: 0,
                range_end: 50,
                limit: 2,
            },
        );
        match resp {
            Response::ScanResult { epoch, entries, .. } => {
                assert_eq!(epoch, 5);
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].key, b"a");
                assert_eq!(entries[1].key, b"b");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn trace_summary_of_an_untraced_server_is_all_zero() {
        let registry = StateRegistry::new_shared();
        let resp = answer(&registry, None, Request::TraceSummary { drain: false });
        match resp {
            Response::TraceSummaryReport {
                traces,
                rows,
                total,
            } => {
                assert_eq!(traces, 0);
                assert_eq!(rows.len(), trace::STAGES.len());
                assert!(rows.iter().all(|r| r.count == 0 && r.total_nanos == 0));
                assert_eq!(total.total_nanos, 0);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn trace_summary_drain_empties_the_tracer() {
        let registry = StateRegistry::new_shared();
        let telemetry = Telemetry::new_shared();
        let tracer = trace::Tracer::new();
        telemetry.set_trace(trace::TraceHandle {
            tracer: Arc::clone(&tracer),
            pid: 0,
        });
        let rec = tracer.thread(0, "worker");
        let span = rec.begin("on_batch", "compute", None);
        rec.end(span, "on_batch", "compute");
        assert_eq!(tracer.snapshot()[0].events.len(), 2);
        let _ = answer(
            &registry,
            Some(&telemetry),
            Request::TraceSummary { drain: true },
        );
        assert!(tracer.snapshot().iter().all(|t| t.events.is_empty()));
    }

    #[test]
    fn missing_operator_yields_unknown_state() {
        let registry = StateRegistry::new_shared();
        let resp = answer(
            &registry,
            None,
            Request::Metrics {
                job: "nope".into(),
                operator: "nope".into(),
                include_registry: false,
            },
        );
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::UnknownState,
                ..
            }
        ));
    }
}
