//! Threaded TCP server answering read-only queries over a
//! [`StateRegistry`].
//!
//! The server never touches a live store: it only reads the immutable
//! [`StateView`](flowkv_common::registry::StateView) snapshots workers
//! publish at watermark boundaries. Each accepted connection gets its own
//! thread running a request/response loop; snapshots are shared via
//! `Arc`, so concurrent queries cost no copies and no coordination with
//! the job's workers.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use flowkv_common::error::{Result, StoreError};
use flowkv_common::hash::partition_of;
use flowkv_common::metrics::MetricsSnapshot;
use flowkv_common::registry::{StateKey, StatePattern, StateRegistry};
use flowkv_common::telemetry::{self, MetricSample, SampleValue, Telemetry};
use flowkv_common::trace;
use flowkv_common::types::{Timestamp, MAX_TIMESTAMP};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Request, Response, ScanEntry, StateInfo,
};

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// A running state server.
///
/// Dropping the handle (or calling [`StateServer::shutdown`]) stops the
/// accept loop and joins every connection thread.
pub struct StateServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    served: Arc<AtomicU64>,
}

impl StateServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving queries over `registry`.
    pub fn spawn(addr: impl ToSocketAddrs, registry: Arc<StateRegistry>) -> Result<Self> {
        Self::spawn_with_telemetry(addr, registry, None)
    }

    /// Like [`spawn`](Self::spawn), additionally exposing `telemetry`
    /// through the metrics opcode (registry samples) and the Prometheus
    /// opcode (text exposition format 0.0.4).
    pub fn spawn_with_telemetry(
        addr: impl ToSocketAddrs,
        registry: Arc<StateRegistry>,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<Self> {
        let listener =
            TcpListener::bind(addr).map_err(|e| StoreError::io("state server bind", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| StoreError::io("state server set_nonblocking", e))?;
        let local = listener
            .local_addr()
            .map_err(|e| StoreError::io("state server local_addr", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            std::thread::Builder::new()
                .name("flowkv-serve-accept".into())
                .spawn(move || accept_loop(listener, registry, telemetry, stop, served))
                .map_err(|e| StoreError::io("state server accept thread", e))?
        };
        Ok(StateServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            served,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests answered so far (including errors).
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stops accepting connections and joins all serving threads.
    ///
    /// In-flight requests complete; idle connections are closed the next
    /// time their read times out.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StateServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<StateRegistry>,
    telemetry: Option<Arc<Telemetry>>,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
) {
    let mut conn_threads = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let registry = Arc::clone(&registry);
                let telemetry = telemetry.clone();
                let stop = Arc::clone(&stop);
                let served = Arc::clone(&served);
                let handle = std::thread::Builder::new()
                    .name("flowkv-serve-conn".into())
                    .spawn(move || serve_connection(stream, registry, telemetry, stop, served));
                match handle {
                    Ok(h) => conn_threads.push(h),
                    Err(_) => continue,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
        // Reap finished connection threads so a long-lived server does
        // not accumulate handles.
        conn_threads.retain(|h| !h.is_finished());
    }
    for h in conn_threads {
        let _ = h.join();
    }
}

fn serve_connection(
    stream: TcpStream,
    registry: Arc<StateRegistry>,
    telemetry: Option<Arc<Telemetry>>,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
) {
    // A finite read timeout doubles as the shutdown poll interval: an
    // idle connection wakes up, notices the flag, and exits.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    while !stop.load(Ordering::SeqCst) {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(StoreError::Io { source, .. })
                if matches!(
                    source.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(request) => answer(&registry, telemetry.as_deref(), request),
            Err(e) => Response::Error {
                code: ErrorCode::BadRequest,
                message: e.to_string(),
            },
        };
        served.fetch_add(1, Ordering::Relaxed);
        use std::io::Write as _;
        if write_frame(&mut writer, &response.encode()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

fn unknown_state(job: &str, operator: &str) -> Response {
    Response::Error {
        code: ErrorCode::UnknownState,
        message: format!("no published state for {job}/{operator}"),
    }
}

/// Computes the response for one decoded request.
///
/// Exposed to the crate so the integration tests can exercise query
/// semantics without a socket.
pub(crate) fn answer(
    registry: &StateRegistry,
    telemetry: Option<&Telemetry>,
    request: Request,
) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::ListStates => {
            Response::States(registry.list().into_iter().map(StateInfo::from).collect())
        }
        Request::Lookup {
            job,
            operator,
            key,
            window,
        } => {
            // Keys are routed to partitions by hash, exactly as the
            // executor routes tuples, so only one snapshot can hold the
            // key. The partition count is recovered from the registry:
            // workers publish densely indexed partitions 0..n.
            let views = registry.operator_views(&job, &operator);
            if views.is_empty() {
                return unknown_state(&job, &operator);
            }
            let n = views.last().map(|(p, _)| p + 1).unwrap_or(1);
            let target = partition_of(&key, n);
            let Some(view) = views
                .iter()
                .find(|(p, _)| *p == target)
                .map(|(_, v)| Arc::clone(v))
            else {
                return unknown_state(&job, &operator);
            };
            let found = match window {
                Some(w) => view.get(&key, w).map(|v| (w, v.clone())),
                None => view.get_latest(&key).map(|(w, v)| (w, v.clone())),
            };
            Response::Value {
                epoch: view.epoch,
                watermark: view.watermark,
                found,
            }
        }
        Request::Scan {
            job,
            operator,
            range_start,
            range_end,
            limit,
        } => {
            let views = registry.operator_views(&job, &operator);
            if views.is_empty() {
                return unknown_state(&job, &operator);
            }
            let limit = usize::try_from(limit).unwrap_or(usize::MAX);
            let mut entries = Vec::new();
            let mut epoch = u64::MAX;
            let mut watermark = MAX_TIMESTAMP;
            for (_, view) in &views {
                epoch = epoch.min(view.epoch);
                watermark = watermark.min(view.watermark);
                let remaining = limit.saturating_sub(entries.len());
                if remaining == 0 {
                    break;
                }
                for (key, window, value) in view.scan_windows(range_start, range_end, remaining) {
                    entries.push(ScanEntry {
                        key: key.to_vec(),
                        window,
                        value: value.clone(),
                    });
                }
            }
            Response::ScanResult {
                epoch,
                watermark,
                entries,
            }
        }
        Request::Metrics {
            job,
            operator,
            include_registry,
        } => {
            let views = registry.operator_views(&job, &operator);
            if views.is_empty() {
                return unknown_state(&job, &operator);
            }
            let mut metrics = MetricsSnapshot::default();
            let mut entries = 0u64;
            let mut watermark: Timestamp = MAX_TIMESTAMP;
            let mut pattern = StatePattern::Unknown;
            for (_, view) in &views {
                metrics = metrics.merged(&view.metrics);
                entries += view.len() as u64;
                watermark = watermark.min(view.watermark);
                pattern = view.pattern;
            }
            let samples = if include_registry {
                telemetry
                    .map(|t| t.registry().snapshot())
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            Response::MetricsReport {
                pattern,
                partitions: views.len() as u64,
                entries,
                watermark,
                metrics,
                registry: samples,
            }
        }
        Request::Prometheus => {
            let samples = prometheus_samples(registry, telemetry);
            Response::PrometheusText(telemetry::render_prometheus(&samples))
        }
        Request::TraceSummary { drain } => {
            // An untraced job answers with an empty (all-zero) table
            // rather than an error: clients can poll unconditionally.
            let threads = telemetry
                .and_then(|t| t.trace())
                .map(|h| {
                    if drain {
                        h.tracer.drain()
                    } else {
                        h.tracer.snapshot()
                    }
                })
                .unwrap_or_default();
            let a = trace::attribution(&trace::flatten(&threads));
            Response::TraceSummaryReport {
                traces: a.traces,
                rows: a.rows,
                total: a.total,
            }
        }
    }
}

/// Collects everything the server can expose to a Prometheus scrape:
/// the telemetry registry plus the per-operator store counters of every
/// published state, rendered as
/// `store_<counter>{job=...,operator=...}` series.
fn prometheus_samples(
    registry: &StateRegistry,
    telemetry: Option<&Telemetry>,
) -> Vec<MetricSample> {
    let mut samples = telemetry
        .map(|t| t.registry().snapshot())
        .unwrap_or_default();
    let mut operators: Vec<(String, String)> = registry
        .list()
        .into_iter()
        .map(|d| (d.key.job, d.key.operator))
        .collect();
    operators.sort();
    operators.dedup();
    for (job, operator) in operators {
        let mut merged = MetricsSnapshot::default();
        for (_, view) in registry.operator_views(&job, &operator) {
            merged = merged.merged(&view.metrics);
        }
        for (name, value) in merged.named() {
            samples.push(MetricSample {
                name: format!("store_{name}{{job={job},operator={operator}}}"),
                value: SampleValue::Counter(value),
            });
        }
    }
    samples
}

/// Builds the [`StateKey`] a lookup for `key` routes to, given the
/// partition count. Exposed for tests and tools that want to bypass the
/// server's own routing.
pub fn route_key(job: &str, operator: &str, key: &[u8], partitions: usize) -> StateKey {
    StateKey::new(job, operator, partition_of(key, partitions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::registry::{StatePattern, StateView, ViewValue};
    use flowkv_common::types::WindowId;

    fn view_with(entries: &[(&[u8], WindowId, ViewValue)], epoch: u64) -> StateView {
        let mut v = StateView::empty(StatePattern::Rmw);
        v.epoch = epoch;
        v.watermark = 1_000;
        for (k, w, val) in entries {
            v.entries.insert((k.to_vec(), *w), val.clone());
        }
        v
    }

    #[test]
    fn lookup_routes_to_the_owning_partition() {
        let registry = StateRegistry::new_shared();
        let n = 4;
        let key = b"user-17".to_vec();
        let w = WindowId::global();
        for p in 0..n {
            let mut view = view_with(&[], 3);
            if p == partition_of(&key, n) {
                view.entries
                    .insert((key.clone(), w), ViewValue::Aggregate(vec![9, 9]));
            }
            registry.publish(StateKey::new("j", "op", p), view);
        }
        let resp = answer(
            &registry,
            None,
            Request::Lookup {
                job: "j".into(),
                operator: "op".into(),
                key: key.clone(),
                window: None,
            },
        );
        match resp {
            Response::Value {
                epoch,
                found: Some((window, ViewValue::Aggregate(a))),
                ..
            } => {
                assert_eq!(epoch, 3);
                assert_eq!(window, w);
                assert_eq!(a, vec![9, 9]);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn scan_merges_partitions_and_honours_limit() {
        let registry = StateRegistry::new_shared();
        let w = WindowId::new(0, 100);
        registry.publish(
            StateKey::new("j", "op", 0),
            view_with(&[(b"a", w, ViewValue::Aggregate(vec![1]))], 5),
        );
        registry.publish(
            StateKey::new("j", "op", 1),
            view_with(
                &[
                    (b"b", w, ViewValue::Aggregate(vec![2])),
                    (b"c", w, ViewValue::Aggregate(vec![3])),
                ],
                7,
            ),
        );
        let resp = answer(
            &registry,
            None,
            Request::Scan {
                job: "j".into(),
                operator: "op".into(),
                range_start: 0,
                range_end: 50,
                limit: 2,
            },
        );
        match resp {
            Response::ScanResult { epoch, entries, .. } => {
                assert_eq!(epoch, 5);
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].key, b"a");
                assert_eq!(entries[1].key, b"b");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn trace_summary_of_an_untraced_server_is_all_zero() {
        let registry = StateRegistry::new_shared();
        let resp = answer(&registry, None, Request::TraceSummary { drain: false });
        match resp {
            Response::TraceSummaryReport {
                traces,
                rows,
                total,
            } => {
                assert_eq!(traces, 0);
                assert_eq!(rows.len(), trace::STAGES.len());
                assert!(rows.iter().all(|r| r.count == 0 && r.total_nanos == 0));
                assert_eq!(total.total_nanos, 0);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn trace_summary_drain_empties_the_tracer() {
        let registry = StateRegistry::new_shared();
        let telemetry = Telemetry::new_shared();
        let tracer = trace::Tracer::new();
        telemetry.set_trace(trace::TraceHandle {
            tracer: Arc::clone(&tracer),
            pid: 0,
        });
        let rec = tracer.thread(0, "worker");
        let span = rec.begin("on_batch", "compute", None);
        rec.end(span, "on_batch", "compute");
        assert_eq!(tracer.snapshot()[0].events.len(), 2);
        let _ = answer(
            &registry,
            Some(&telemetry),
            Request::TraceSummary { drain: true },
        );
        assert!(tracer.snapshot().iter().all(|t| t.events.is_empty()));
    }

    #[test]
    fn missing_operator_yields_unknown_state() {
        let registry = StateRegistry::new_shared();
        let resp = answer(
            &registry,
            None,
            Request::Metrics {
                job: "nope".into(),
                operator: "nope".into(),
                include_registry: false,
            },
        );
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::UnknownState,
                ..
            }
        ));
    }
}
