//! Non-blocking event-loop serving core.
//!
//! One thread owns every connection. Sockets are registered with a
//! [`Poller`] and handled on readiness: incoming bytes accumulate in a
//! per-connection read buffer, every complete frame in the buffer is
//! answered immediately (this is what makes pipelining pay — a client
//! with 32 requests in flight gets all 32 answered per wake-up), and
//! responses accumulate in a per-connection write buffer that drains as
//! the socket accepts bytes. No thread is ever parked on a single
//! connection, so thousands of idle clients cost one sleeping thread.
//!
//! Protocol versions, the v2 handshake, and request-id correlation are
//! all inside [`Session`] — shared with the legacy threaded core, so
//! both cores speak identical wire bytes.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::poll::{PollEvent, Poller};
use crate::protocol::peek_frame;
use crate::server::{ServeShared, Session};

/// Poll tick: how often the loop re-checks the shutdown flag and idle
/// deadlines even when no socket is ready.
const TICK: Duration = Duration::from_millis(25);

/// The listening socket's poller token; connections start at 1.
const LISTENER_TOKEN: u64 = 0;

/// Bytes read per `read(2)` call while draining a readable socket.
const READ_CHUNK: usize = 64 * 1024;

/// Tunables handed from the [`ServerBuilder`](crate::server::ServerBuilder).
pub(crate) struct EventLoopConfig {
    /// Accepted connections beyond this are closed immediately.
    pub max_connections: usize,
    /// Connections with no complete frame for this long are closed;
    /// `None` keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
}

struct Conn {
    stream: TcpStream,
    session: Session,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    last_active: Instant,
    want_write: bool,
    eof: bool,
}

impl Conn {
    fn drained(&self) -> bool {
        self.write_pos >= self.write_buf.len()
    }
}

/// Runs the event loop until `stop` is raised. Consumes the poller and
/// the (already non-blocking) listener.
pub(crate) fn run(
    poller: Poller,
    listener: TcpListener,
    shared: Arc<ServeShared>,
    stop: Arc<AtomicBool>,
    cfg: EventLoopConfig,
) {
    if poller
        .register(listener.as_raw_fd(), LISTENER_TOKEN, true, false)
        .is_err()
    {
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = LISTENER_TOKEN + 1;
    let mut events: Vec<PollEvent> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        events.clear();
        if poller.wait(&mut events, Some(TICK)).is_err() {
            break;
        }
        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                accept_ready(
                    &poller,
                    &listener,
                    &mut conns,
                    &mut next_token,
                    &shared,
                    &cfg,
                );
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                // Closed earlier in this batch (e.g. error + readable
                // arrived together).
                continue;
            };
            let mut close = ev.error;
            if !close && ev.readable {
                close = on_readable(conn, &shared);
            }
            if !close && (ev.readable || ev.writable) {
                close = flush(conn, &shared);
            }
            if !close && conn.eof && conn.drained() {
                close = true;
            }
            if close {
                close_conn(&poller, &mut conns, ev.token, &shared);
            } else {
                update_interest(&poller, ev.token, conn);
            }
        }
        if let Some(idle) = cfg.idle_timeout {
            let now = Instant::now();
            let dead: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| now.duration_since(c.last_active) > idle)
                .map(|(t, _)| *t)
                .collect();
            for t in dead {
                close_conn(&poller, &mut conns, t, &shared);
            }
        }
    }
    // Responses already computed should reach clients: one final flush
    // attempt per connection before everything is dropped.
    for conn in conns.values_mut() {
        let _ = flush(conn, &shared);
    }
    if let Some(p) = &shared.probes {
        p.connections_open.set(0);
    }
}

fn accept_ready(
    poller: &Poller,
    listener: &TcpListener,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    shared: &ServeShared,
    cfg: &EventLoopConfig,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if conns.len() >= cfg.max_connections {
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if poller
                    .register(stream.as_raw_fd(), token, true, false)
                    .is_err()
                {
                    continue;
                }
                conns.insert(
                    token,
                    Conn {
                        stream,
                        session: Session::new(),
                        read_buf: Vec::new(),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        last_active: Instant::now(),
                        want_write: false,
                        eof: false,
                    },
                );
                if let Some(p) = &shared.probes {
                    p.connections_total.inc();
                    p.connections_open.set(conns.len() as i64);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Drains the socket into the read buffer and answers every complete
/// frame. Returns `true` when the connection must be closed.
fn on_readable(conn: &mut Conn, shared: &ServeShared) -> bool {
    let mut tmp = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&tmp[..n]);
                if let Some(p) = &shared.probes {
                    p.bytes_read.add(n as u64);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    let mut consumed = 0usize;
    let mut frames = 0u64;
    loop {
        match peek_frame(&conn.read_buf[consumed..]) {
            Ok(Some((used, range))) => {
                let (payload_start, payload_end) = (consumed + range.start, consumed + range.end);
                let session = &mut conn.session;
                let write_buf = &mut conn.write_buf;
                if session
                    .handle(
                        shared,
                        &conn.read_buf[payload_start..payload_end],
                        write_buf,
                    )
                    .is_err()
                {
                    return true;
                }
                consumed += used;
                frames += 1;
            }
            Ok(None) => break,
            // A malformed length prefix poisons the whole stream: there
            // is no way to resynchronise on frame boundaries.
            Err(_) => return true,
        }
    }
    if consumed > 0 {
        conn.read_buf.drain(..consumed);
    }
    if frames > 0 {
        conn.last_active = Instant::now();
        if let Some(p) = &shared.probes {
            p.pipeline_depth.record(frames);
        }
    }
    false
}

/// Writes as much buffered output as the socket accepts. Returns `true`
/// when the connection must be closed.
fn flush(conn: &mut Conn, shared: &ServeShared) -> bool {
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return true,
            Ok(n) => {
                conn.write_pos += n;
                if let Some(p) = &shared.probes {
                    p.bytes_written.add(n as u64);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    if conn.write_pos > 0 && conn.drained() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }
    false
}

fn update_interest(poller: &Poller, token: u64, conn: &mut Conn) {
    let want = !conn.drained();
    if want != conn.want_write
        && poller
            .modify(conn.stream.as_raw_fd(), token, true, want)
            .is_ok()
    {
        conn.want_write = want;
    }
}

fn close_conn(poller: &Poller, conns: &mut HashMap<u64, Conn>, token: u64, shared: &ServeShared) {
    if let Some(conn) = conns.remove(&token) {
        let _ = poller.deregister(conn.stream.as_raw_fd());
        if let Some(p) = &shared.probes {
            p.connections_open.set(conns.len() as i64);
        }
    }
}
