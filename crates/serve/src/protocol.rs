//! The length-prefixed binary wire protocol of the state server.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! +----------------+---------+-----------------------+
//! | len: u32 (LE)  | opcode  | body (len - 1 bytes)  |
//! +----------------+---------+-----------------------+
//! ```
//!
//! `len` counts the opcode byte plus the body and is bounded by
//! [`MAX_FRAME`]; a peer announcing a larger frame is rejected before any
//! body byte is read, so a malicious or corrupt length cannot force an
//! allocation. Bodies are built from the same varint / fixed-width
//! primitives as every on-disk structure
//! ([`flowkv_common::codec`]), so request and response encodings are
//! deterministic and self-delimiting.
//!
//! Requests and responses are separate opcode spaces (`0x0_` vs `0x8_`).
//! Every request yields exactly one response on the same connection.
//!
//! # Protocol versions
//!
//! Two framings share this module:
//!
//! * **v1** (the original): `len` is followed directly by the payload.
//!   Requests are answered strictly in order, one round trip each.
//! * **v2** (negotiated): the payload is prefixed by a `u64` **request
//!   id** chosen by the client; the response frame echoes it. Ids let a
//!   client keep many frames in flight on one connection (pipelining)
//!   and correlate answers without trusting arrival order.
//!
//! Every connection starts in v1. A client that wants v2 sends a
//! [`Request::Hello`] as its first frame; the server answers
//! [`Response::HelloAck`] with the highest version both sides speak
//! (both frames travel in v1 framing), and *subsequent* frames use the
//! negotiated framing. A v1 client never sends `Hello`, so its
//! connection never switches — every pre-v2 frame is handled byte-for-
//! byte as before. A v2 client talking to an old server receives an
//! `Error { BadRequest }` for the unknown opcode and simply stays on v1.
//!
//! The request/response *body* encoding is identical in both versions:
//! v2 only wraps it with the id. New v2-era opcodes (batched lookups,
//! filtered scans, TTL-carrying listings) are ordinary opcodes — old
//! servers reject them as unknown, old clients never send them.

use std::io::{Read, Write};

use flowkv_common::codec::{put_len_prefixed, put_u32, Decoder};
use flowkv_common::error::{Result, StoreError};
use flowkv_common::metrics::MetricsSnapshot;
use flowkv_common::registry::{StateDescriptor, StateKey, StatePattern, ViewValue};
use flowkv_common::telemetry::{HistogramSnapshot, MetricSample, SampleValue};
use flowkv_common::trace::AttributionRow;
use flowkv_common::types::{Timestamp, WindowId};

/// Upper bound on one frame's payload (opcode + body), in bytes.
///
/// Large enough for a generous scan result, small enough that a bogus
/// length header cannot balloon memory.
pub const MAX_FRAME: usize = 16 << 20;

/// Byte length of the frame header (the `u32` length prefix).
pub const FRAME_HEADER: usize = 4;

/// The original, id-less framing.
pub const PROTOCOL_V1: u8 = 1;

/// The pipelined framing with per-frame request ids.
pub const PROTOCOL_V2: u8 = 2;

/// Highest protocol version this build speaks.
pub const MAX_PROTOCOL: u8 = PROTOCOL_V2;

/// Magic bytes opening a [`Request::Hello`] body, so a handshake frame
/// can never be confused with a corrupt legacy request.
pub const HELLO_MAGIC: [u8; 4] = *b"FKWP";

fn proto_err(detail: impl Into<String>) -> StoreError {
    StoreError::invalid_state(detail.into())
}

/// Writes one frame (length prefix + payload) to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.is_empty() || payload.len() > MAX_FRAME {
        return Err(proto_err(format!(
            "outgoing frame of {} bytes outside 1..={MAX_FRAME}",
            payload.len()
        )));
    }
    let mut header = Vec::with_capacity(FRAME_HEADER);
    put_u32(&mut header, payload.len() as u32);
    w.write_all(&header)
        .and_then(|()| w.write_all(payload))
        .map_err(|e| StoreError::io("frame write", e))?;
    Ok(())
}

/// Reads one frame's payload from `r`.
///
/// Returns `Ok(None)` on a clean EOF before any header byte (the peer
/// closed between requests); a length outside `1..=MAX_FRAME` or a
/// truncated body is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER];
    let mut filled = 0;
    while filled < FRAME_HEADER {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(proto_err("connection closed inside a frame header")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(StoreError::io("frame header read", e)),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(proto_err(format!(
            "incoming frame length {len} outside 1..={MAX_FRAME}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| StoreError::io("frame body read", e))?;
    Ok(Some(payload))
}

/// Writes one v2 frame: length prefix, request id, payload.
pub fn write_frame_v2(w: &mut impl Write, request_id: u64, payload: &[u8]) -> Result<()> {
    if payload.is_empty() || payload.len() + 8 > MAX_FRAME {
        return Err(proto_err(format!(
            "outgoing v2 frame of {} bytes outside 1..={}",
            payload.len(),
            MAX_FRAME - 8
        )));
    }
    let mut framed = Vec::with_capacity(FRAME_HEADER + 8 + payload.len());
    put_u32(&mut framed, (payload.len() + 8) as u32);
    framed.extend_from_slice(&request_id.to_le_bytes());
    framed.extend_from_slice(payload);
    w.write_all(&framed)
        .map_err(|e| StoreError::io("frame write", e))?;
    Ok(())
}

/// Splits the request id off a v2 frame payload, returning the id and
/// the request/response body.
pub fn split_request_id(payload: &[u8]) -> Result<(u64, &[u8])> {
    if payload.len() < 9 {
        return Err(proto_err(format!(
            "v2 frame of {} bytes too short for a request id and opcode",
            payload.len()
        )));
    }
    let id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    Ok((id, &payload[8..]))
}

/// Tries to split one complete frame off the front of an in-memory
/// buffer (the event loop's per-connection read buffer).
///
/// Returns `(bytes_consumed, payload_range)` when a whole frame is
/// buffered, `None` when more bytes are needed, and an error for a
/// length outside `1..=MAX_FRAME` — the same bound [`read_frame`]
/// enforces on a blocking stream.
pub fn peek_frame(buf: &[u8]) -> Result<Option<(usize, std::ops::Range<usize>)>> {
    if buf.len() < FRAME_HEADER {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..FRAME_HEADER].try_into().expect("4 bytes")) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(proto_err(format!(
            "incoming frame length {len} outside 1..={MAX_FRAME}"
        )));
    }
    if buf.len() < FRAME_HEADER + len {
        return Ok(None);
    }
    Ok(Some((FRAME_HEADER + len, FRAME_HEADER..FRAME_HEADER + len)))
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_len_prefixed(buf, s.as_bytes());
}

fn get_str(dec: &mut Decoder<'_>) -> Result<String> {
    let bytes = dec.get_len_prefixed()?;
    String::from_utf8(bytes.to_vec()).map_err(|_| proto_err("string field is not UTF-8"))
}

fn put_window(buf: &mut Vec<u8>, w: WindowId) {
    buf.extend_from_slice(&w.start.to_le_bytes());
    buf.extend_from_slice(&w.end.to_le_bytes());
}

fn get_window(dec: &mut Decoder<'_>) -> Result<WindowId> {
    let start = dec.get_i64()?;
    let end = dec.get_i64()?;
    Ok(WindowId { start, end })
}

fn put_view_value(buf: &mut Vec<u8>, v: &ViewValue) {
    match v {
        ViewValue::Aggregate(a) => {
            buf.push(0);
            put_len_prefixed(buf, a);
        }
        ViewValue::Values(vs) => {
            buf.push(1);
            flowkv_common::codec::put_varint_u64(buf, vs.len() as u64);
            for v in vs {
                put_len_prefixed(buf, v);
            }
        }
    }
}

fn get_view_value(dec: &mut Decoder<'_>) -> Result<ViewValue> {
    match dec.take(1, "view-value tag")?[0] {
        0 => Ok(ViewValue::Aggregate(dec.get_len_prefixed()?.to_vec())),
        1 => {
            let n = dec.get_varint_u64()? as usize;
            if n > MAX_FRAME {
                return Err(proto_err("view-value list count exceeds frame bound"));
            }
            let mut vs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                vs.push(dec.get_len_prefixed()?.to_vec());
            }
            Ok(ViewValue::Values(vs))
        }
        tag => Err(proto_err(format!("unknown view-value tag {tag}"))),
    }
}

fn put_metrics(buf: &mut Vec<u8>, m: &MetricsSnapshot) {
    for v in [
        m.write_nanos,
        m.read_nanos,
        m.compaction_nanos,
        m.bytes_written,
        m.bytes_read,
        m.records_written,
        m.records_read,
        m.prefetch_hits,
        m.prefetch_misses,
        m.prefetch_evictions,
        m.flushes,
        m.compactions,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_metrics(dec: &mut Decoder<'_>) -> Result<MetricsSnapshot> {
    let mut m = MetricsSnapshot::default();
    for field in [
        &mut m.write_nanos,
        &mut m.read_nanos,
        &mut m.compaction_nanos,
        &mut m.bytes_written,
        &mut m.bytes_read,
        &mut m.records_written,
        &mut m.records_read,
        &mut m.prefetch_hits,
        &mut m.prefetch_misses,
        &mut m.prefetch_evictions,
        &mut m.flushes,
        &mut m.compactions,
    ] {
        *field = dec.get_u64()?;
    }
    Ok(m)
}

/// Sample-kind tags on the wire.
const SAMPLE_COUNTER: u8 = 0;
const SAMPLE_GAUGE: u8 = 1;
const SAMPLE_HISTOGRAM: u8 = 2;

fn put_samples(buf: &mut Vec<u8>, samples: &[MetricSample]) {
    flowkv_common::codec::put_varint_u64(buf, samples.len() as u64);
    for s in samples {
        put_str(buf, &s.name);
        match &s.value {
            SampleValue::Counter(v) => {
                buf.push(SAMPLE_COUNTER);
                buf.extend_from_slice(&v.to_le_bytes());
            }
            SampleValue::Gauge(v) => {
                buf.push(SAMPLE_GAUGE);
                buf.extend_from_slice(&v.to_le_bytes());
            }
            SampleValue::Histogram(h) => {
                buf.push(SAMPLE_HISTOGRAM);
                buf.extend_from_slice(&h.count.to_le_bytes());
                buf.extend_from_slice(&h.sum.to_le_bytes());
                buf.extend_from_slice(&h.min.to_le_bytes());
                buf.extend_from_slice(&h.max.to_le_bytes());
                flowkv_common::codec::put_varint_u64(buf, h.counts.len() as u64);
                for &c in &h.counts {
                    flowkv_common::codec::put_varint_u64(buf, c);
                }
            }
        }
    }
}

fn get_samples(dec: &mut Decoder<'_>) -> Result<Vec<MetricSample>> {
    let n = dec.get_varint_u64()? as usize;
    if n > MAX_FRAME {
        return Err(proto_err("sample count exceeds frame bound"));
    }
    let mut samples = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = get_str(dec)?;
        let value = match dec.take(1, "sample kind")?[0] {
            SAMPLE_COUNTER => SampleValue::Counter(dec.get_u64()?),
            SAMPLE_GAUGE => SampleValue::Gauge(dec.get_i64()?),
            SAMPLE_HISTOGRAM => {
                let count = dec.get_u64()?;
                let sum = dec.get_u64()?;
                let min = dec.get_u64()?;
                let max = dec.get_u64()?;
                let buckets = dec.get_varint_u64()? as usize;
                if buckets > MAX_FRAME {
                    return Err(proto_err("bucket count exceeds frame bound"));
                }
                let mut counts = Vec::with_capacity(buckets.min(4096));
                for _ in 0..buckets {
                    counts.push(dec.get_varint_u64()?);
                }
                SampleValue::Histogram(HistogramSnapshot {
                    counts,
                    count,
                    sum,
                    min,
                    max,
                })
            }
            tag => return Err(proto_err(format!("unknown sample kind {tag}"))),
        };
        samples.push(MetricSample { name, value });
    }
    Ok(samples)
}

/// Server-side filters applied to a [`Request::ScanFiltered`].
///
/// All conditions are conjunctive. An empty `key_prefix` matches every
/// key; the timestamp bounds select entries whose window overlaps
/// `[range_start, range_end]`, exactly as the v1 scan does.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScanFilter {
    /// Keep only entries whose key starts with these bytes.
    pub key_prefix: Vec<u8>,
    /// Inclusive event-time range start (window overlap test).
    pub range_start: Timestamp,
    /// Inclusive event-time range end (window overlap test).
    pub range_end: Timestamp,
    /// Maximum entries returned, applied after the filters.
    pub limit: u64,
}

impl ScanFilter {
    /// A filter selecting everything in `[range_start, range_end]`, up
    /// to `limit` entries — the v1 scan's semantics.
    pub fn range(range_start: Timestamp, range_end: Timestamp, limit: u64) -> Self {
        ScanFilter {
            key_prefix: Vec::new(),
            range_start,
            range_end,
            limit,
        }
    }

    /// Restricts the filter to keys starting with `prefix`.
    pub fn with_prefix(mut self, prefix: impl Into<Vec<u8>>) -> Self {
        self.key_prefix = prefix.into();
        self
    }
}

/// A query sent by a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Version negotiation: the first frame a v2-capable client sends.
    /// Carries the highest protocol version the client speaks; the
    /// server answers [`Response::HelloAck`] with the agreed version,
    /// and both sides switch framing *after* that exchange.
    Hello {
        /// Highest protocol version the client supports.
        max_version: u8,
    },
    /// Liveness probe.
    Ping,
    /// Enumerate every published state.
    ListStates,
    /// Enumerate every published state with v2 metadata (per-state TTL).
    ListStatesV2,
    /// Point lookup of `key` in one operator's state. With `window`
    /// unset, the key's latest live window answers (the natural query
    /// for RMW aggregates).
    Lookup {
        /// Job name.
        job: String,
        /// Operator name.
        operator: String,
        /// State key queried.
        key: Vec<u8>,
        /// Exact window, or `None` for the latest.
        window: Option<WindowId>,
    },
    /// Batched point lookup: many keys of one operator answered in a
    /// single frame, in key order. Each key routes to its owning
    /// partition independently, exactly as a sequence of [`Lookup`]s
    /// would (`Lookup`: [`Request::Lookup`]).
    LookupMany {
        /// Job name.
        job: String,
        /// Operator name.
        operator: String,
        /// State keys queried, answered positionally.
        keys: Vec<Vec<u8>>,
        /// Exact window for every key, or `None` for each key's latest.
        window: Option<WindowId>,
    },
    /// Scan with server-side filters: key prefix, window-overlap
    /// timestamp bounds, and a limit, applied before anything is
    /// serialized.
    ScanFiltered {
        /// Job name.
        job: String,
        /// Operator name.
        operator: String,
        /// The conjunctive filter set.
        filter: ScanFilter,
    },
    /// Range scan over every entry whose window overlaps
    /// `[range_start, range_end]`, across all partitions of the operator.
    Scan {
        /// Job name.
        job: String,
        /// Operator name.
        operator: String,
        /// Inclusive event-time range start.
        range_start: Timestamp,
        /// Inclusive event-time range end.
        range_end: Timestamp,
        /// Maximum entries returned.
        limit: u64,
    },
    /// Merged store metrics of one operator.
    Metrics {
        /// Job name.
        job: String,
        /// Operator name.
        operator: String,
        /// Also return the server's telemetry registry (counters,
        /// gauges, histograms). Encoded as an *optional trailing flag
        /// byte*: `false` produces the exact pre-telemetry frame, so old
        /// servers still answer new clients and old clients' frames still
        /// decode here.
        include_registry: bool,
    },
    /// The server's full telemetry registry rendered as Prometheus text
    /// exposition format 0.0.4.
    Prometheus,
    /// The latency-attribution table computed from the job's span tracer
    /// ([`flowkv_common::trace`]).
    TraceSummary {
        /// Also drain the tracer's span rings, so the next summary
        /// covers only batches traced after this one. Encoded as an
        /// *optional trailing flag byte* (the `Metrics` pattern):
        /// `false` is a bare opcode frame, so future fields stay
        /// backward compatible.
        drain: bool,
    },
}

const OP_PING: u8 = 0x01;
const OP_LIST: u8 = 0x02;
const OP_LOOKUP: u8 = 0x03;
const OP_SCAN: u8 = 0x04;
const OP_METRICS: u8 = 0x05;
const OP_PROMETHEUS: u8 = 0x06;
const OP_TRACE_SUMMARY: u8 = 0x07;
const OP_LOOKUP_MANY: u8 = 0x08;
const OP_SCAN_FILTERED: u8 = 0x09;
const OP_LIST_V2: u8 = 0x0a;
const OP_HELLO: u8 = 0x70;

impl Request {
    /// Encodes this request as one frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello { max_version } => {
                buf.push(OP_HELLO);
                buf.extend_from_slice(&HELLO_MAGIC);
                buf.push(*max_version);
            }
            Request::Ping => buf.push(OP_PING),
            Request::ListStates => buf.push(OP_LIST),
            Request::ListStatesV2 => buf.push(OP_LIST_V2),
            Request::LookupMany {
                job,
                operator,
                keys,
                window,
            } => {
                buf.push(OP_LOOKUP_MANY);
                put_str(&mut buf, job);
                put_str(&mut buf, operator);
                flowkv_common::codec::put_varint_u64(&mut buf, keys.len() as u64);
                for key in keys {
                    put_len_prefixed(&mut buf, key);
                }
                match window {
                    Some(w) => {
                        buf.push(1);
                        put_window(&mut buf, *w);
                    }
                    None => buf.push(0),
                }
            }
            Request::ScanFiltered {
                job,
                operator,
                filter,
            } => {
                buf.push(OP_SCAN_FILTERED);
                put_str(&mut buf, job);
                put_str(&mut buf, operator);
                put_len_prefixed(&mut buf, &filter.key_prefix);
                buf.extend_from_slice(&filter.range_start.to_le_bytes());
                buf.extend_from_slice(&filter.range_end.to_le_bytes());
                buf.extend_from_slice(&filter.limit.to_le_bytes());
            }
            Request::Lookup {
                job,
                operator,
                key,
                window,
            } => {
                buf.push(OP_LOOKUP);
                put_str(&mut buf, job);
                put_str(&mut buf, operator);
                put_len_prefixed(&mut buf, key);
                match window {
                    Some(w) => {
                        buf.push(1);
                        put_window(&mut buf, *w);
                    }
                    None => buf.push(0),
                }
            }
            Request::Scan {
                job,
                operator,
                range_start,
                range_end,
                limit,
            } => {
                buf.push(OP_SCAN);
                put_str(&mut buf, job);
                put_str(&mut buf, operator);
                buf.extend_from_slice(&range_start.to_le_bytes());
                buf.extend_from_slice(&range_end.to_le_bytes());
                buf.extend_from_slice(&limit.to_le_bytes());
            }
            Request::Metrics {
                job,
                operator,
                include_registry,
            } => {
                buf.push(OP_METRICS);
                put_str(&mut buf, job);
                put_str(&mut buf, operator);
                // Only emitted when set: the `false` encoding is
                // byte-identical to the pre-telemetry protocol.
                if *include_registry {
                    buf.push(1);
                }
            }
            Request::Prometheus => buf.push(OP_PROMETHEUS),
            Request::TraceSummary { drain } => {
                buf.push(OP_TRACE_SUMMARY);
                // Only emitted when set, mirroring `Metrics`.
                if *drain {
                    buf.push(1);
                }
            }
        }
        buf
    }

    /// Decodes a frame payload into a request.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(payload);
        let opcode = dec.take(1, "request opcode")?[0];
        let req = match opcode {
            OP_HELLO => {
                let magic = dec.take(4, "hello magic")?;
                if magic != HELLO_MAGIC {
                    return Err(proto_err("bad hello magic"));
                }
                Request::Hello {
                    max_version: dec.take(1, "hello max version")?[0],
                }
            }
            OP_PING => Request::Ping,
            OP_LIST => Request::ListStates,
            OP_LIST_V2 => Request::ListStatesV2,
            OP_LOOKUP_MANY => {
                let job = get_str(&mut dec)?;
                let operator = get_str(&mut dec)?;
                let n = dec.get_varint_u64()? as usize;
                if n > MAX_FRAME {
                    return Err(proto_err("lookup key count exceeds frame bound"));
                }
                let mut keys = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    keys.push(dec.get_len_prefixed()?.to_vec());
                }
                let window = match dec.take(1, "window flag")?[0] {
                    0 => None,
                    1 => Some(get_window(&mut dec)?),
                    flag => return Err(proto_err(format!("bad window flag {flag}"))),
                };
                Request::LookupMany {
                    job,
                    operator,
                    keys,
                    window,
                }
            }
            OP_SCAN_FILTERED => Request::ScanFiltered {
                job: get_str(&mut dec)?,
                operator: get_str(&mut dec)?,
                filter: ScanFilter {
                    key_prefix: dec.get_len_prefixed()?.to_vec(),
                    range_start: dec.get_i64()?,
                    range_end: dec.get_i64()?,
                    limit: dec.get_u64()?,
                },
            },
            OP_LOOKUP => {
                let job = get_str(&mut dec)?;
                let operator = get_str(&mut dec)?;
                let key = dec.get_len_prefixed()?.to_vec();
                let window = match dec.take(1, "window flag")?[0] {
                    0 => None,
                    1 => Some(get_window(&mut dec)?),
                    flag => return Err(proto_err(format!("bad window flag {flag}"))),
                };
                Request::Lookup {
                    job,
                    operator,
                    key,
                    window,
                }
            }
            OP_SCAN => Request::Scan {
                job: get_str(&mut dec)?,
                operator: get_str(&mut dec)?,
                range_start: dec.get_i64()?,
                range_end: dec.get_i64()?,
                limit: dec.get_u64()?,
            },
            OP_METRICS => {
                let job = get_str(&mut dec)?;
                let operator = get_str(&mut dec)?;
                // Absent flag byte = legacy frame = store counters only.
                let include_registry = if dec.is_empty() {
                    false
                } else {
                    match dec.take(1, "registry flag")?[0] {
                        0 => false,
                        1 => true,
                        flag => return Err(proto_err(format!("bad registry flag {flag}"))),
                    }
                };
                Request::Metrics {
                    job,
                    operator,
                    include_registry,
                }
            }
            OP_PROMETHEUS => Request::Prometheus,
            OP_TRACE_SUMMARY => {
                // Absent flag byte = legacy frame = keep the rings.
                let drain = if dec.is_empty() {
                    false
                } else {
                    match dec.take(1, "drain flag")?[0] {
                        0 => false,
                        1 => true,
                        flag => return Err(proto_err(format!("bad drain flag {flag}"))),
                    }
                };
                Request::TraceSummary { drain }
            }
            other => return Err(proto_err(format!("unknown request opcode {other:#x}"))),
        };
        if !dec.is_empty() {
            return Err(proto_err("trailing bytes after request"));
        }
        Ok(req)
    }
}

/// One row of a [`Response::States`] listing — a wire-friendly
/// [`StateDescriptor`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateInfo {
    /// Registry key of the published view.
    pub key: StateKey,
    /// Pattern of the source store.
    pub pattern: StatePattern,
    /// Snapshot epoch.
    pub epoch: u64,
    /// Watermark the snapshot is aligned to.
    pub watermark: Timestamp,
    /// Number of live entries.
    pub entries: u64,
    /// Advisory retention of an entry, in event-time milliseconds,
    /// derived from the operator's window semantics (window size for
    /// fixed/sliding windows, gap for sessions). `None` when state never
    /// expires (global windows) or the publisher predates TTL metadata.
    ///
    /// Carried only by the v2 listing ([`Request::ListStatesV2`]); the
    /// v1 frame encodes rows without it and decodes it as `None`.
    pub ttl_ms: Option<u64>,
}

impl From<StateDescriptor> for StateInfo {
    fn from(d: StateDescriptor) -> Self {
        StateInfo {
            key: d.key,
            pattern: d.pattern,
            epoch: d.epoch,
            watermark: d.watermark,
            entries: d.entries,
            ttl_ms: d.ttl_ms,
        }
    }
}

/// One `(key, window, value)` row of a scan result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanEntry {
    /// The state key.
    pub key: Vec<u8>,
    /// The entry's window.
    pub window: WindowId,
    /// The entry's value.
    pub value: ViewValue,
}

/// Error codes carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request could not be decoded.
    BadRequest,
    /// No state is published for the addressed job/operator.
    UnknownState,
    /// The server failed internally.
    Internal,
}

impl ErrorCode {
    fn as_u8(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 0,
            ErrorCode::UnknownState => 1,
            ErrorCode::Internal => 2,
        }
    }

    fn from_u8(b: u8) -> Result<Self> {
        match b {
            0 => Ok(ErrorCode::BadRequest),
            1 => Ok(ErrorCode::UnknownState),
            2 => Ok(ErrorCode::Internal),
            other => Err(proto_err(format!("unknown error code {other}"))),
        }
    }
}

/// The server's answer to one [`Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Hello`]: the protocol version both sides
    /// will speak from the next frame on.
    HelloAck {
        /// The negotiated protocol version.
        version: u8,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::ListStates`]. Rows are encoded without
    /// their TTL metadata, byte-identical to the pre-v2 frame.
    States(Vec<StateInfo>),
    /// Answer to [`Request::ListStatesV2`]: the same rows with TTL
    /// metadata.
    StatesV2(Vec<StateInfo>),
    /// Answer to [`Request::LookupMany`]: one slot per requested key, in
    /// request order.
    ValueBatch {
        /// Minimum epoch across the partitions that answered.
        epoch: u64,
        /// Minimum watermark across the answering partitions.
        watermark: Timestamp,
        /// Per-key results, positionally matching the request's keys.
        found: Vec<Option<(WindowId, ViewValue)>>,
    },
    /// Answer to [`Request::Lookup`]: the value, if the key is live, plus
    /// the snapshot's consistency coordinates.
    Value {
        /// Epoch of the answering snapshot.
        epoch: u64,
        /// Watermark of the answering snapshot.
        watermark: Timestamp,
        /// The window the value was found in, with its value.
        found: Option<(WindowId, ViewValue)>,
    },
    /// Answer to [`Request::Scan`].
    ScanResult {
        /// Minimum epoch across the partitions answering the scan.
        epoch: u64,
        /// Minimum watermark across the answering partitions.
        watermark: Timestamp,
        /// Matching entries, in partition-then-key order.
        entries: Vec<ScanEntry>,
    },
    /// Answer to [`Request::Metrics`]: counters merged across the
    /// operator's partitions.
    MetricsReport {
        /// Pattern of the operator's store.
        pattern: StatePattern,
        /// Number of partitions merged.
        partitions: u64,
        /// Total live entries across partitions.
        entries: u64,
        /// Minimum watermark across partitions.
        watermark: Timestamp,
        /// Element-wise summed store counters.
        metrics: MetricsSnapshot,
        /// Telemetry registry samples; populated only when the request
        /// set `include_registry`, and appended to the frame only when
        /// non-empty so legacy decoders (which reject trailing bytes)
        /// keep working.
        registry: Vec<MetricSample>,
    },
    /// Answer to [`Request::Prometheus`]: the registry in Prometheus
    /// text exposition format 0.0.4.
    PrometheusText(String),
    /// Answer to [`Request::TraceSummary`]: the per-stage
    /// latency-attribution table. All-zero when the job runs untraced.
    TraceSummaryReport {
        /// Sampled batches the table aggregates.
        traces: u64,
        /// One row per stage, in [`flowkv_common::trace::STAGES`] order.
        rows: Vec<AttributionRow>,
        /// End-to-end totals across stages.
        total: AttributionRow,
    },
    /// The request failed.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

const OP_PONG: u8 = 0x81;
const OP_STATES: u8 = 0x82;
const OP_VALUE: u8 = 0x83;
const OP_SCAN_RESULT: u8 = 0x84;
const OP_METRICS_REPORT: u8 = 0x85;
const OP_PROM_TEXT: u8 = 0x86;
const OP_TRACE_SUMMARY_REPORT: u8 = 0x87;
const OP_VALUE_BATCH: u8 = 0x88;
const OP_STATES_V2: u8 = 0x8a;
const OP_HELLO_ACK: u8 = 0xf0;
const OP_ERROR: u8 = 0xee;

fn put_state_info(buf: &mut Vec<u8>, s: &StateInfo, with_ttl: bool) {
    put_str(buf, &s.key.job);
    put_str(buf, &s.key.operator);
    buf.extend_from_slice(&(s.key.partition as u64).to_le_bytes());
    buf.push(s.pattern.as_u8());
    buf.extend_from_slice(&s.epoch.to_le_bytes());
    buf.extend_from_slice(&s.watermark.to_le_bytes());
    buf.extend_from_slice(&s.entries.to_le_bytes());
    if with_ttl {
        match s.ttl_ms {
            Some(ttl) => {
                buf.push(1);
                buf.extend_from_slice(&ttl.to_le_bytes());
            }
            None => buf.push(0),
        }
    }
}

fn get_state_info(dec: &mut Decoder<'_>, with_ttl: bool) -> Result<StateInfo> {
    let job = get_str(dec)?;
    let operator = get_str(dec)?;
    let partition = dec.get_u64()? as usize;
    let pattern = StatePattern::from_u8(dec.take(1, "pattern")?[0]);
    let epoch = dec.get_u64()?;
    let watermark = dec.get_i64()?;
    let entries = dec.get_u64()?;
    let ttl_ms = if with_ttl {
        match dec.take(1, "ttl flag")?[0] {
            0 => None,
            1 => Some(dec.get_u64()?),
            flag => return Err(proto_err(format!("bad ttl flag {flag}"))),
        }
    } else {
        None
    };
    Ok(StateInfo {
        key: StateKey::new(job, operator, partition),
        pattern,
        epoch,
        watermark,
        entries,
        ttl_ms,
    })
}

fn put_attr_row(buf: &mut Vec<u8>, row: &AttributionRow) {
    put_str(buf, &row.stage);
    for v in [row.count, row.p50, row.p99, row.p999, row.total_nanos] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_attr_row(dec: &mut Decoder<'_>) -> Result<AttributionRow> {
    let stage = get_str(dec)?;
    let mut row = AttributionRow {
        stage,
        ..AttributionRow::default()
    };
    for field in [
        &mut row.count,
        &mut row.p50,
        &mut row.p99,
        &mut row.p999,
        &mut row.total_nanos,
    ] {
        *field = dec.get_u64()?;
    }
    Ok(row)
}

impl Response {
    /// Encodes this response as one frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::HelloAck { version } => {
                buf.push(OP_HELLO_ACK);
                buf.extend_from_slice(&HELLO_MAGIC);
                buf.push(*version);
            }
            Response::Pong => buf.push(OP_PONG),
            Response::States(states) => {
                buf.push(OP_STATES);
                flowkv_common::codec::put_varint_u64(&mut buf, states.len() as u64);
                for s in states {
                    put_state_info(&mut buf, s, false);
                }
            }
            Response::StatesV2(states) => {
                buf.push(OP_STATES_V2);
                flowkv_common::codec::put_varint_u64(&mut buf, states.len() as u64);
                for s in states {
                    put_state_info(&mut buf, s, true);
                }
            }
            Response::ValueBatch {
                epoch,
                watermark,
                found,
            } => {
                buf.push(OP_VALUE_BATCH);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&watermark.to_le_bytes());
                flowkv_common::codec::put_varint_u64(&mut buf, found.len() as u64);
                for slot in found {
                    match slot {
                        Some((window, value)) => {
                            buf.push(1);
                            put_window(&mut buf, *window);
                            put_view_value(&mut buf, value);
                        }
                        None => buf.push(0),
                    }
                }
            }
            Response::Value {
                epoch,
                watermark,
                found,
            } => {
                buf.push(OP_VALUE);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&watermark.to_le_bytes());
                match found {
                    Some((window, value)) => {
                        buf.push(1);
                        put_window(&mut buf, *window);
                        put_view_value(&mut buf, value);
                    }
                    None => buf.push(0),
                }
            }
            Response::ScanResult {
                epoch,
                watermark,
                entries,
            } => {
                buf.push(OP_SCAN_RESULT);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&watermark.to_le_bytes());
                flowkv_common::codec::put_varint_u64(&mut buf, entries.len() as u64);
                for e in entries {
                    put_len_prefixed(&mut buf, &e.key);
                    put_window(&mut buf, e.window);
                    put_view_value(&mut buf, &e.value);
                }
            }
            Response::MetricsReport {
                pattern,
                partitions,
                entries,
                watermark,
                metrics,
                registry,
            } => {
                buf.push(OP_METRICS_REPORT);
                buf.push(pattern.as_u8());
                buf.extend_from_slice(&partitions.to_le_bytes());
                buf.extend_from_slice(&entries.to_le_bytes());
                buf.extend_from_slice(&watermark.to_le_bytes());
                put_metrics(&mut buf, metrics);
                // Appended only when present: the empty encoding is the
                // pre-telemetry frame, which old clients still decode.
                if !registry.is_empty() {
                    put_samples(&mut buf, registry);
                }
            }
            Response::PrometheusText(text) => {
                buf.push(OP_PROM_TEXT);
                put_str(&mut buf, text);
            }
            Response::TraceSummaryReport {
                traces,
                rows,
                total,
            } => {
                buf.push(OP_TRACE_SUMMARY_REPORT);
                buf.extend_from_slice(&traces.to_le_bytes());
                flowkv_common::codec::put_varint_u64(&mut buf, rows.len() as u64);
                for row in rows {
                    put_attr_row(&mut buf, row);
                }
                put_attr_row(&mut buf, total);
            }
            Response::Error { code, message } => {
                buf.push(OP_ERROR);
                buf.push(code.as_u8());
                put_str(&mut buf, message);
            }
        }
        buf
    }

    /// Decodes a frame payload into a response.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(payload);
        let opcode = dec.take(1, "response opcode")?[0];
        let resp = match opcode {
            OP_HELLO_ACK => {
                let magic = dec.take(4, "hello-ack magic")?;
                if magic != HELLO_MAGIC {
                    return Err(proto_err("bad hello-ack magic"));
                }
                Response::HelloAck {
                    version: dec.take(1, "hello-ack version")?[0],
                }
            }
            OP_PONG => Response::Pong,
            OP_STATES | OP_STATES_V2 => {
                let with_ttl = opcode == OP_STATES_V2;
                let n = dec.get_varint_u64()? as usize;
                if n > MAX_FRAME {
                    return Err(proto_err("state count exceeds frame bound"));
                }
                let mut states = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    states.push(get_state_info(&mut dec, with_ttl)?);
                }
                if with_ttl {
                    Response::StatesV2(states)
                } else {
                    Response::States(states)
                }
            }
            OP_VALUE_BATCH => {
                let epoch = dec.get_u64()?;
                let watermark = dec.get_i64()?;
                let n = dec.get_varint_u64()? as usize;
                if n > MAX_FRAME {
                    return Err(proto_err("value-batch count exceeds frame bound"));
                }
                let mut found = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    found.push(match dec.take(1, "found flag")?[0] {
                        0 => None,
                        1 => {
                            let window = get_window(&mut dec)?;
                            Some((window, get_view_value(&mut dec)?))
                        }
                        flag => return Err(proto_err(format!("bad found flag {flag}"))),
                    });
                }
                Response::ValueBatch {
                    epoch,
                    watermark,
                    found,
                }
            }
            OP_VALUE => {
                let epoch = dec.get_u64()?;
                let watermark = dec.get_i64()?;
                let found = match dec.take(1, "found flag")?[0] {
                    0 => None,
                    1 => {
                        let window = get_window(&mut dec)?;
                        Some((window, get_view_value(&mut dec)?))
                    }
                    flag => return Err(proto_err(format!("bad found flag {flag}"))),
                };
                Response::Value {
                    epoch,
                    watermark,
                    found,
                }
            }
            OP_SCAN_RESULT => {
                let epoch = dec.get_u64()?;
                let watermark = dec.get_i64()?;
                let n = dec.get_varint_u64()? as usize;
                if n > MAX_FRAME {
                    return Err(proto_err("scan count exceeds frame bound"));
                }
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    entries.push(ScanEntry {
                        key: dec.get_len_prefixed()?.to_vec(),
                        window: get_window(&mut dec)?,
                        value: get_view_value(&mut dec)?,
                    });
                }
                Response::ScanResult {
                    epoch,
                    watermark,
                    entries,
                }
            }
            OP_METRICS_REPORT => {
                let pattern = StatePattern::from_u8(dec.take(1, "pattern")?[0]);
                let partitions = dec.get_u64()?;
                let entries = dec.get_u64()?;
                let watermark = dec.get_i64()?;
                let metrics = get_metrics(&mut dec)?;
                // Absent suffix = legacy frame = no registry samples.
                let registry = if dec.is_empty() {
                    Vec::new()
                } else {
                    get_samples(&mut dec)?
                };
                Response::MetricsReport {
                    pattern,
                    partitions,
                    entries,
                    watermark,
                    metrics,
                    registry,
                }
            }
            OP_PROM_TEXT => Response::PrometheusText(get_str(&mut dec)?),
            OP_TRACE_SUMMARY_REPORT => {
                let traces = dec.get_u64()?;
                let n = dec.get_varint_u64()? as usize;
                if n > MAX_FRAME {
                    return Err(proto_err("trace row count exceeds frame bound"));
                }
                let mut rows = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    rows.push(get_attr_row(&mut dec)?);
                }
                Response::TraceSummaryReport {
                    traces,
                    rows,
                    total: get_attr_row(&mut dec)?,
                }
            }
            OP_ERROR => Response::Error {
                code: ErrorCode::from_u8(dec.take(1, "error code")?[0])?,
                message: get_str(&mut dec)?,
            },
            other => return Err(proto_err(format!("unknown response opcode {other:#x}"))),
        };
        if !dec.is_empty() {
            return Err(proto_err("trailing bytes after response"));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        write_frame(&mut wire, &Request::ListStates.encode()).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let p1 = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(Request::decode(&p1).unwrap(), Request::Ping);
        let p2 = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(Request::decode(&p2).unwrap(), Request::ListStates);
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        put_u32(&mut wire, (MAX_FRAME + 1) as u32);
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut std::io::Cursor::new(wire)).unwrap_err();
        assert!(err.to_string().contains("frame length"));
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let mut wire = Vec::new();
        put_u32(&mut wire, 0);
        let err = read_frame(&mut std::io::Cursor::new(wire)).unwrap_err();
        assert!(err.to_string().contains("frame length"));
    }

    #[test]
    fn truncated_body_is_an_error() {
        let mut wire = Vec::new();
        put_u32(&mut wire, 100);
        wire.extend_from_slice(&[1u8; 10]);
        assert!(read_frame(&mut std::io::Cursor::new(wire)).is_err());
    }

    #[test]
    fn unknown_opcodes_are_rejected() {
        assert!(Request::decode(&[0x7f]).is_err());
        assert!(Response::decode(&[0x7f]).is_err());
        assert!(Request::decode(&[]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn hello_handshake_roundtrips() {
        let hello = Request::Hello {
            max_version: MAX_PROTOCOL,
        };
        assert_eq!(Request::decode(&hello.encode()).unwrap(), hello);
        let ack = Response::HelloAck {
            version: PROTOCOL_V2,
        };
        assert_eq!(Response::decode(&ack.encode()).unwrap(), ack);
        // Corrupt magic is rejected, not misparsed.
        let mut bad = hello.encode();
        bad[1] ^= 0xff;
        assert!(Request::decode(&bad).is_err());
    }

    #[test]
    fn v2_frames_carry_and_return_the_request_id() {
        let mut wire = Vec::new();
        write_frame_v2(&mut wire, 42, &Request::Ping.encode()).unwrap();
        let (consumed, range) = peek_frame(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        let (id, body) = split_request_id(&wire[range]).unwrap();
        assert_eq!(id, 42);
        assert_eq!(Request::decode(body).unwrap(), Request::Ping);
    }

    #[test]
    fn peek_frame_matches_read_frame_semantics() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        // Every strict prefix is incomplete, the full buffer parses.
        for cut in 0..wire.len() {
            assert!(peek_frame(&wire[..cut]).unwrap().is_none(), "cut {cut}");
        }
        let (consumed, range) = peek_frame(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(
            Request::decode(&wire[range]).unwrap(),
            Request::Ping,
            "peek_frame payload differs from read_frame's"
        );
        // Oversized and zero lengths error exactly like read_frame.
        let mut oversized = Vec::new();
        put_u32(&mut oversized, (MAX_FRAME + 1) as u32);
        assert!(peek_frame(&oversized).is_err());
        let mut zero = Vec::new();
        put_u32(&mut zero, 0);
        assert!(peek_frame(&zero).is_err());
    }
}
