//! Readiness polling for the event-loop server core.
//!
//! [`Poller`] is a thin, dependency-free wrapper over the operating
//! system's readiness API — `epoll(7)` on Linux, `poll(2)` on other
//! Unixes — declared directly against libc (which `std` already links)
//! so no external crate is needed. The surface is the minimal subset the
//! serving core uses: register a socket with a `u64` token and an
//! interest set, modify the interest, and wait for batches of
//! [`PollEvent`]s.
//!
//! Registration is **level-triggered** everywhere: an event keeps
//! firing while the condition holds, so the event loop may consume as
//! little or as much of a socket's readiness as it likes per wake-up
//! without risking a lost edge.

use std::time::Duration;

use flowkv_common::error::{Result, StoreError};

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct PollEvent {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// The peer can be read from (or has data / closed).
    pub readable: bool,
    /// The socket can accept more outgoing bytes.
    pub writable: bool,
    /// Error or hang-up; the connection should be torn down after a
    /// final read attempt drains whatever remains.
    pub error: bool,
}

fn io_err(what: &'static str) -> StoreError {
    StoreError::io(what, std::io::Error::last_os_error())
}

#[cfg(target_os = "linux")]
mod imp {
    use super::*;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Mirror of the kernel's `struct epoll_event`. On x86 the kernel
    /// declares it packed; other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Readiness poller backed by `epoll(7)`.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates an empty poller.
        pub fn new() -> Result<Self> {
            // SAFETY: plain syscall, no pointers involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io_err("epoll_create1"));
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> Result<()> {
            let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io_err("epoll_ctl"));
            }
            Ok(())
        }

        /// Starts watching `fd` under `token`.
        pub fn register(
            &self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some(interest(token, readable, writable)))
        }

        /// Replaces the interest set of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some(interest(token, readable, writable)))
        }

        /// Stops watching `fd`. Closing the descriptor also deregisters
        /// it implicitly; this is for keeping a live socket unwatched.
        pub fn deregister(&self, fd: RawFd) -> Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Blocks until at least one event is ready or `timeout`
        /// expires, appending events to `out`.
        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 128];
            let timeout_ms: c_int = match timeout {
                Some(t) => t.as_millis().min(c_int::MAX as u128) as c_int,
                None => -1,
            };
            // SAFETY: `buf` is a valid out-array of the stated length.
            let n =
                unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
            if n < 0 {
                let err = std::io::Error::last_os_error();
                if err.kind() == std::io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(StoreError::io("epoll_wait", err));
            }
            for ev in &buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let data = ev.data;
                out.push(PollEvent {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    error: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: fd owned by this struct, closed exactly once.
            unsafe { close(self.epfd) };
        }
    }

    fn interest(token: u64, readable: bool, writable: bool) -> EpollEvent {
        let mut events = EPOLLRDHUP;
        if readable {
            events |= EPOLLIN;
        }
        if writable {
            events |= EPOLLOUT;
        }
        EpollEvent {
            events,
            data: token,
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::*;
    use std::collections::HashMap;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Readiness poller backed by `poll(2)`: the registration table
    /// lives in userspace and is rebuilt into a `pollfd` array per wait.
    pub struct Poller {
        registered: Mutex<HashMap<RawFd, (u64, bool, bool)>>,
    }

    impl Poller {
        /// Creates an empty poller.
        pub fn new() -> Result<Self> {
            Ok(Poller {
                registered: Mutex::new(HashMap::new()),
            })
        }

        /// Starts watching `fd` under `token`.
        pub fn register(
            &self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> Result<()> {
            self.registered
                .lock()
                .unwrap()
                .insert(fd, (token, readable, writable));
            Ok(())
        }

        /// Replaces the interest set of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> Result<()> {
            self.register(fd, token, readable, writable)
        }

        /// Stops watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> Result<()> {
            self.registered.lock().unwrap().remove(&fd);
            Ok(())
        }

        /// Blocks until at least one event is ready or `timeout`
        /// expires, appending events to `out`.
        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> Result<()> {
            let snapshot: Vec<(RawFd, (u64, bool, bool))> = self
                .registered
                .lock()
                .unwrap()
                .iter()
                .map(|(fd, v)| (*fd, *v))
                .collect();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|(fd, (_, r, w))| PollFd {
                    fd: *fd,
                    events: if *r { POLLIN } else { 0 } | if *w { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let timeout_ms: c_int = match timeout {
                Some(t) => t.as_millis().min(c_int::MAX as u128) as c_int,
                None => -1,
            };
            // SAFETY: `fds` is a valid array of the stated length.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if n < 0 {
                let err = std::io::Error::last_os_error();
                if err.kind() == std::io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(StoreError::io("poll", err));
            }
            for (pfd, (_, (token, _, _))) in fds.iter().zip(snapshot.iter()) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token: *token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(unix)]
pub use imp::Poller;

#[cfg(not(unix))]
mod imp {
    use super::*;

    /// Unsupported-platform stub; construction fails so the server
    /// builder can fall back to the threaded core.
    pub struct Poller;

    impl Poller {
        /// Always fails on this platform.
        pub fn new() -> Result<Self> {
            Err(StoreError::invalid_state(
                "readiness polling is unsupported on this platform",
            ))
        }
    }
}

#[cfg(not(unix))]
pub use imp::Poller;

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn readiness_fires_for_accept_and_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 1, true, false)
            .unwrap();

        // Nothing pending: a short wait returns no events.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let (mut conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        poller.register(conn.as_raw_fd(), 2, true, false).unwrap();
        client.write_all(b"ping").unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        let mut buf = [0u8; 8];
        assert_eq!(conn.read(&mut buf).unwrap(), 4);

        // Write interest on an idle socket fires immediately.
        poller.modify(conn.as_raw_fd(), 2, true, true).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));
        poller.deregister(conn.as_raw_fd()).unwrap();
    }
}
