//! Queryable-state serving layer for FlowKV.
//!
//! Stream-processing state is traditionally opaque: the only way to
//! observe an aggregate is to wait for the job to emit it. This crate
//! adds an external read path over live FlowKV stores without perturbing
//! the write path:
//!
//! 1. Workers publish immutable, epoch-pinned
//!    [`StateView`](flowkv_common::registry::StateView) snapshots into a
//!    shared [`StateRegistry`](flowkv_common::registry::StateRegistry)
//!    each time their watermark advances (see
//!    `RunOptions::registry` in `flowkv-spe`).
//! 2. [`StateServer`](server::StateServer) — built via
//!    [`ServerBuilder`] — answers point lookups, batched multi-key
//!    lookups, filtered range scans, and metrics queries over those
//!    snapshots via a length-prefixed binary TCP protocol
//!    ([`protocol`]). The default core is a non-blocking **event loop**
//!    multiplexing every connection onto one readiness-polled thread;
//!    protocol v2 adds per-frame request ids so clients can pipeline
//!    many requests per connection.
//! 3. [`StateClient`](client::StateClient) is the matching blocking
//!    client with a pipelined batch façade; the `serve_bench` binary is
//!    a multi-threaded load generator reporting lookup throughput and
//!    latency percentiles.
//!
//! Because snapshots are immutable and reads never touch worker-owned
//! stores, serving is invisible to the job: outputs are byte-identical
//! with or without concurrent queries (asserted by this crate's
//! integration tests).

#![warn(missing_docs)]

pub mod client;
#[cfg(unix)]
mod event_loop;
mod poll;
pub mod protocol;
pub mod server;

pub use client::{
    LookupBatchResult, LookupResult, MetricsResult, ScanResult, StateClient, TraceSummary,
};
pub use protocol::{
    ErrorCode, Request, Response, ScanEntry, ScanFilter, StateInfo, MAX_FRAME, MAX_PROTOCOL,
    PROTOCOL_V1, PROTOCOL_V2,
};
pub use server::{route_key, ServerBuilder, StateServer};
