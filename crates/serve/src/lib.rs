//! Queryable-state serving layer for FlowKV.
//!
//! Stream-processing state is traditionally opaque: the only way to
//! observe an aggregate is to wait for the job to emit it. This crate
//! adds an external read path over live FlowKV stores without perturbing
//! the write path:
//!
//! 1. Workers publish immutable, epoch-pinned
//!    [`StateView`](flowkv_common::registry::StateView) snapshots into a
//!    shared [`StateRegistry`](flowkv_common::registry::StateRegistry)
//!    each time their watermark advances (see
//!    `RunOptions::registry` in `flowkv-spe`).
//! 2. [`StateServer`](server::StateServer) answers point lookups,
//!    window-range scans, and metrics queries over those snapshots via a
//!    length-prefixed binary TCP protocol ([`protocol`]).
//! 3. [`StateClient`](client::StateClient) is the matching blocking
//!    client; the `serve_bench` binary is a multi-threaded load
//!    generator reporting lookup throughput and latency percentiles.
//!
//! Because snapshots are immutable and reads never touch worker-owned
//! stores, serving is invisible to the job: outputs are byte-identical
//! with or without concurrent queries (asserted by this crate's
//! integration tests).

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{LookupResult, MetricsResult, ScanResult, StateClient, TraceSummary};
pub use protocol::{ErrorCode, Request, Response, ScanEntry, StateInfo, MAX_FRAME};
pub use server::{route_key, StateServer};
