//! `flowkv-metrics-dump`: one-shot metrics scrape of a live state
//! server.
//!
//! Connects, fetches the server's full metric surface (telemetry
//! registry plus per-operator store counters), and prints it to stdout.
//! The default output is Prometheus text exposition format 0.0.4 —
//! exactly what a scrape of the server's Prometheus opcode returns — so
//! the binary doubles as a debugging `curl` for the binary protocol:
//!
//! ```text
//! cargo run -p flowkv-serve --bin flowkv-metrics-dump -- \
//!   --addr=127.0.0.1:7070 [--format=prometheus|samples] \
//!   [--job=q12 --operator=count-global]
//! ```
//!
//! With `--format=samples` the raw registry samples from the metrics
//! opcode are printed one per line (histograms as count/sum/min/max).
//! With `--job`/`--operator` the merged store counters for that operator
//! are appended in either mode.

use flowkv_bench::HarnessArgs;
use flowkv_common::telemetry::SampleValue;
use flowkv_serve::StateClient;

fn main() {
    let args = HarnessArgs::parse();
    let addr = args.str("addr", "127.0.0.1:7070");
    let format = args.str("format", "prometheus");
    let job = args.str("job", "");
    let operator = args.str("operator", "");

    let mut client = match StateClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("flowkv-metrics-dump: connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    client
        .set_timeout(Some(std::time::Duration::from_secs(5)))
        .expect("set_timeout");

    match format.as_str() {
        "prometheus" => match client.prometheus() {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("flowkv-metrics-dump: prometheus fetch: {e}");
                std::process::exit(1);
            }
        },
        "samples" => {
            // The registry ride-along needs an operator to address; any
            // published state works, so default to the first listed.
            let (job, operator) = if job.is_empty() || operator.is_empty() {
                match client.list_states().ok().and_then(|s| s.into_iter().next()) {
                    Some(info) => (info.key.job.clone(), info.key.operator.clone()),
                    None => {
                        eprintln!("flowkv-metrics-dump: no published states to query");
                        std::process::exit(1);
                    }
                }
            } else {
                (job.clone(), operator.clone())
            };
            match client.metrics_with_registry(&job, &operator) {
                Ok((_, samples)) => {
                    for s in samples {
                        match s.value {
                            SampleValue::Counter(v) => println!("{} counter {v}", s.name),
                            SampleValue::Gauge(v) => println!("{} gauge {v}", s.name),
                            SampleValue::Histogram(h) => println!(
                                "{} histogram count={} sum={} min={} max={}",
                                s.name, h.count, h.sum, h.min, h.max
                            ),
                        }
                    }
                }
                Err(e) => {
                    eprintln!("flowkv-metrics-dump: metrics fetch: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!("flowkv-metrics-dump: unknown --format={other} (prometheus|samples)");
            std::process::exit(1);
        }
    }

    if !job.is_empty() && !operator.is_empty() {
        match client.metrics(&job, &operator) {
            Ok(report) => {
                eprintln!(
                    "# store {}/{}: {} partitions, {} entries, watermark {}",
                    job, operator, report.partitions, report.entries, report.watermark
                );
                for (name, value) in report.metrics.named() {
                    eprintln!("# store_{name} {value}");
                }
            }
            Err(e) => eprintln!("flowkv-metrics-dump: store metrics for {job}/{operator}: {e}"),
        }
    }
}
