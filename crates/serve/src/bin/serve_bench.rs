//! Load generator for the queryable-state server.
//!
//! Runs a rate-limited NEXMark Q12 job (RMW pattern: per-bidder counts
//! over a global window) with snapshot publication enabled, serves the
//! registry over TCP, and hammers the server with point lookups from a
//! pool of client threads while the job is still ingesting. Reports
//! sustained lookup throughput and p50/p99/p999 latency, and writes the
//! same numbers to `BENCH_serve.json`.
//!
//! Usage:
//! `cargo run --release -p flowkv-serve --bin serve_bench -- \
//!   [--events=1000000] [--rate=100000] [--threads=4] \
//!   [--measure-secs=5] [--parallelism=2] [--seed=1]`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flowkv_bench::{flowkv_cfg, run_cell, workload, CellOutcome, HarnessArgs};
use flowkv_common::registry::StateRegistry;
use flowkv_common::types::{MAX_TIMESTAMP, MIN_TIMESTAMP};
use flowkv_nexmark::{QueryId, QueryParams};
use flowkv_serve::{StateClient, StateServer};
use flowkv_spe::BackendChoice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Q12's job/operator coordinates (see `flowkv_nexmark::queries`).
const JOB: &str = "q12";
const OPERATOR: &str = "count-global";

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args = HarnessArgs::parse();
    let events = args.u64("events", 1_000_000);
    let rate = args.u64("rate", 100_000);
    let threads = args.u64("threads", 4) as usize;
    let measure_secs = args.f64("measure-secs", 5.0);
    let parallelism = args.u64("parallelism", 2) as usize;
    let seed = args.u64("seed", 1);

    eprintln!(
        "serve_bench: Q12 ({} events at {rate}/s, p={parallelism}) + {threads} lookup threads \
         for {measure_secs:.1}s",
        events
    );

    let registry = StateRegistry::new_shared();

    // The job runs in the background, throttled so it is still live —
    // appending to its RMW stores and republishing snapshots — while the
    // lookup threads measure.
    let job_registry = Arc::clone(&registry);
    let job_thread = std::thread::spawn(move || {
        run_cell(
            QueryId::Q12,
            &BackendChoice::FlowKv(flowkv_cfg()),
            workload(events, seed),
            QueryParams::new(1_000).with_parallelism(parallelism),
            Duration::from_secs(600),
            move |opts| {
                opts.rate_limit = Some(rate);
                opts.watermark_interval = 200;
                opts.registry = Some(job_registry);
            },
        )
    });

    let mut server =
        StateServer::spawn("127.0.0.1:0", Arc::clone(&registry)).expect("server spawn");
    let addr = server.local_addr();
    eprintln!("serve_bench: state server on {addr}");

    // Wait for the first snapshots, then sample real keys off a scan so
    // the lookup mix queries state that actually exists.
    let mut sampler = StateClient::connect(addr).expect("sampler connect");
    let keys = loop {
        let scan = sampler
            .scan(JOB, OPERATOR, MIN_TIMESTAMP, MAX_TIMESTAMP, 10_000)
            .ok();
        match scan {
            Some(s) if s.entries.len() >= 100 => {
                break s.entries.into_iter().map(|e| e.key).collect::<Vec<_>>();
            }
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    eprintln!("serve_bench: sampled {} live keys", keys.len());

    let stop = Arc::new(AtomicBool::new(false));
    let keys = Arc::new(keys);
    let mut workers = Vec::new();
    let measure_start = Instant::now();
    for t in 0..threads {
        let stop = Arc::clone(&stop);
        let keys = Arc::clone(&keys);
        workers.push(std::thread::spawn(move || {
            let mut client = StateClient::connect(addr).expect("client connect");
            let mut rng = StdRng::seed_from_u64(0xbeef ^ t as u64);
            let mut latencies = Vec::with_capacity(1 << 20);
            let mut found = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = &keys[rng.gen_range(0..keys.len())];
                let begin = Instant::now();
                let result = client
                    .lookup_latest(JOB, OPERATOR, key)
                    .expect("lookup failed");
                latencies.push(begin.elapsed().as_nanos() as u64);
                if result.found.is_some() {
                    found += 1;
                }
            }
            (latencies, found)
        }));
    }

    std::thread::sleep(Duration::from_secs_f64(measure_secs));
    stop.store(true, Ordering::SeqCst);
    let mut latencies = Vec::new();
    let mut found = 0u64;
    for w in workers {
        let (l, f) = w.join().expect("worker panicked");
        latencies.extend(l);
        found += f;
    }
    let elapsed = measure_start.elapsed().as_secs_f64();
    let job_live_after_measurement = !job_thread.is_finished();

    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let throughput = total as f64 / elapsed;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let p999 = percentile(&latencies, 0.999);

    // Let the job drain, then shut the server down.
    let outcome = job_thread.join().expect("job thread panicked");
    let job_ok = matches!(outcome, CellOutcome::Ok(_));
    let (job_inputs, job_outputs) = match &outcome {
        CellOutcome::Ok(r) => (r.input_count, r.output_count),
        _ => (0, 0),
    };
    let requests = server.requests_served();
    server.shutdown();

    println!(
        "lookups: {total} in {elapsed:.2}s = {throughput:.0}/s  \
         (hit {found}, server answered {requests} total)"
    );
    println!(
        "latency: p50 {:.1}us  p99 {:.1}us  p999 {:.1}us",
        p50 as f64 / 1_000.0,
        p99 as f64 / 1_000.0,
        p999 as f64 / 1_000.0,
    );
    println!(
        "job: ok={job_ok} inputs={job_inputs} outputs={job_outputs} \
         live_during_measurement={job_live_after_measurement}"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"serve_point_lookups\",\n  \"query\": \"Q12\",\n  \
         \"pattern\": \"RMW\",\n  \"events\": {events},\n  \"ingest_rate\": {rate},\n  \
         \"threads\": {threads},\n  \"measure_secs\": {elapsed:.3},\n  \
         \"lookups\": {total},\n  \"lookups_found\": {found},\n  \
         \"throughput_per_sec\": {throughput:.1},\n  \
         \"p50_nanos\": {p50},\n  \"p99_nanos\": {p99},\n  \"p999_nanos\": {p999},\n  \
         \"job_live_during_measurement\": {job_live_after_measurement},\n  \
         \"job_completed_ok\": {job_ok}\n}}\n"
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    eprintln!("serve_bench: wrote BENCH_serve.json");

    if !job_ok {
        let reason = match &outcome {
            CellOutcome::OutOfMemory => "out of memory".to_string(),
            CellOutcome::Timeout => "timeout".to_string(),
            CellOutcome::Failed(msg) => msg.clone(),
            CellOutcome::Ok(_) => unreachable!(),
        };
        eprintln!("serve_bench: job failed: {reason}");
        std::process::exit(1);
    }
}
