//! Load generator for the queryable-state server.
//!
//! Runs a rate-limited NEXMark Q12 job (RMW pattern: per-bidder counts
//! over a global window) with snapshot publication enabled, then
//! measures the serving path in three phases over the same live
//! registry:
//!
//! 1. **baseline** — the legacy thread-per-connection core, one point
//!    lookup per round trip (what every pre-v2 deployment ran);
//! 2. **pipelined** — the event-loop core with protocol v2 and
//!    `--depth` point lookups in flight per connection;
//! 3. **mixed** — the event-loop core under a realistic blend of
//!    pipelined point batches, multi-key `LookupMany` frames, and
//!    prefix-filtered scans.
//!
//! Reports sustained lookup throughput and p50/p99/p999 latency per
//! phase, the pipelining speedup over the baseline, and writes the same
//! numbers to `--out` (default `BENCH_serve.json`).
//!
//! Usage:
//! `cargo run --release -p flowkv-serve --bin serve_bench -- \
//!   [--events=1000000] [--rate=100000] [--threads=4] [--depth=16] \
//!   [--measure-secs=5] [--parallelism=2] [--seed=1] [--out=BENCH_serve.json]`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flowkv_bench::{flowkv_cfg, run_cell, workload, CellOutcome, HarnessArgs};
use flowkv_common::registry::StateRegistry;
use flowkv_common::types::{MAX_TIMESTAMP, MIN_TIMESTAMP};
use flowkv_nexmark::{QueryId, QueryParams};
use flowkv_serve::{Request, Response, ScanFilter, ServerBuilder, StateClient};
use flowkv_spe::BackendChoice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Q12's job/operator coordinates (see `flowkv_nexmark::queries`).
const JOB: &str = "q12";
const OPERATOR: &str = "count-global";

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One measured phase: lookups answered, wall time, and the latency of
/// each wire round trip (a pipelined batch counts once — that is the
/// latency a batched caller experiences).
struct PhaseResult {
    name: &'static str,
    lookups: u64,
    elapsed: f64,
    p50: u64,
    p99: u64,
    p999: u64,
}

impl PhaseResult {
    fn throughput(&self) -> f64 {
        self.lookups as f64 / self.elapsed
    }

    fn print(&self) {
        println!(
            "{}: {} lookups in {:.2}s = {:.0}/s  latency p50 {:.1}us p99 {:.1}us p999 {:.1}us",
            self.name,
            self.lookups,
            self.elapsed,
            self.throughput(),
            self.p50 as f64 / 1_000.0,
            self.p99 as f64 / 1_000.0,
            self.p999 as f64 / 1_000.0,
        );
    }

    fn json(&self) -> String {
        format!(
            "{{ \"name\": \"{}\", \"lookups\": {}, \"measure_secs\": {:.3}, \
             \"throughput_per_sec\": {:.1}, \"p50_nanos\": {}, \"p99_nanos\": {}, \
             \"p999_nanos\": {} }}",
            self.name,
            self.lookups,
            self.elapsed,
            self.throughput(),
            self.p50,
            self.p99,
            self.p999
        )
    }
}

/// Runs `threads` workers against `addr` for `measure_secs`, each
/// executing `work` in a loop. `work` returns (lookups answered, round
/// trips) per iteration; every iteration's latency is recorded once.
fn measure_phase(
    name: &'static str,
    addr: std::net::SocketAddr,
    threads: usize,
    measure_secs: f64,
    work: impl Fn(&mut StateClient, &mut StdRng, usize) -> u64 + Send + Sync + 'static,
) -> PhaseResult {
    let stop = Arc::new(AtomicBool::new(false));
    let work = Arc::new(work);
    let mut workers = Vec::new();
    let start = Instant::now();
    for t in 0..threads {
        let stop = Arc::clone(&stop);
        let work = Arc::clone(&work);
        workers.push(std::thread::spawn(move || {
            let mut client = StateClient::connect(addr).expect("client connect");
            let mut rng = StdRng::seed_from_u64(0xbeef ^ t as u64);
            let mut latencies = Vec::with_capacity(1 << 18);
            let mut lookups = 0u64;
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let begin = Instant::now();
                lookups += work(&mut client, &mut rng, i);
                latencies.push(begin.elapsed().as_nanos() as u64);
                i += 1;
            }
            (latencies, lookups)
        }));
    }
    std::thread::sleep(Duration::from_secs_f64(measure_secs));
    stop.store(true, Ordering::SeqCst);
    let mut latencies = Vec::new();
    let mut lookups = 0u64;
    for w in workers {
        let (l, n) = w.join().expect("worker panicked");
        latencies.extend(l);
        lookups += n;
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    PhaseResult {
        name,
        lookups,
        elapsed,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        p999: percentile(&latencies, 0.999),
    }
}

fn point_batch(keys: &Arc<Vec<Vec<u8>>>, rng: &mut StdRng, depth: usize) -> Vec<Request> {
    (0..depth)
        .map(|_| Request::Lookup {
            job: JOB.into(),
            operator: OPERATOR.into(),
            key: keys[rng.gen_range(0..keys.len())].clone(),
            window: None,
        })
        .collect()
}

fn count_values(responses: &[Response]) -> u64 {
    responses
        .iter()
        .filter(|r| matches!(r, Response::Value { .. } | Response::ValueBatch { .. }))
        .count() as u64
}

fn main() {
    let args = HarnessArgs::parse();
    let events = args.u64("events", 1_000_000);
    let rate = args.u64("rate", 100_000);
    let threads = args.u64("threads", 4) as usize;
    let depth = (args.u64("depth", 16) as usize).max(1);
    let measure_secs = args.f64("measure-secs", 5.0);
    let parallelism = args.u64("parallelism", 2) as usize;
    let seed = args.u64("seed", 1);
    let out = args.str("out", "BENCH_serve.json");

    eprintln!(
        "serve_bench: Q12 ({events} events at {rate}/s, p={parallelism}) + {threads} lookup \
         threads, pipeline depth {depth}, {measure_secs:.1}s per phase"
    );

    let registry = StateRegistry::new_shared();

    // The job runs in the background, throttled so it is still live —
    // appending to its RMW stores and republishing snapshots — while the
    // lookup threads measure.
    let job_registry = Arc::clone(&registry);
    let job_thread = std::thread::spawn(move || {
        run_cell(
            QueryId::Q12,
            &BackendChoice::FlowKv(flowkv_cfg()),
            workload(events, seed),
            QueryParams::new(1_000).with_parallelism(parallelism),
            Duration::from_secs(600),
            move |opts| {
                opts.rate_limit = Some(rate);
                opts.watermark_interval = 200;
                opts.registry = Some(job_registry);
            },
        )
    });

    // Two servers over the same registry: the legacy threaded core as
    // the baseline, the event loop as the measured core.
    let mut baseline_server = ServerBuilder::new("127.0.0.1:0", Arc::clone(&registry))
        .threaded(true)
        .spawn()
        .expect("baseline server spawn");
    let mut server = ServerBuilder::new("127.0.0.1:0", Arc::clone(&registry))
        .spawn()
        .expect("server spawn");
    let addr = server.local_addr();
    eprintln!(
        "serve_bench: {} core on {addr}, {} baseline on {}",
        server.core(),
        baseline_server.core(),
        baseline_server.local_addr()
    );

    // Wait for the first snapshots, then sample real keys off a scan so
    // the lookup mix queries state that actually exists.
    let mut sampler = StateClient::connect(addr).expect("sampler connect");
    let keys = loop {
        let scan = sampler
            .scan(JOB, OPERATOR, MIN_TIMESTAMP, MAX_TIMESTAMP, 10_000)
            .ok();
        match scan {
            Some(s) if s.entries.len() >= 100 => {
                break s.entries.into_iter().map(|e| e.key).collect::<Vec<_>>();
            }
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    eprintln!("serve_bench: sampled {} live keys", keys.len());
    let keys = Arc::new(keys);

    // Phase 1 — thread-per-connection baseline, one lookup per round
    // trip (protocol v1 semantics regardless of the negotiated version).
    let phase_keys = Arc::clone(&keys);
    let baseline = measure_phase(
        "threaded_depth1",
        baseline_server.local_addr(),
        threads,
        measure_secs,
        move |client, rng, _| {
            let key = &phase_keys[rng.gen_range(0..phase_keys.len())];
            client
                .lookup_latest(JOB, OPERATOR, key)
                .expect("lookup failed");
            1
        },
    );
    baseline.print();

    // Phase 2 — the event loop with `depth` point lookups pipelined per
    // round trip.
    let phase_keys = Arc::clone(&keys);
    let pipelined = measure_phase(
        "event_loop_pipelined",
        addr,
        threads,
        measure_secs,
        move |client, rng, _| {
            let batch = point_batch(&phase_keys, rng, depth);
            let responses = client.call_batch(&batch).expect("batch failed");
            count_values(&responses)
        },
    );
    pipelined.print();

    // Phase 3 — mixed workload on the event loop: pipelined point
    // batches, a LookupMany frame, and a prefix-filtered scan.
    let phase_keys = Arc::clone(&keys);
    let mixed = measure_phase("event_loop_mixed", addr, threads, measure_secs, {
        move |client, rng, i| {
            match i % 4 {
                // A multi-key lookup: `depth` keys in one frame.
                0 => {
                    let many: Vec<Vec<u8>> = (0..depth)
                        .map(|_| phase_keys[rng.gen_range(0..phase_keys.len())].clone())
                        .collect();
                    let batch = client
                        .lookup_many(JOB, OPERATOR, &many, None)
                        .expect("lookup_many failed");
                    batch.found.len() as u64
                }
                // A prefix-filtered scan over a sampled key's prefix.
                1 => {
                    let key = &phase_keys[rng.gen_range(0..phase_keys.len())];
                    let prefix = key[..key.len().min(2)].to_vec();
                    let scan = client
                        .scan_filtered(
                            JOB,
                            OPERATOR,
                            ScanFilter::range(MIN_TIMESTAMP, MAX_TIMESTAMP, 64).with_prefix(prefix),
                        )
                        .expect("scan_filtered failed");
                    scan.entries.len().max(1) as u64
                }
                // Pipelined point batches.
                _ => {
                    let batch = point_batch(&phase_keys, rng, depth);
                    let responses = client.call_batch(&batch).expect("batch failed");
                    count_values(&responses)
                }
            }
        }
    });
    mixed.print();

    let speedup = pipelined.throughput() / baseline.throughput().max(1.0);
    println!("pipelining speedup: {speedup:.2}x over thread-per-connection at depth {depth}");

    // Let the job drain, then shut the servers down.
    let outcome = job_thread.join().expect("job thread panicked");
    let job_ok = matches!(outcome, CellOutcome::Ok(_));
    let (job_inputs, job_outputs) = match &outcome {
        CellOutcome::Ok(r) => (r.input_count, r.output_count),
        _ => (0, 0),
    };
    let requests = server.requests_served() + baseline_server.requests_served();
    server.shutdown();
    baseline_server.shutdown();
    println!("job: ok={job_ok} inputs={job_inputs} outputs={job_outputs} (server answered {requests} frames)");

    let json = format!(
        "{{\n  \"benchmark\": \"serve_point_lookups\",\n  \"query\": \"Q12\",\n  \
         \"pattern\": \"RMW\",\n  \"events\": {events},\n  \"ingest_rate\": {rate},\n  \
         \"threads\": {threads},\n  \"pipeline_depth\": {depth},\n  \
         \"phases\": [\n    {},\n    {},\n    {}\n  ],\n  \
         \"pipelining_speedup\": {speedup:.2},\n  \
         \"job_completed_ok\": {job_ok}\n}}\n",
        baseline.json(),
        pipelined.json(),
        mixed.json(),
    );
    std::fs::write(&out, &json).expect("write benchmark json");
    eprintln!("serve_bench: wrote {out}");

    if !job_ok {
        let reason = match &outcome {
            CellOutcome::OutOfMemory => "out of memory".to_string(),
            CellOutcome::Timeout => "timeout".to_string(),
            CellOutcome::Failed(msg) => msg.clone(),
            CellOutcome::Ok(_) => unreachable!(),
        };
        eprintln!("serve_bench: job failed: {reason}");
        std::process::exit(1);
    }
}
