//! Blocking client for the FlowKV state server.
//!
//! One [`StateClient`] wraps one TCP connection and issues strictly
//! sequential request/response exchanges; it is deliberately not
//! `Sync` — spawn one client per querying thread, as the load generator
//! does.

use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use flowkv_common::error::{Result, StoreError};
use flowkv_common::metrics::MetricsSnapshot;
use flowkv_common::registry::{StatePattern, ViewValue};
use flowkv_common::telemetry::MetricSample;
use flowkv_common::trace::AttributionRow;
use flowkv_common::types::{Timestamp, WindowId};

use crate::protocol::{read_frame, write_frame, Request, Response, ScanEntry, StateInfo};

/// A point-lookup answer: the snapshot coordinates plus the value, if
/// the key was live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookupResult {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Watermark the snapshot is aligned to.
    pub watermark: Timestamp,
    /// `(window, value)` if the key was found.
    pub found: Option<(WindowId, ViewValue)>,
}

/// A range-scan answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanResult {
    /// Minimum epoch across the answering partitions.
    pub epoch: u64,
    /// Minimum watermark across the answering partitions.
    pub watermark: Timestamp,
    /// Matching entries.
    pub entries: Vec<ScanEntry>,
}

/// An operator-metrics answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsResult {
    /// Pattern of the operator's store.
    pub pattern: StatePattern,
    /// Partitions merged into the report.
    pub partitions: u64,
    /// Live entries across partitions.
    pub entries: u64,
    /// Minimum watermark across partitions.
    pub watermark: Timestamp,
    /// Summed store counters.
    pub metrics: MetricsSnapshot,
}

/// A latency-attribution answer: the server-side trace table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Sampled batches the table aggregates.
    pub traces: u64,
    /// One row per stage, in [`flowkv_common::trace::STAGES`] order.
    pub rows: Vec<AttributionRow>,
    /// End-to-end totals.
    pub total: AttributionRow,
}

/// Blocking connection to a [`StateServer`](crate::server::StateServer).
pub struct StateClient {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

impl StateClient {
    /// Connects to a state server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream =
            TcpStream::connect(addr).map_err(|e| StoreError::io("state client connect", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| StoreError::io("state client set_nodelay", e))?;
        let reader = stream
            .try_clone()
            .map_err(|e| StoreError::io("state client clone", e))?;
        Ok(StateClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Caps how long a single response read may block.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.reader
            .set_read_timeout(timeout)
            .map_err(|e| StoreError::io("state client set_read_timeout", e))
    }

    fn call(&mut self, request: &Request) -> Result<Response> {
        use std::io::Write as _;
        write_frame(&mut self.writer, &request.encode())?;
        self.writer
            .flush()
            .map_err(|e| StoreError::io("state client flush", e))?;
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| StoreError::invalid_state("server closed the connection"))?;
        let response = Response::decode(&payload)?;
        if let Response::Error { code, message } = response {
            return Err(StoreError::invalid_state(format!(
                "server error ({code:?}): {message}"
            )));
        }
        Ok(response)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Enumerates every published state.
    pub fn list_states(&mut self) -> Result<Vec<StateInfo>> {
        match self.call(&Request::ListStates)? {
            Response::States(states) => Ok(states),
            other => Err(unexpected(&other)),
        }
    }

    /// Looks up `key` in a specific window.
    pub fn lookup(
        &mut self,
        job: &str,
        operator: &str,
        key: &[u8],
        window: WindowId,
    ) -> Result<LookupResult> {
        self.lookup_inner(job, operator, key, Some(window))
    }

    /// Looks up `key` in its latest live window.
    pub fn lookup_latest(&mut self, job: &str, operator: &str, key: &[u8]) -> Result<LookupResult> {
        self.lookup_inner(job, operator, key, None)
    }

    fn lookup_inner(
        &mut self,
        job: &str,
        operator: &str,
        key: &[u8],
        window: Option<WindowId>,
    ) -> Result<LookupResult> {
        let request = Request::Lookup {
            job: job.into(),
            operator: operator.into(),
            key: key.to_vec(),
            window,
        };
        match self.call(&request)? {
            Response::Value {
                epoch,
                watermark,
                found,
            } => Ok(LookupResult {
                epoch,
                watermark,
                found,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Scans every entry whose window overlaps `[range_start, range_end]`.
    pub fn scan(
        &mut self,
        job: &str,
        operator: &str,
        range_start: Timestamp,
        range_end: Timestamp,
        limit: u64,
    ) -> Result<ScanResult> {
        let request = Request::Scan {
            job: job.into(),
            operator: operator.into(),
            range_start,
            range_end,
            limit,
        };
        match self.call(&request)? {
            Response::ScanResult {
                epoch,
                watermark,
                entries,
            } => Ok(ScanResult {
                epoch,
                watermark,
                entries,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches merged store metrics for one operator.
    pub fn metrics(&mut self, job: &str, operator: &str) -> Result<MetricsResult> {
        self.metrics_inner(job, operator, false).map(|(m, _)| m)
    }

    /// Fetches merged store metrics plus the server's telemetry-registry
    /// samples (empty when the server was started without telemetry).
    pub fn metrics_with_registry(
        &mut self,
        job: &str,
        operator: &str,
    ) -> Result<(MetricsResult, Vec<MetricSample>)> {
        self.metrics_inner(job, operator, true)
    }

    fn metrics_inner(
        &mut self,
        job: &str,
        operator: &str,
        include_registry: bool,
    ) -> Result<(MetricsResult, Vec<MetricSample>)> {
        let request = Request::Metrics {
            job: job.into(),
            operator: operator.into(),
            include_registry,
        };
        match self.call(&request)? {
            Response::MetricsReport {
                pattern,
                partitions,
                entries,
                watermark,
                metrics,
                registry,
            } => Ok((
                MetricsResult {
                    pattern,
                    partitions,
                    entries,
                    watermark,
                    metrics,
                },
                registry,
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's full metric surface rendered in Prometheus
    /// text exposition format 0.0.4.
    pub fn prometheus(&mut self) -> Result<String> {
        match self.call(&Request::Prometheus)? {
            Response::PrometheusText(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the job's latency-attribution table. With `drain` set the
    /// server empties its span rings, so the next summary covers only
    /// batches traced after this call. All-zero when the job is
    /// untraced.
    pub fn trace_summary(&mut self, drain: bool) -> Result<TraceSummary> {
        match self.call(&Request::TraceSummary { drain })? {
            Response::TraceSummaryReport {
                traces,
                rows,
                total,
            } => Ok(TraceSummary {
                traces,
                rows,
                total,
            }),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> StoreError {
    StoreError::invalid_state(format!("unexpected response type: {resp:?}"))
}
