//! Blocking client for the FlowKV state server.
//!
//! One [`StateClient`] wraps one TCP connection. [`StateClient::connect`]
//! negotiates protocol v2 when the server speaks it (and transparently
//! stays on v1 against an old server); [`StateClient::connect_v1`] pins
//! the legacy protocol, byte-for-byte identical to pre-v2 builds.
//!
//! The client is a **pipelined façade**: [`StateClient::call_batch`]
//! writes a whole batch of requests before reading any response, so the
//! server can answer all of them in one wake-up instead of paying a
//! round trip each. The batched query surface — [`lookup_many`]
//! ([`StateClient::lookup_many`]) and [`scan_filtered`]
//! ([`StateClient::scan_filtered`]) — rides on it, and every blocking
//! single-shot method is just a batch of one. The client is deliberately
//! not `Sync` — spawn one per querying thread, as the load generator
//! does.

use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use flowkv_common::error::{Result, StoreError};
use flowkv_common::metrics::MetricsSnapshot;
use flowkv_common::registry::{StatePattern, ViewValue};
use flowkv_common::telemetry::MetricSample;
use flowkv_common::trace::AttributionRow;
use flowkv_common::types::{Timestamp, WindowId};

use crate::protocol::{
    read_frame, split_request_id, write_frame, write_frame_v2, Request, Response, ScanEntry,
    ScanFilter, StateInfo, MAX_PROTOCOL, PROTOCOL_V1,
};

/// A point-lookup answer: the snapshot coordinates plus the value, if
/// the key was live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookupResult {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Watermark the snapshot is aligned to.
    pub watermark: Timestamp,
    /// `(window, value)` if the key was found.
    pub found: Option<(WindowId, ViewValue)>,
}

/// A batched-lookup answer: one slot per requested key, positionally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookupBatchResult {
    /// Minimum epoch across the answering partitions.
    pub epoch: u64,
    /// Minimum watermark across the answering partitions.
    pub watermark: Timestamp,
    /// Per-key results, in request order.
    pub found: Vec<Option<(WindowId, ViewValue)>>,
}

/// A range-scan answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanResult {
    /// Minimum epoch across the answering partitions.
    pub epoch: u64,
    /// Minimum watermark across the answering partitions.
    pub watermark: Timestamp,
    /// Matching entries.
    pub entries: Vec<ScanEntry>,
}

/// An operator-metrics answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsResult {
    /// Pattern of the operator's store.
    pub pattern: StatePattern,
    /// Partitions merged into the report.
    pub partitions: u64,
    /// Live entries across partitions.
    pub entries: u64,
    /// Minimum watermark across partitions.
    pub watermark: Timestamp,
    /// Summed store counters.
    pub metrics: MetricsSnapshot,
}

/// A latency-attribution answer: the server-side trace table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Sampled batches the table aggregates.
    pub traces: u64,
    /// One row per stage, in [`flowkv_common::trace::STAGES`] order.
    pub rows: Vec<AttributionRow>,
    /// End-to-end totals.
    pub total: AttributionRow,
}

/// Blocking connection to a [`StateServer`](crate::server::StateServer).
pub struct StateClient {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    version: u8,
    next_id: u64,
}

impl StateClient {
    /// Connects to a state server and negotiates the highest protocol
    /// version both sides speak. Against a pre-v2 server the handshake
    /// is rejected as an unknown request and the connection simply
    /// stays on v1.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let mut client = Self::connect_v1(addr)?;
        use std::io::Write as _;
        write_frame(
            &mut client.writer,
            &Request::Hello {
                max_version: MAX_PROTOCOL,
            }
            .encode(),
        )?;
        client
            .writer
            .flush()
            .map_err(|e| StoreError::io("state client flush", e))?;
        let payload = read_frame(&mut client.reader)?
            .ok_or_else(|| StoreError::invalid_state("server closed during handshake"))?;
        match Response::decode(&payload)? {
            Response::HelloAck { version } => client.version = version.max(PROTOCOL_V1),
            // An old server rejects the unknown opcode; stay on v1.
            Response::Error { .. } => {}
            other => return Err(unexpected(&other)),
        }
        Ok(client)
    }

    /// Connects speaking protocol v1 only, with no handshake frame —
    /// exactly what a pre-v2 client build does.
    pub fn connect_v1(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream =
            TcpStream::connect(addr).map_err(|e| StoreError::io("state client connect", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| StoreError::io("state client set_nodelay", e))?;
        let reader = stream
            .try_clone()
            .map_err(|e| StoreError::io("state client clone", e))?;
        Ok(StateClient {
            reader,
            writer: BufWriter::new(stream),
            version: PROTOCOL_V1,
            next_id: 1,
        })
    }

    /// The protocol version this connection negotiated.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Caps how long a single response read may block.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.reader
            .set_read_timeout(timeout)
            .map_err(|e| StoreError::io("state client set_read_timeout", e))
    }

    /// Issues `requests` as one pipelined batch: every frame is written
    /// before any response is read, so the whole batch costs one round
    /// trip. Responses come back in request order; a per-request server
    /// error is returned in its slot as [`Response::Error`] rather than
    /// failing the batch.
    ///
    /// On v2 connections responses are correlated by request id; on v1
    /// the server's strict in-order answering provides the pairing, so
    /// pipelining works against old servers too.
    pub fn call_batch(&mut self, requests: &[Request]) -> Result<Vec<Response>> {
        use std::io::Write as _;
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        if self.version >= crate::protocol::PROTOCOL_V2 {
            let first_id = self.next_id;
            for (i, request) in requests.iter().enumerate() {
                write_frame_v2(&mut self.writer, first_id + i as u64, &request.encode())?;
            }
            self.next_id = first_id + requests.len() as u64;
            self.writer
                .flush()
                .map_err(|e| StoreError::io("state client flush", e))?;
            let mut slots: Vec<Option<Response>> = vec![None; requests.len()];
            let mut expected: HashMap<u64, usize> = (0..requests.len())
                .map(|i| (first_id + i as u64, i))
                .collect();
            while !expected.is_empty() {
                let payload = read_frame(&mut self.reader)?
                    .ok_or_else(|| StoreError::invalid_state("server closed mid-batch"))?;
                let (id, body) = split_request_id(&payload)?;
                let Some(slot) = expected.remove(&id) else {
                    return Err(StoreError::invalid_state(format!(
                        "response carries unknown request id {id}"
                    )));
                };
                slots[slot] = Some(Response::decode(body)?);
            }
            Ok(slots
                .into_iter()
                .map(|s| s.expect("all ids seen"))
                .collect())
        } else {
            for request in requests {
                write_frame(&mut self.writer, &request.encode())?;
            }
            self.writer
                .flush()
                .map_err(|e| StoreError::io("state client flush", e))?;
            let mut responses = Vec::with_capacity(requests.len());
            for _ in requests {
                let payload = read_frame(&mut self.reader)?
                    .ok_or_else(|| StoreError::invalid_state("server closed mid-batch"))?;
                responses.push(Response::decode(&payload)?);
            }
            Ok(responses)
        }
    }

    /// One request, one response: a batch of one, with server errors
    /// lifted into `Err`.
    fn call(&mut self, request: &Request) -> Result<Response> {
        let response = self
            .call_batch(std::slice::from_ref(request))?
            .pop()
            .expect("one response per request");
        if let Response::Error { code, message } = response {
            return Err(StoreError::invalid_state(format!(
                "server error ({code:?}): {message}"
            )));
        }
        Ok(response)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Enumerates every published state.
    pub fn list_states(&mut self) -> Result<Vec<StateInfo>> {
        match self.call(&Request::ListStates)? {
            Response::States(states) => Ok(states),
            other => Err(unexpected(&other)),
        }
    }

    /// Enumerates every published state with v2 metadata (per-state
    /// TTL). Requires a v2-capable server.
    pub fn list_states_v2(&mut self) -> Result<Vec<StateInfo>> {
        match self.call(&Request::ListStatesV2)? {
            Response::StatesV2(states) => Ok(states),
            other => Err(unexpected(&other)),
        }
    }

    /// Looks up `key` in a specific window.
    pub fn lookup(
        &mut self,
        job: &str,
        operator: &str,
        key: &[u8],
        window: WindowId,
    ) -> Result<LookupResult> {
        self.lookup_inner(job, operator, key, Some(window))
    }

    /// Looks up `key` in its latest live window.
    pub fn lookup_latest(&mut self, job: &str, operator: &str, key: &[u8]) -> Result<LookupResult> {
        self.lookup_inner(job, operator, key, None)
    }

    fn lookup_inner(
        &mut self,
        job: &str,
        operator: &str,
        key: &[u8],
        window: Option<WindowId>,
    ) -> Result<LookupResult> {
        let request = Request::Lookup {
            job: job.into(),
            operator: operator.into(),
            key: key.to_vec(),
            window,
        };
        match self.call(&request)? {
            Response::Value {
                epoch,
                watermark,
                found,
            } => Ok(LookupResult {
                epoch,
                watermark,
                found,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Looks up many keys of one operator in a single round trip,
    /// answered positionally. With `window` unset each key answers from
    /// its latest live window. Requires a v2-capable server.
    pub fn lookup_many(
        &mut self,
        job: &str,
        operator: &str,
        keys: &[Vec<u8>],
        window: Option<WindowId>,
    ) -> Result<LookupBatchResult> {
        let request = Request::LookupMany {
            job: job.into(),
            operator: operator.into(),
            keys: keys.to_vec(),
            window,
        };
        match self.call(&request)? {
            Response::ValueBatch {
                epoch,
                watermark,
                found,
            } => Ok(LookupBatchResult {
                epoch,
                watermark,
                found,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Scans every entry whose window overlaps `[range_start, range_end]`.
    pub fn scan(
        &mut self,
        job: &str,
        operator: &str,
        range_start: Timestamp,
        range_end: Timestamp,
        limit: u64,
    ) -> Result<ScanResult> {
        let request = Request::Scan {
            job: job.into(),
            operator: operator.into(),
            range_start,
            range_end,
            limit,
        };
        match self.call(&request)? {
            Response::ScanResult {
                epoch,
                watermark,
                entries,
            } => Ok(ScanResult {
                epoch,
                watermark,
                entries,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Scans with server-side filters — key prefix, window-overlap
    /// bounds, limit — applied before anything crosses the wire.
    /// Requires a v2-capable server.
    pub fn scan_filtered(
        &mut self,
        job: &str,
        operator: &str,
        filter: ScanFilter,
    ) -> Result<ScanResult> {
        let request = Request::ScanFiltered {
            job: job.into(),
            operator: operator.into(),
            filter,
        };
        match self.call(&request)? {
            Response::ScanResult {
                epoch,
                watermark,
                entries,
            } => Ok(ScanResult {
                epoch,
                watermark,
                entries,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches merged store metrics for one operator.
    pub fn metrics(&mut self, job: &str, operator: &str) -> Result<MetricsResult> {
        self.metrics_inner(job, operator, false).map(|(m, _)| m)
    }

    /// Fetches merged store metrics plus the server's telemetry-registry
    /// samples (empty when the server was started without telemetry).
    pub fn metrics_with_registry(
        &mut self,
        job: &str,
        operator: &str,
    ) -> Result<(MetricsResult, Vec<MetricSample>)> {
        self.metrics_inner(job, operator, true)
    }

    fn metrics_inner(
        &mut self,
        job: &str,
        operator: &str,
        include_registry: bool,
    ) -> Result<(MetricsResult, Vec<MetricSample>)> {
        let request = Request::Metrics {
            job: job.into(),
            operator: operator.into(),
            include_registry,
        };
        match self.call(&request)? {
            Response::MetricsReport {
                pattern,
                partitions,
                entries,
                watermark,
                metrics,
                registry,
            } => Ok((
                MetricsResult {
                    pattern,
                    partitions,
                    entries,
                    watermark,
                    metrics,
                },
                registry,
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's full metric surface rendered in Prometheus
    /// text exposition format 0.0.4.
    pub fn prometheus(&mut self) -> Result<String> {
        match self.call(&Request::Prometheus)? {
            Response::PrometheusText(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the job's latency-attribution table. With `drain` set the
    /// server empties its span rings, so the next summary covers only
    /// batches traced after this call. All-zero when the job is
    /// untraced.
    pub fn trace_summary(&mut self, drain: bool) -> Result<TraceSummary> {
        match self.call(&Request::TraceSummary { drain })? {
            Response::TraceSummaryReport {
                traces,
                rows,
                total,
            } => Ok(TraceSummary {
                traces,
                rows,
                total,
            }),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> StoreError {
    StoreError::invalid_state(format!("unexpected response type: {resp:?}"))
}
