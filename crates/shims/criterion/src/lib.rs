//! Offline stand-in for the `criterion` crate (see `crates/shims/`).
//!
//! Supports the bench-harness surface `benches/store_micro.rs` uses:
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! `measurement_time` / `sample_size`, `bench_function` with
//! `BenchmarkId`, and `Bencher::{iter, iter_batched}`. Each benchmark
//! runs `sample_size` samples and prints mean wall time per sample; no
//! statistics, plots, or outlier analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Batch handling mode for [`Bencher::iter_batched`]; the stand-in runs
/// one setup per routine invocation regardless of variant.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh setup for every iteration.
    PerIteration,
    /// Small batches (treated as per-iteration here).
    SmallInput,
    /// Large batches (treated as per-iteration here).
    LargeInput,
}

/// A benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label formed from a parameter's display form.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Label formed from a function name plus a parameter.
    pub fn new<P: Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runs measured closures for one benchmark.
pub struct Bencher {
    samples: usize,
    /// Mean measured duration of one sample, filled in by the iter calls.
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` with no per-iteration setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed() / self.samples as u32;
    }

    /// Measures `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total / self.samples as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in is bounded by
    /// `sample_size`, not wall time.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Sets how many samples each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean sample time.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{}: {:>12.3?} per sample ({} samples)",
            self.name, id, b.elapsed, self.sample_size
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// Declares a function that runs each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
