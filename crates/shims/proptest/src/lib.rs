//! Offline stand-in for the `proptest` crate (see `crates/shims/`).
//!
//! Covers the slice of the proptest 1.x API the workspace's tests use:
//! the `proptest!` / `prop_assert*` / `prop_oneof!` macros, `any::<T>()`,
//! integer-range and tuple strategies, `Just`, `prop_map`,
//! `prop::collection::vec`, `prop::sample::Index`, and
//! `ProptestConfig::with_cases`. Generation is deterministic — each test
//! derives its RNG seed from the test's module path and case number —
//! and there is **no shrinking**: a failing case reports its case number
//! and panics with the failed assertion.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// Deterministic RNG handed to strategies during generation.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Builds the RNG for one case of one test, seeded from the
        /// test's identity so runs are reproducible.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64))
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw from a half-open or inclusive integer range.
        pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
            self.0.gen_range(range)
        }
    }

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T: rand::SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+ );)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }

    /// Type-erased strategy: the building block of `prop_oneof!`.
    pub type ErasedStrategy<V> = Arc<dyn Fn(&mut TestRng) -> V>;

    /// Erases a concrete strategy so heterogeneous arms can share a
    /// weighted union.
    pub fn erase<S: Strategy + 'static>(s: S) -> ErasedStrategy<S::Value> {
        Arc::new(move |rng| s.generate(rng))
    }

    /// Weighted choice among erased strategies.
    #[derive(Clone)]
    pub struct Union<V> {
        arms: Vec<(u32, ErasedStrategy<V>)>,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, ErasedStrategy<V>)>) -> Self {
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof!: all weights are zero"
            );
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.gen_range(0u64..total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("prop_oneof!: weight bookkeeping")
        }
    }
}

pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_arbitrary {
        ($(($($s:ident),+);)*) => {$(
            impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($s::arbitrary(rng),)+)
                }
            }
        )*};
    }

    tuple_arbitrary! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
    }

    /// The canonical strategy for an [`Arbitrary`] type.
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`, like `proptest::any`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Size bounds for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection size range is empty");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of values from `elem`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::strategy::TestRng;

    /// A deferred index: drawn unconstrained, projected onto a concrete
    /// collection length later via [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Maps the raw draw onto `0..len`; `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod test_runner {
    pub use super::strategy::TestRng;

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the disk-heavy store
            // property tests quick while still exercising variety.
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure of one test case; bodies may `?`-propagate it.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result alias matching upstream's `TestCaseResult`.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(pat in strategy,
/// ...) { body }` items, each annotated `#[test]` by the caller.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($config:expr)) => {};
    (@cfg($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::strategy::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let mut __run = || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    Ok(())
                };
                if let Err(e) = __run() {
                    panic!("proptest case {} failed: {}", __case, e);
                }
            }
        }
        $crate::__proptest_items! { @cfg($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted (or unweighted) choice among strategies yielding one value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::erase($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Add(u8),
        Clear,
    }

    fn ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![
                3 => (0u8..10).prop_map(Op::Add),
                1 => Just(Op::Clear),
            ],
            0..20,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn ranges_respected(x in 3u64..9, y in -4i64..=4, mut z in 1usize..2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            z += 1;
            prop_assert_eq!(z, 2);
        }

        #[test]
        fn ops_strategy_mixes(v in ops()) {
            for op in &v {
                if let Op::Add(n) = op {
                    prop_assert!(*n < 10);
                }
            }
        }

        #[test]
        fn index_in_bounds(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::strategy::TestRng::for_case("t", 0);
        let mut b = crate::strategy::TestRng::for_case("t", 0);
        let s = ops();
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
