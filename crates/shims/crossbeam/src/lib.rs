//! Offline stand-in for the `crossbeam` crate (see `crates/shims/`).
//!
//! The executor only needs `channel::bounded` with cloneable senders
//! *and* receivers (std's mpsc receiver is single-consumer), `send`,
//! `recv`, and `recv_timeout` with crossbeam's disconnect semantics:
//! a receive on a channel whose senders are all gone drains buffered
//! messages first, then reports `Disconnected`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: usize,
        /// Signalled when the queue gains an item or the senders vanish.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or the receivers vanish.
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`]; carries the unsent
    /// message like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (the channel is MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded MPMC channel holding at most `capacity`
    /// in-flight messages (a capacity of 0 is rounded up to 1).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `msg`. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.shared);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                if st.queue.len() < self.shared.capacity {
                    st.queue.push_back(msg);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .shared
                    .not_full
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking send: enqueues `msg` if there is room right now,
        /// otherwise returns it in the error.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = lock(&self.shared);
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(msg);
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            Err(TrySendError::Full(msg))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared);
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; `Err` once the channel is
        /// empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.shared);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Like [`recv`](Self::recv) but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = lock(&self.shared);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Number of messages currently buffered in the channel.
        ///
        /// A point-in-time reading (the queue may change immediately
        /// after); the executor samples it for queue-depth telemetry.
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// True when no messages are currently buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = lock(&self.shared);
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared);
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn mpmc_roundtrip() {
            let (tx, rx) = bounded::<u64>(4);
            let rx2 = rx.clone();
            let h1 = thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            let h2 = thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            });
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all = h1.join().unwrap();
            all.extend(h2.join().unwrap());
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn timeout_then_disconnect() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn len_tracks_buffered_messages() {
            let (tx, rx) = bounded::<u8>(4);
            assert!(rx.is_empty());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            rx.recv().unwrap();
            assert_eq!(rx.len(), 1);
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
