//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the handful of external APIs it actually uses
//! as minimal in-tree crates (see `crates/shims/`). This one wraps the
//! std locks behind parking_lot's guard-returning `lock()` / `read()` /
//! `write()` signatures. Poisoning is deliberately swallowed
//! (`into_inner`), matching parking_lot's no-poisoning semantics: a
//! panicking reader must not wedge every other thread that shares the
//! lock.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock whose accessors return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}
