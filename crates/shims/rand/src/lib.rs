//! Offline stand-in for the `rand` crate (see `crates/shims/`).
//!
//! Implements the slice of the rand 0.8 API the workspace uses:
//! `rngs::StdRng` + `SeedableRng::seed_from_u64`, and `Rng::{gen_range,
//! gen_bool}` over integer `Range` / `RangeInclusive` bounds. The
//! generator is xoshiro256++ seeded through splitmix64 — deterministic
//! for a given seed, which is all the workload generators rely on (the
//! stream is fixed per seed, not bit-identical to upstream rand).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler; the generic [`SampleRange`] impls key
/// off this so integer-literal bounds unify with the use site's type
/// (e.g. `ts + rng.gen_range(0..100)` infers `i64`), as upstream does.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Bounds usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value in the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing sampling methods, blanket-implemented for any core.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The default seedable generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 never
            // produces four zero words from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = r.gen_range(1u8..=255);
            assert!(w >= 1);
            let u = r.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
