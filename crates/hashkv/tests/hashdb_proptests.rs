//! Property tests for the hash store against a `HashMap` model.
//!
//! Arbitrary interleavings of upserts, deletes, reads, RMWs, and flushes
//! must match the model across in-place updates, log flushes, space-
//! amplification compactions, and crash-recovery replays.

use std::collections::HashMap;

use flowkv_common::scratch::ScratchDir;
use flowkv_hashkv::{HashDb, HashDbConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Upsert { k: u8, v: Vec<u8> },
    Delete { k: u8 },
    Read { k: u8 },
    Rmw { k: u8, extend: u8 },
    Flush,
}

fn key(k: u8) -> Vec<u8> {
    format!("key-{k}").into_bytes()
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let val = prop::collection::vec(any::<u8>(), 0..32);
    prop::collection::vec(
        prop_oneof![
            4 => (0u8..10, val).prop_map(|(k, v)| Op::Upsert { k, v }),
            2 => (0u8..10).prop_map(|k| Op::Delete { k }),
            3 => (0u8..10).prop_map(|k| Op::Read { k }),
            2 => (0u8..10, any::<u8>()).prop_map(|(k, extend)| Op::Rmw { k, extend }),
            1 => Just(Op::Flush),
        ],
        1..200,
    )
}

fn tiny_cfg() -> HashDbConfig {
    HashDbConfig {
        mem_budget: 256,
        max_space_amplification: 1.5,
        min_compact_bytes: 1 << 10,
        initial_index_capacity: 8,
    }
}

fn apply(
    db: &mut HashDb,
    model: &mut HashMap<Vec<u8>, Vec<u8>>,
    op: &Op,
) -> Result<(), TestCaseError> {
    match op {
        Op::Upsert { k, v } => {
            db.upsert(&key(*k), v).unwrap();
            model.insert(key(*k), v.clone());
        }
        Op::Delete { k } => {
            db.delete(&key(*k)).unwrap();
            model.remove(&key(*k));
        }
        Op::Read { k } => {
            let got = db.read(&key(*k)).unwrap();
            prop_assert_eq!(&got, &model.get(&key(*k)).cloned(), "read {}", k);
        }
        Op::Rmw { k, extend } => {
            db.rmw(&key(*k), |cur| {
                let mut v = cur.map(|c| c.to_vec()).unwrap_or_default();
                v.push(*extend);
                v
            })
            .unwrap();
            let entry = model.entry(key(*k)).or_default();
            entry.push(*extend);
        }
        Op::Flush => db.flush().unwrap(),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hashdb_matches_model(ops in ops()) {
        let dir = ScratchDir::new("hash-prop").unwrap();
        let mut db = HashDb::open(dir.path(), tiny_cfg()).unwrap();
        let mut model = HashMap::new();
        for op in &ops {
            apply(&mut db, &mut model, op)?;
        }
        prop_assert_eq!(db.len(), model.len());
        for (k, expect) in &model {
            prop_assert_eq!(&db.read(k).unwrap(), &Some(expect.clone()));
        }
        // Live scan sees exactly the model's keys.
        let mut live = 0;
        db.scan_live(|k, v| {
            assert_eq!(model.get(k).map(|e| e.as_slice()), Some(v));
            live += 1;
        }).unwrap();
        prop_assert_eq!(live, model.len());
    }

    #[test]
    fn reopen_replays_to_model(ops in ops()) {
        let dir = ScratchDir::new("hash-prop-reopen").unwrap();
        let mut model = HashMap::new();
        {
            let mut db = HashDb::open(dir.path(), tiny_cfg()).unwrap();
            for op in &ops {
                apply(&mut db, &mut model, op)?;
            }
            db.flush().unwrap();
        }
        let db = HashDb::open(dir.path(), tiny_cfg()).unwrap();
        prop_assert_eq!(db.len(), model.len());
        for (k, expect) in &model {
            prop_assert_eq!(&db.read(k).unwrap(), &Some(expect.clone()), "after reopen");
        }
    }

    #[test]
    fn checkpoint_restore_matches_model(ops in ops(), cut in any::<prop::sample::Index>()) {
        let dir = ScratchDir::new("hash-prop-ckpt").unwrap();
        let ckpt = ScratchDir::new("hash-prop-ckpt-dst").unwrap();
        let mut db = HashDb::open(dir.path(), tiny_cfg()).unwrap();
        let mut model = HashMap::new();
        let cut = cut.index(ops.len().max(1));
        for op in &ops[..cut] {
            apply(&mut db, &mut model, op)?;
        }
        db.checkpoint(ckpt.path()).unwrap();
        // Post-checkpoint noise: mutations only (reads would assert
        // against the wrong model), all erased by the restore.
        for op in &ops[cut..] {
            match op {
                Op::Upsert { k, v } => db.upsert(&key(*k), v).unwrap(),
                Op::Delete { k } => db.delete(&key(*k)).unwrap(),
                Op::Rmw { k, extend } => db
                    .rmw(&key(*k), |cur| {
                        let mut v = cur.map(|c| c.to_vec()).unwrap_or_default();
                        v.push(*extend);
                        v
                    })
                    .unwrap(),
                Op::Read { .. } | Op::Flush => {}
            }
        }
        db.restore(ckpt.path()).unwrap();
        prop_assert_eq!(db.len(), model.len());
        for (k, expect) in &model {
            prop_assert_eq!(&db.read(k).unwrap(), &Some(expect.clone()), "after restore");
        }
    }
}
