//! The open-addressing hash index mapping key hashes to log addresses.
//!
//! Like FASTER's hash table, the index stores no keys — only 64-bit tags
//! and log addresses. Tag collisions are resolved by the caller reading
//! the candidate record from the log and comparing keys, so the index
//! itself stays compact. Linear probing with power-of-two capacities and
//! resize at 70 % load.

use flowkv_common::hash::hash64;

/// Sentinel meaning an empty slot.
const EMPTY: u64 = 0;
/// Sentinel meaning a deleted slot (probe chains continue through it).
const DELETED: u64 = 1;

#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    /// 2 = occupied; [`EMPTY`] / [`DELETED`] otherwise.
    state: u64,
    tag: u64,
    addr: u64,
}

/// Hash index over log addresses.
#[derive(Debug)]
pub struct HashIndex {
    slots: Vec<Slot>,
    live: usize,
    tombstones: usize,
}

impl HashIndex {
    /// Creates an index with capacity for roughly `expected` keys.
    pub fn with_capacity(expected: usize) -> Self {
        let cap = (expected.max(8) * 2).next_power_of_two();
        HashIndex {
            slots: vec![Slot::default(); cap],
            live: 0,
            tombstones: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>()
    }

    /// Finds the addresses of every entry whose tag matches `key`'s hash.
    ///
    /// The caller disambiguates true matches by reading the records; tag
    /// collisions are rare but possible.
    pub fn candidates(&self, key: &[u8]) -> Candidates<'_> {
        let tag = Self::tag_of(key);
        Candidates {
            index: self,
            tag,
            probe: (tag as usize) & (self.slots.len() - 1),
            steps: 0,
        }
    }

    /// Inserts or updates the entry for `key`.
    ///
    /// `matches(addr)` must return `true` when the record at `addr`
    /// belongs to `key`; it resolves tag collisions against the log.
    pub fn upsert(&mut self, key: &[u8], addr: u64, mut matches: impl FnMut(u64) -> bool) {
        self.maybe_grow();
        let tag = Self::tag_of(key);
        let mask = self.slots.len() - 1;
        let mut probe = (tag as usize) & mask;
        let mut first_free: Option<usize> = None;
        for _ in 0..self.slots.len() {
            let slot = self.slots[probe];
            match slot.state {
                EMPTY => {
                    let target = first_free.unwrap_or(probe);
                    if self.slots[target].state == DELETED {
                        self.tombstones -= 1;
                    }
                    self.slots[target] = Slot {
                        state: 2,
                        tag,
                        addr,
                    };
                    self.live += 1;
                    return;
                }
                DELETED => {
                    if first_free.is_none() {
                        first_free = Some(probe);
                    }
                }
                _ => {
                    if slot.tag == tag && matches(slot.addr) {
                        self.slots[probe].addr = addr;
                        return;
                    }
                }
            }
            probe = (probe + 1) & mask;
        }
        unreachable!("index full despite load-factor resizing");
    }

    /// Removes the entry for `key`, returning its address if present.
    pub fn remove(&mut self, key: &[u8], mut matches: impl FnMut(u64) -> bool) -> Option<u64> {
        let tag = Self::tag_of(key);
        let mask = self.slots.len() - 1;
        let mut probe = (tag as usize) & mask;
        for _ in 0..self.slots.len() {
            let slot = self.slots[probe];
            match slot.state {
                EMPTY => return None,
                DELETED => {}
                _ => {
                    if slot.tag == tag && matches(slot.addr) {
                        self.slots[probe].state = DELETED;
                        self.live -= 1;
                        self.tombstones += 1;
                        return Some(slot.addr);
                    }
                }
            }
            probe = (probe + 1) & mask;
        }
        None
    }

    /// Iterates the addresses of every live entry.
    pub fn iter_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().filter(|s| s.state == 2).map(|s| s.addr)
    }

    /// Clears every entry.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = Slot::default();
        }
        self.live = 0;
        self.tombstones = 0;
    }

    fn tag_of(key: &[u8]) -> u64 {
        // Reserve the sentinel values for slot states.
        hash64(key).max(2)
    }

    fn maybe_grow(&mut self) {
        if (self.live + self.tombstones) * 10 < self.slots.len() * 7 {
            return;
        }
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![Slot::default(); new_cap]);
        self.live = 0;
        self.tombstones = 0;
        let mask = new_cap - 1;
        for slot in old.into_iter().filter(|s| s.state == 2) {
            let mut probe = (slot.tag as usize) & mask;
            loop {
                if self.slots[probe].state == EMPTY {
                    self.slots[probe] = slot;
                    self.live += 1;
                    break;
                }
                probe = (probe + 1) & mask;
            }
        }
    }
}

/// Iterator over the candidate addresses for one key.
pub struct Candidates<'a> {
    index: &'a HashIndex,
    tag: u64,
    probe: usize,
    steps: usize,
}

impl Iterator for Candidates<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let mask = self.index.slots.len() - 1;
        while self.steps < self.index.slots.len() {
            let slot = self.index.slots[self.probe];
            self.probe = (self.probe + 1) & mask;
            self.steps += 1;
            match slot.state {
                EMPTY => return None,
                DELETED => continue,
                _ => {
                    if slot.tag == self.tag {
                        return Some(slot.addr);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup(idx: &HashIndex, key: &[u8], addr_of: impl Fn(u64) -> bool) -> Option<u64> {
        idx.candidates(key).find(|a| addr_of(*a))
    }

    #[test]
    fn insert_and_find() {
        let mut idx = HashIndex::with_capacity(4);
        idx.upsert(b"a", 100, |_| false);
        idx.upsert(b"b", 200, |_| false);
        assert_eq!(lookup(&idx, b"a", |a| a == 100), Some(100));
        assert_eq!(lookup(&idx, b"b", |a| a == 200), Some(200));
        assert_eq!(lookup(&idx, b"c", |_| true), None);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn upsert_updates_existing() {
        let mut idx = HashIndex::with_capacity(4);
        idx.upsert(b"a", 100, |_| false);
        idx.upsert(b"a", 300, |addr| addr == 100);
        assert_eq!(idx.len(), 1);
        assert_eq!(lookup(&idx, b"a", |a| a == 300), Some(300));
    }

    #[test]
    fn remove_then_reinsert() {
        let mut idx = HashIndex::with_capacity(4);
        idx.upsert(b"a", 100, |_| false);
        assert_eq!(idx.remove(b"a", |a| a == 100), Some(100));
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.remove(b"a", |_| true), None);
        idx.upsert(b"a", 500, |_| false);
        assert_eq!(lookup(&idx, b"a", |a| a == 500), Some(500));
    }

    #[test]
    fn grows_under_load() {
        let mut idx = HashIndex::with_capacity(4);
        for i in 0..10_000u64 {
            let key = i.to_le_bytes();
            idx.upsert(&key, i, |_| false);
        }
        assert_eq!(idx.len(), 10_000);
        for i in (0..10_000u64).step_by(97) {
            let key = i.to_le_bytes();
            assert_eq!(lookup(&idx, &key, |a| a == i), Some(i));
        }
    }

    #[test]
    fn iter_addrs_yields_all_live() {
        let mut idx = HashIndex::with_capacity(4);
        for i in 0..100u64 {
            idx.upsert(&i.to_le_bytes(), i, |_| false);
        }
        idx.remove(&5u64.to_le_bytes(), |a| a == 5);
        let mut addrs: Vec<u64> = idx.iter_addrs().collect();
        addrs.sort_unstable();
        assert_eq!(addrs.len(), 99);
        assert!(!addrs.contains(&5));
    }

    #[test]
    fn clear_empties() {
        let mut idx = HashIndex::with_capacity(4);
        idx.upsert(b"a", 1, |_| false);
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(lookup(&idx, b"a", |_| true), None);
    }
}
