//! The hybrid log: an append-only record log whose tail lives in memory.
//!
//! Addresses are logical byte offsets that never change: `[0, disk_len)`
//! is immutable and on disk, `[disk_len, tail)` is the mutable in-memory
//! region. Records in the mutable region may be updated in place (the
//! FASTER fast path); once the region fills, it is flushed and becomes
//! immutable.
//!
//! Record layout: `key_len:u32 val_len:u32 flags:u8 key value`.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use flowkv_common::error::{Result, StoreError};
use flowkv_common::metrics::StoreMetrics;
use flowkv_common::vfs::{StdVfs, Vfs, VfsFile};

/// Size of the fixed record header.
pub const HEADER_LEN: usize = 9;

/// Flag bit marking a tombstone record.
pub const FLAG_TOMBSTONE: u8 = 0x01;

/// A decoded log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// The record's key.
    pub key: Vec<u8>,
    /// The record's value (empty for tombstones).
    pub value: Vec<u8>,
    /// Whether the record deletes its key.
    pub tombstone: bool,
}

impl Record {
    /// Total encoded size of the record.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.key.len() + self.value.len()
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(self.value.len() as u32).to_le_bytes());
        buf.push(if self.tombstone { FLAG_TOMBSTONE } else { 0 });
        buf.extend_from_slice(&self.key);
        buf.extend_from_slice(&self.value);
        buf
    }
}

/// The hybrid log over one file plus an in-memory tail.
pub struct HybridLog {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    /// Bytes of the log persisted on disk.
    disk_len: u64,
    /// The mutable tail region covering `[disk_len, disk_len + mem.len())`.
    mem: Vec<u8>,
    mem_budget: usize,
    metrics: Arc<StoreMetrics>,
    appended_bytes: u64,
}

impl HybridLog {
    /// Creates a fresh log at `path`, truncating any existing file.
    pub fn create(
        path: impl AsRef<Path>,
        mem_budget: usize,
        metrics: Arc<StoreMetrics>,
    ) -> Result<Self> {
        Self::create_in(&StdVfs::shared(), path, mem_budget, metrics)
    }

    /// [`HybridLog::create`] through an explicit [`Vfs`].
    pub fn create_in(
        vfs: &Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        mem_budget: usize,
        metrics: Arc<StoreMetrics>,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = vfs
            .create(&path)
            .map_err(|e| StoreError::io_at("hlog create", &path, e))?;
        Ok(HybridLog {
            file,
            path,
            disk_len: 0,
            mem: Vec::new(),
            mem_budget: mem_budget.max(64),
            metrics,
            appended_bytes: 0,
        })
    }

    /// Opens an existing log file; the whole file is the immutable region.
    ///
    /// A record torn by a crash mid-flush is truncated away: the scan
    /// stops at the first record whose declared length runs past the end
    /// of the file, and the file is cut there.
    pub fn open(
        path: impl AsRef<Path>,
        mem_budget: usize,
        metrics: Arc<StoreMetrics>,
    ) -> Result<Self> {
        Self::open_in(&StdVfs::shared(), path, mem_budget, metrics)
    }

    /// [`HybridLog::open`] through an explicit [`Vfs`].
    pub fn open_in(
        vfs: &Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        mem_budget: usize,
        metrics: Arc<StoreMetrics>,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = vfs
            .open_rw(&path)
            .map_err(|e| StoreError::io_at("hlog open", &path, e))?;
        let file_len = file
            .len()
            .map_err(|e| StoreError::io_at("hlog stat", &path, e))?;
        let disk_len = recover_valid_length(file.as_ref(), file_len)?;
        if disk_len < file_len {
            file.set_len(disk_len)
                .map_err(|e| StoreError::io_at("hlog truncate", &path, e))?;
        }
        Ok(HybridLog {
            file,
            path,
            disk_len,
            mem: Vec::new(),
            mem_budget: mem_budget.max(64),
            metrics,
            appended_bytes: disk_len,
        })
    }

    /// Appends a record, returning its logical address.
    pub fn append(&mut self, record: &Record) -> Result<u64> {
        let addr = self.tail();
        self.mem.extend_from_slice(&record.encode());
        self.appended_bytes += record.encoded_len() as u64;
        if self.mem.len() >= self.mem_budget {
            self.flush()?;
        }
        Ok(addr)
    }

    /// Reads the record at `addr` from memory or disk.
    pub fn read(&self, addr: u64) -> Result<Record> {
        if addr >= self.disk_len {
            let off = (addr - self.disk_len) as usize;
            if off + HEADER_LEN > self.mem.len() {
                return Err(StoreError::corruption(
                    &self.path,
                    addr,
                    "address past tail",
                ));
            }
            let (klen, vlen, flags) = parse_header(&self.mem[off..off + HEADER_LEN]);
            let start = off + HEADER_LEN;
            let end = start + klen + vlen;
            if end > self.mem.len() {
                return Err(StoreError::corruption(&self.path, addr, "truncated record"));
            }
            Ok(Record {
                key: self.mem[start..start + klen].to_vec(),
                value: self.mem[start + klen..end].to_vec(),
                tombstone: flags & FLAG_TOMBSTONE != 0,
            })
        } else {
            let mut header = [0u8; HEADER_LEN];
            self.file
                .read_exact_at(&mut header, addr)
                .map_err(|e| StoreError::io_at("hlog read header", &self.path, e))?;
            let (klen, vlen, flags) = parse_header(&header);
            let mut body = vec![0u8; klen + vlen];
            self.file
                .read_exact_at(&mut body, addr + HEADER_LEN as u64)
                .map_err(|e| StoreError::io_at("hlog read body", &self.path, e))?;
            self.metrics
                .add_bytes_read((HEADER_LEN + klen + vlen) as u64);
            let value = body.split_off(klen);
            Ok(Record {
                key: body,
                value,
                tombstone: flags & FLAG_TOMBSTONE != 0,
            })
        }
    }

    /// Attempts an in-place value update of the record at `addr`.
    ///
    /// Succeeds only when the record is still in the mutable in-memory
    /// region and the new value has the same length — the FASTER in-place
    /// update fast path. Returns `true` on success.
    pub fn try_update_in_place(&mut self, addr: u64, new_value: &[u8]) -> Result<bool> {
        if addr < self.disk_len {
            return Ok(false);
        }
        let off = (addr - self.disk_len) as usize;
        let (klen, vlen, flags) = parse_header(&self.mem[off..off + HEADER_LEN]);
        if vlen != new_value.len() || flags & FLAG_TOMBSTONE != 0 {
            return Ok(false);
        }
        let start = off + HEADER_LEN + klen;
        self.mem[start..start + vlen].copy_from_slice(new_value);
        Ok(true)
    }

    /// Flushes the mutable region to disk, making it immutable.
    pub fn flush(&mut self) -> Result<()> {
        if self.mem.is_empty() {
            return Ok(());
        }
        self.file
            .write_all_at(&self.mem, self.disk_len)
            .map_err(|e| StoreError::io_at("hlog flush", &self.path, e))?;
        self.metrics.add_bytes_written(self.mem.len() as u64);
        self.disk_len += self.mem.len() as u64;
        self.mem.clear();
        Ok(())
    }

    /// Address one past the last record.
    pub fn tail(&self) -> u64 {
        self.disk_len + self.mem.len() as u64
    }

    /// Bytes held in the mutable in-memory region.
    pub fn memory_bytes(&self) -> usize {
        self.mem.len()
    }

    /// Cumulative bytes ever appended to the log (monotonic), used to
    /// measure write amplification.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Sequentially scans every record, calling `f(addr, record)`.
    pub fn scan(&self, mut f: impl FnMut(u64, Record)) -> Result<()> {
        let mut addr = 0u64;
        let tail = self.tail();
        while addr < tail {
            let record = self.read(addr)?;
            let len = record.encoded_len() as u64;
            f(addr, record);
            addr += len;
        }
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Fsyncs the log file.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| StoreError::io_at("hlog sync", &self.path, e))
    }
}

/// Walks records from the start of `file`, returning the length of the
/// longest prefix of fully intact records.
fn recover_valid_length(file: &dyn VfsFile, file_len: u64) -> Result<u64> {
    let mut addr = 0u64;
    let mut header = [0u8; HEADER_LEN];
    loop {
        if addr + HEADER_LEN as u64 > file_len {
            return Ok(addr);
        }
        file.read_exact_at(&mut header, addr)
            .map_err(|e| StoreError::io("hlog recover", e))?;
        let (klen, vlen, _) = parse_header(&header);
        let end = addr + (HEADER_LEN + klen + vlen) as u64;
        if end > file_len {
            return Ok(addr);
        }
        addr = end;
    }
}

fn parse_header(h: &[u8]) -> (usize, usize, u8) {
    let klen = u32::from_le_bytes(h[..4].try_into().expect("fixed")) as usize;
    let vlen = u32::from_le_bytes(h[4..8].try_into().expect("fixed")) as usize;
    (klen, vlen, h[8])
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::scratch::ScratchDir;

    fn rec(k: &str, v: &str) -> Record {
        Record {
            key: k.as_bytes().to_vec(),
            value: v.as_bytes().to_vec(),
            tombstone: false,
        }
    }

    fn new_log(dir: &Path, budget: usize) -> HybridLog {
        HybridLog::create(dir.join("h.log"), budget, StoreMetrics::new_shared()).unwrap()
    }

    #[test]
    fn append_read_in_memory() {
        let dir = ScratchDir::new("hlog-mem").unwrap();
        let mut log = new_log(dir.path(), 1 << 20);
        let a = log.append(&rec("k1", "v1")).unwrap();
        let b = log.append(&rec("k2", "v2")).unwrap();
        assert_eq!(log.read(a).unwrap(), rec("k1", "v1"));
        assert_eq!(log.read(b).unwrap(), rec("k2", "v2"));
        assert!(log.memory_bytes() > 0);
    }

    #[test]
    fn read_spans_flush_boundary() {
        let dir = ScratchDir::new("hlog-flush").unwrap();
        let mut log = new_log(dir.path(), 1 << 20);
        let a = log.append(&rec("k1", "v1")).unwrap();
        log.flush().unwrap();
        let b = log.append(&rec("k2", "v2")).unwrap();
        assert_eq!(log.read(a).unwrap(), rec("k1", "v1"));
        assert_eq!(log.read(b).unwrap(), rec("k2", "v2"));
        assert_eq!(log.memory_bytes(), rec("k2", "v2").encoded_len());
    }

    #[test]
    fn auto_flush_on_budget() {
        let dir = ScratchDir::new("hlog-auto").unwrap();
        let mut log = new_log(dir.path(), 64);
        for i in 0..20 {
            log.append(&rec(&format!("key{i}"), "some-value")).unwrap();
        }
        assert!(log.memory_bytes() < 64 + 64);
        // Everything must still be readable.
        let mut n = 0;
        log.scan(|_, _| n += 1).unwrap();
        assert_eq!(n, 20);
    }

    #[test]
    fn in_place_update_only_in_mutable_same_size() {
        let dir = ScratchDir::new("hlog-inplace").unwrap();
        let mut log = new_log(dir.path(), 1 << 20);
        let a = log.append(&rec("k", "aaaa")).unwrap();
        assert!(log.try_update_in_place(a, b"bbbb").unwrap());
        assert_eq!(log.read(a).unwrap().value, b"bbbb");
        // Different size fails.
        assert!(!log.try_update_in_place(a, b"ccc").unwrap());
        // After flush the record is immutable.
        log.flush().unwrap();
        assert!(!log.try_update_in_place(a, b"dddd").unwrap());
    }

    #[test]
    fn scan_visits_in_order() {
        let dir = ScratchDir::new("hlog-scan").unwrap();
        let mut log = new_log(dir.path(), 128);
        let mut addrs = Vec::new();
        for i in 0..10 {
            addrs.push(log.append(&rec(&format!("k{i}"), "v")).unwrap());
        }
        let mut seen = Vec::new();
        log.scan(|addr, r| seen.push((addr, r.key))).unwrap();
        assert_eq!(seen.len(), 10);
        for (i, (addr, key)) in seen.iter().enumerate() {
            assert_eq!(*addr, addrs[i]);
            assert_eq!(key, format!("k{i}").as_bytes());
        }
    }

    #[test]
    fn reopen_treats_file_as_immutable() {
        let dir = ScratchDir::new("hlog-reopen").unwrap();
        let path = dir.path().join("h.log");
        {
            let mut log = HybridLog::create(&path, 1 << 20, StoreMetrics::new_shared()).unwrap();
            log.append(&rec("k", "v")).unwrap();
            log.flush().unwrap();
            log.sync().unwrap();
        }
        let log = HybridLog::open(&path, 1 << 20, StoreMetrics::new_shared()).unwrap();
        assert_eq!(log.read(0).unwrap(), rec("k", "v"));
        assert_eq!(log.memory_bytes(), 0);
    }

    #[test]
    fn tombstone_flag_roundtrips() {
        let dir = ScratchDir::new("hlog-tomb").unwrap();
        let mut log = new_log(dir.path(), 1 << 20);
        let t = Record {
            key: b"k".to_vec(),
            value: Vec::new(),
            tombstone: true,
        };
        let a = log.append(&t).unwrap();
        assert!(log.read(a).unwrap().tombstone);
    }
}
