//! A hash key-value store: the FASTER-analog baseline.
//!
//! The FlowKV paper evaluates Flink on Microsoft FASTER as the
//! representative *non-sorted* persistent KV store (§2.2). This crate
//! reproduces the properties that drive FASTER's behaviour under
//! streaming state:
//!
//! - an **open-addressing hash index** mapping key hashes to log
//!   addresses ([`index`]) — O(1) point access, the reason FASTER wins on
//!   read-modify-write workloads;
//! - a **hybrid log** with a mutable in-memory tail and an immutable
//!   on-disk body ([`hlog`]), supporting in-place updates of records
//!   still in the tail;
//! - **epoch-style synchronization** executed on every operation
//!   ([`epoch`]) — the coordination cost the paper calls out as
//!   unnecessary for single-threaded stream workers;
//! - a [`db::HashDb`] façade and a [`backend::HashBackend`] adapter. The
//!   adapter stores the *entire* value list of a `(window, key)` pair in
//!   one record, so every `Append()` re-reads and re-writes the whole
//!   list — the I/O amplification that makes Flink-on-Faster fail the
//!   paper's append workloads (Figure 4, Figure 8 crossed bars).

pub mod backend;
pub mod db;
pub mod epoch;
pub mod hlog;
pub mod index;

pub use backend::{HashBackend, HashBackendFactory};
pub use db::{HashDb, HashDbConfig};
