//! The window-state adapter over the hash store.
//!
//! Faster exposes no merge operator and no range scans, so the glue code
//! (which the paper's authors had to write themselves, §6) must:
//!
//! - store the **entire value list** of a `(window, key)` pair as one
//!   record — every `Append()` therefore reads the list, deserializes it,
//!   appends, and rewrites the whole record. This is the read/write
//!   amplification that makes Flink-on-Faster time out on append-pattern
//!   queries (Figure 4);
//! - maintain a **key registry per window** so `GetWindow` can enumerate
//!   keys despite the store being point-access only.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

use flowkv_common::backend::{
    AggregateKind, KeyFilter, OperatorContext, StateBackend, StateBackendFactory, StateEntry,
    WindowChunk,
};
use flowkv_common::codec::{put_len_prefixed, Decoder};
use flowkv_common::error::{Result, StoreError};
use flowkv_common::metrics::{OpCategory, StoreMetrics};
use flowkv_common::types::{Timestamp, WindowId};
use flowkv_common::vfs::{StdVfs, Vfs};

use crate::db::{HashDb, HashDbConfig};

/// Builds the composite key `window ‖ user-key`.
fn composite_key(key: &[u8], window: WindowId) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + key.len());
    out.extend_from_slice(&window.to_ordered_bytes());
    out.extend_from_slice(key);
    out
}

/// Serializes a list of values into one record payload.
fn encode_list_into(buf: &mut Vec<u8>, values: &[Vec<u8>]) {
    buf.clear();
    for v in values {
        put_len_prefixed(buf, v);
    }
}

/// Parses a record payload back into a list of values.
fn decode_list(data: &[u8]) -> Result<Vec<Vec<u8>>> {
    let mut dec = Decoder::new(data);
    let mut out = Vec::new();
    while !dec.is_empty() {
        out.push(dec.get_len_prefixed()?.to_vec());
    }
    Ok(out)
}

/// Window-state backend over [`HashDb`].
pub struct HashBackend {
    db: HashDb,
    /// Keys appended per window, required because the store cannot scan.
    window_keys: HashMap<WindowId, HashSet<Vec<u8>>>,
    /// Drain state for chunked window reads.
    draining: HashMap<WindowId, Vec<Vec<u8>>>,
    chunk_entries: usize,
    /// Reusable scratch for re-encoding value lists on append, so the
    /// read-modify-write hot path allocates no per-record `Vec<u8>`.
    encode_buf: Vec<u8>,
}

impl HashBackend {
    /// Opens a backend over a store in `dir`.
    pub fn open(dir: &Path, cfg: HashDbConfig, chunk_entries: usize) -> Result<Self> {
        Self::open_with_vfs(dir, cfg, chunk_entries, StdVfs::shared())
    }

    /// Opens a backend performing all file IO through `vfs`.
    pub fn open_with_vfs(
        dir: &Path,
        cfg: HashDbConfig,
        chunk_entries: usize,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        let mut backend = HashBackend {
            db: HashDb::open_with_vfs(
                dir,
                cfg,
                flowkv_common::metrics::StoreMetrics::new_shared(),
                vfs,
            )?,
            window_keys: HashMap::new(),
            draining: HashMap::new(),
            chunk_entries: chunk_entries.max(1),
            encode_buf: Vec::new(),
        };
        backend.rebuild_registry()?;
        Ok(backend)
    }

    /// Rebuilds the per-window key registry from live records.
    fn rebuild_registry(&mut self) -> Result<()> {
        self.window_keys.clear();
        self.draining.clear();
        let mut pairs: Vec<(WindowId, Vec<u8>)> = Vec::new();
        self.db.scan_live(|composite, _| {
            if composite.len() >= 16 {
                if let Ok(window) = WindowId::from_ordered_bytes(&composite[..16]) {
                    pairs.push((window, composite[16..].to_vec()));
                }
            }
        })?;
        for (window, key) in pairs {
            self.window_keys.entry(window).or_default().insert(key);
        }
        Ok(())
    }
}

impl StateBackend for HashBackend {
    fn append(&mut self, key: &[u8], window: WindowId, value: &[u8], _ts: Timestamp) -> Result<()> {
        let _t = self.db.metrics().timer(OpCategory::Write);
        let composite = composite_key(key, window);
        // The amplification at the heart of the paper's Faster analysis:
        // read the whole list, extend it, and write the whole list back.
        let mut values = match self.db.read(&composite)? {
            Some(raw) => decode_list(&raw)?,
            None => Vec::new(),
        };
        values.push(value.to_vec());
        encode_list_into(&mut self.encode_buf, &values);
        self.db.upsert(&composite, &self.encode_buf)?;
        self.window_keys
            .entry(window)
            .or_default()
            .insert(key.to_vec());
        Ok(())
    }

    fn get_window_chunk(&mut self, window: WindowId) -> Result<Option<WindowChunk>> {
        let _t = self.db.metrics().timer(OpCategory::Read);
        let pending = match self.draining.get_mut(&window) {
            Some(p) => p,
            None => {
                let Some(keys) = self.window_keys.remove(&window) else {
                    return Ok(None);
                };
                self.draining
                    .entry(window)
                    .or_insert_with(|| keys.into_iter().collect())
            }
        };
        if pending.is_empty() {
            self.draining.remove(&window);
            return Ok(None);
        }
        let take = pending.len().min(self.chunk_entries);
        let batch: Vec<Vec<u8>> = pending.drain(..take).collect();
        if pending.is_empty() {
            self.draining.remove(&window);
        }
        let mut chunk: WindowChunk = Vec::with_capacity(batch.len());
        for key in batch {
            let composite = composite_key(&key, window);
            let values = match self.db.read(&composite)? {
                Some(raw) => decode_list(&raw)?,
                None => Vec::new(),
            };
            self.db.delete(&composite)?;
            chunk.push((key, values));
        }
        if chunk.is_empty() {
            Ok(None)
        } else {
            Ok(Some(chunk))
        }
    }

    fn take_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        let _t = self.db.metrics().timer(OpCategory::Read);
        let composite = composite_key(key, window);
        let values = match self.db.read(&composite)? {
            Some(raw) => {
                self.db.delete(&composite)?;
                decode_list(&raw)?
            }
            None => Vec::new(),
        };
        if let Some(keys) = self.window_keys.get_mut(&window) {
            keys.remove(key);
            if keys.is_empty() {
                self.window_keys.remove(&window);
            }
        }
        Ok(values)
    }

    fn peek_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        let _t = self.db.metrics().timer(OpCategory::Read);
        match self.db.read(&composite_key(key, window))? {
            Some(raw) => decode_list(&raw),
            None => Ok(Vec::new()),
        }
    }

    fn take_aggregate(&mut self, key: &[u8], window: WindowId) -> Result<Option<Vec<u8>>> {
        let _t = self.db.metrics().timer(OpCategory::Read);
        let composite = composite_key(key, window);
        match self.db.read(&composite)? {
            Some(v) => {
                self.db.delete(&composite)?;
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    fn put_aggregate(&mut self, key: &[u8], window: WindowId, aggregate: &[u8]) -> Result<()> {
        let _t = self.db.metrics().timer(OpCategory::Write);
        self.db.upsert(&composite_key(key, window), aggregate)
    }

    fn flush(&mut self) -> Result<()> {
        self.db.flush()
    }

    fn extract_range(
        &mut self,
        in_range: KeyFilter<'_>,
        kind: AggregateKind,
    ) -> Result<Vec<StateEntry>> {
        // The store is point-access only, so records carry raw payloads
        // with nothing to tell an encoded value list from an opaque
        // aggregate; `kind` decides, exactly as the engine decides which
        // API to call on this backend.
        let mut raw: Vec<(Vec<u8>, WindowId, Vec<u8>)> = Vec::new();
        self.db.scan_live(|composite, value| {
            if composite.len() >= 16 {
                if let Ok(window) = WindowId::from_ordered_bytes(&composite[..16]) {
                    raw.push((composite[16..].to_vec(), window, value.to_vec()));
                }
            }
        })?;
        let mut entries = Vec::new();
        for (key, window, payload) in raw {
            if !in_range(&key) {
                continue;
            }
            entries.push(match kind {
                AggregateKind::FullList => StateEntry::Values {
                    values: decode_list(&payload)?,
                    key,
                    window,
                },
                AggregateKind::Incremental => StateEntry::Aggregate {
                    key,
                    window,
                    value: payload,
                },
            });
        }
        Ok(entries)
    }

    fn metrics(&self) -> Arc<StoreMetrics> {
        self.db.metrics()
    }

    fn memory_bytes(&self) -> usize {
        let registry: usize = self
            .window_keys
            .values()
            .map(|ks| ks.iter().map(|k| k.len() + 48).sum::<usize>())
            .sum();
        self.db.memory_bytes() + registry
    }

    fn checkpoint(&mut self, dir: &Path) -> Result<()> {
        self.db.checkpoint(dir)
    }

    fn restore(&mut self, dir: &Path) -> Result<()> {
        self.db.restore(dir)?;
        self.rebuild_registry()
    }

    fn close(&mut self) -> Result<()> {
        self.window_keys.clear();
        self.draining.clear();
        self.db.destroy()
    }
}

/// Factory producing [`HashBackend`] instances for operator partitions.
pub struct HashBackendFactory {
    cfg: HashDbConfig,
    chunk_entries: usize,
    vfs: Arc<dyn Vfs>,
}

impl HashBackendFactory {
    /// Creates a factory with the given store configuration.
    pub fn new(cfg: HashDbConfig) -> Self {
        HashBackendFactory {
            cfg,
            chunk_entries: 1024,
            vfs: StdVfs::shared(),
        }
    }

    /// Overrides the number of keys per window chunk.
    pub fn with_chunk_entries(mut self, n: usize) -> Self {
        self.chunk_entries = n.max(1);
        self
    }

    /// Routes the file IO of every store this factory creates through
    /// `vfs` (fault injection in tests; [`StdVfs`] by default).
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }
}

impl StateBackendFactory for HashBackendFactory {
    fn create(&self, ctx: &OperatorContext) -> Result<Box<dyn StateBackend>> {
        let dir = ctx.partition_dir();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io_at("backend dir", &dir, e))?;
        Ok(Box::new(HashBackend::open_with_vfs(
            &dir,
            self.cfg.clone(),
            self.chunk_entries,
            Arc::clone(&self.vfs),
        )?))
    }

    fn name(&self) -> &'static str {
        "hashkv"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::scratch::ScratchDir;

    fn backend(dir: &Path) -> HashBackend {
        HashBackend::open(dir, HashDbConfig::small_for_tests(), 4).unwrap()
    }

    fn w(start: i64, end: i64) -> WindowId {
        WindowId::new(start, end)
    }

    #[test]
    fn append_take_roundtrip() {
        let dir = ScratchDir::new("hb-append").unwrap();
        let mut b = backend(dir.path());
        let win = w(0, 100);
        b.append(b"k", win, b"v1", 1).unwrap();
        b.append(b"k", win, b"v2", 2).unwrap();
        assert_eq!(
            b.take_values(b"k", win).unwrap(),
            vec![b"v1".to_vec(), b"v2".to_vec()]
        );
        assert!(b.take_values(b"k", win).unwrap().is_empty());
    }

    #[test]
    fn append_amplification_is_real() {
        // Every append rewrites the whole list, so the log grows
        // quadratically with the number of appended values.
        let dir = ScratchDir::new("hb-amp").unwrap();
        let mut b = backend(dir.path());
        let win = w(0, 100);
        for i in 0..50u32 {
            b.append(b"k", win, &[0u8; 32], i as i64).unwrap();
        }
        // 50 appends of 32 bytes is 1600 payload bytes; the rewrite
        // pattern must have moved far more than that through the store.
        let quadratic_floor: u64 = (1..=50u64).map(|n| n * 33).sum();
        assert!(
            b.db.appended_bytes() > quadratic_floor,
            "appended bytes {} vs expected quadratic blowup {}",
            b.db.appended_bytes(),
            quadratic_floor
        );
    }

    #[test]
    fn window_chunks_drain_all_keys() {
        let dir = ScratchDir::new("hb-chunks").unwrap();
        let mut b = backend(dir.path());
        let win = w(0, 1000);
        for i in 0..10u32 {
            b.append(format!("key-{i}").as_bytes(), win, b"v", i as i64)
                .unwrap();
        }
        let mut seen = Vec::new();
        while let Some(chunk) = b.get_window_chunk(win).unwrap() {
            assert!(chunk.len() <= 4);
            for (k, vs) in chunk {
                assert_eq!(vs, vec![b"v".to_vec()]);
                seen.push(k);
            }
        }
        assert_eq!(seen.len(), 10);
        // Drained: nothing remains.
        assert!(b.get_window_chunk(win).unwrap().is_none());
    }

    #[test]
    fn aggregates_roundtrip() {
        let dir = ScratchDir::new("hb-agg").unwrap();
        let mut b = backend(dir.path());
        let win = w(0, 100);
        b.put_aggregate(b"k", win, b"10").unwrap();
        b.put_aggregate(b"k", win, b"20").unwrap();
        assert_eq!(b.take_aggregate(b"k", win).unwrap(), Some(b"20".to_vec()));
        assert_eq!(b.take_aggregate(b"k", win).unwrap(), None);
    }

    #[test]
    fn checkpoint_restore_rebuilds_registry() {
        let dir = ScratchDir::new("hb-ckpt").unwrap();
        let ckpt = ScratchDir::new("hb-ckpt-dst").unwrap();
        let mut b = backend(dir.path());
        let win = w(0, 100);
        b.append(b"k1", win, b"v", 1).unwrap();
        b.append(b"k2", win, b"v", 2).unwrap();
        b.checkpoint(ckpt.path()).unwrap();
        b.append(b"k3", win, b"v", 3).unwrap();
        b.restore(ckpt.path()).unwrap();
        let mut keys = Vec::new();
        while let Some(chunk) = b.get_window_chunk(win).unwrap() {
            keys.extend(chunk.into_iter().map(|(k, _)| k));
        }
        keys.sort();
        assert_eq!(keys, vec![b"k1".to_vec(), b"k2".to_vec()]);
    }
}
