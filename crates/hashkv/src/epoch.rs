//! Epoch-style synchronization, executed on every store operation.
//!
//! FASTER protects its lock-free structures with epoch-based memory
//! reclamation: threads stamp a shared epoch on entry and re-validate on
//! exit. That machinery is pure overhead for a stream worker that owns
//! its store exclusively — one of the paper's key observations about why
//! Faster underperforms on SPE state (§2.2, §6.3). We reproduce the cost
//! faithfully: every operation acquires an epoch guard that performs the
//! same atomic read-modify-writes and fences a concurrent deployment
//! would need, even though this store is only ever used single-threaded.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared epoch counter protecting a store instance.
#[derive(Debug)]
pub struct EpochTable {
    current: AtomicU64,
    /// Slot emulating the per-thread epoch publication of FASTER.
    local: AtomicU64,
    entries: AtomicU64,
}

impl EpochTable {
    /// Creates a fresh epoch table.
    pub fn new() -> Arc<Self> {
        Arc::new(EpochTable {
            current: AtomicU64::new(1),
            local: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        })
    }

    /// Enters a protected region, returning a guard that exits on drop.
    pub fn protect(self: &Arc<Self>) -> EpochGuard {
        // Publish the observed epoch with sequentially consistent
        // ordering, as FASTER's Epoch::Protect does.
        let observed = self.current.load(Ordering::SeqCst);
        self.local.store(observed, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        self.entries.fetch_add(1, Ordering::SeqCst);
        EpochGuard {
            table: Arc::clone(self),
        }
    }

    /// Advances the global epoch (called by structural operations such as
    /// log flushes and compactions).
    pub fn bump(&self) -> u64 {
        self.current.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Number of protected entries executed so far.
    pub fn entry_count(&self) -> u64 {
        self.entries.load(Ordering::SeqCst)
    }

    /// The current global epoch.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::SeqCst)
    }
}

/// Guard marking one protected operation.
pub struct EpochGuard {
    table: Arc<EpochTable>,
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        // Withdraw the published epoch, again with full ordering.
        fence(Ordering::SeqCst);
        self.table.local.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_counted() {
        let t = EpochTable::new();
        {
            let _g = t.protect();
            let _g2 = t.protect();
        }
        assert_eq!(t.entry_count(), 2);
    }

    #[test]
    fn bump_advances() {
        let t = EpochTable::new();
        let before = t.current();
        assert_eq!(t.bump(), before + 1);
        assert_eq!(t.current(), before + 1);
    }
}
