//! The hash store façade: point reads, upserts, and log compaction.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use flowkv_common::error::{Result, StoreError};
use flowkv_common::metrics::{OpCategory, StoreMetrics};
use flowkv_common::vfs::{StdVfs, Vfs};

use crate::epoch::EpochTable;
use crate::hlog::{HybridLog, Record};
use crate::index::HashIndex;

/// Name of the log file inside a store directory.
const LOG_NAME: &str = "hybrid.log";

/// Tuning knobs of the hash store.
#[derive(Clone, Debug)]
pub struct HashDbConfig {
    /// Size of the mutable in-memory log region.
    pub mem_budget: usize,
    /// Compact when `log_bytes / live_bytes` exceeds this factor.
    pub max_space_amplification: f64,
    /// Do not compact logs smaller than this.
    pub min_compact_bytes: u64,
    /// Initial hash-index capacity.
    pub initial_index_capacity: usize,
}

impl Default for HashDbConfig {
    fn default() -> Self {
        HashDbConfig {
            mem_budget: 4 << 20,
            max_space_amplification: 2.0,
            min_compact_bytes: 8 << 20,
            initial_index_capacity: 1 << 16,
        }
    }
}

impl HashDbConfig {
    /// A configuration scaled down for unit tests.
    pub fn small_for_tests() -> Self {
        HashDbConfig {
            mem_budget: 8 << 10,
            max_space_amplification: 2.0,
            min_compact_bytes: 16 << 10,
            initial_index_capacity: 64,
        }
    }
}

/// A FASTER-style hash key-value store over one directory.
///
/// # Examples
///
/// ```
/// use flowkv_hashkv::{HashDb, HashDbConfig};
/// use flowkv_common::scratch::ScratchDir;
///
/// let dir = ScratchDir::new("hashdb-doc").unwrap();
/// let mut db = HashDb::open(dir.path(), HashDbConfig::default()).unwrap();
/// db.upsert(b"k", b"v").unwrap();
/// assert_eq!(db.read(b"k").unwrap(), Some(b"v".to_vec()));
/// ```
pub struct HashDb {
    dir: PathBuf,
    cfg: HashDbConfig,
    log: HybridLog,
    index: HashIndex,
    epoch: Arc<EpochTable>,
    metrics: Arc<StoreMetrics>,
    live_bytes: u64,
    appended_total: u64,
    vfs: Arc<dyn Vfs>,
}

impl HashDb {
    /// Opens (or creates) a store in `dir`.
    pub fn open(dir: impl AsRef<Path>, cfg: HashDbConfig) -> Result<Self> {
        Self::open_with_metrics(dir, cfg, StoreMetrics::new_shared())
    }

    /// Opens a store charging its work to an external metrics block.
    pub fn open_with_metrics(
        dir: impl AsRef<Path>,
        cfg: HashDbConfig,
        metrics: Arc<StoreMetrics>,
    ) -> Result<Self> {
        Self::open_with_vfs(dir, cfg, metrics, StdVfs::shared())
    }

    /// Opens a store performing all file IO through `vfs`.
    pub fn open_with_vfs(
        dir: impl AsRef<Path>,
        cfg: HashDbConfig,
        metrics: Arc<StoreMetrics>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)
            .map_err(|e| StoreError::io_at("hashdb dir", &dir, e))?;
        let log_path = dir.join(LOG_NAME);
        let log = if vfs.exists(&log_path) {
            HybridLog::open_in(&vfs, &log_path, cfg.mem_budget, Arc::clone(&metrics))?
        } else {
            HybridLog::create_in(&vfs, &log_path, cfg.mem_budget, Arc::clone(&metrics))?
        };
        let mut db = HashDb {
            dir,
            index: HashIndex::with_capacity(cfg.initial_index_capacity),
            cfg,
            log,
            epoch: EpochTable::new(),
            metrics,
            live_bytes: 0,
            appended_total: 0,
            vfs,
        };
        db.rebuild_index()?;
        Ok(db)
    }

    /// Reads the current value of `key`.
    pub fn read(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let _guard = self.epoch.protect();
        match self.find(key)? {
            Some((_, record)) => Ok(Some(record.value)),
            None => Ok(None),
        }
    }

    /// Writes `value` for `key`, replacing any existing value.
    pub fn upsert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let _guard = self.epoch.protect();
        let existing = self.find(key)?;
        if let Some((addr, old)) = &existing {
            // The FASTER fast path: mutate the record in the mutable
            // region when sizes match.
            if self.log.try_update_in_place(*addr, value)? {
                return Ok(());
            }
            self.live_bytes = self.live_bytes.saturating_sub(old.encoded_len() as u64);
        }
        let record = Record {
            key: key.to_vec(),
            value: value.to_vec(),
            tombstone: false,
        };
        let addr = self.log.append(&record)?;
        self.appended_total += record.encoded_len() as u64;
        self.live_bytes += record.encoded_len() as u64;
        let log = &self.log;
        self.index.upsert(key, addr, |candidate| {
            log.read(candidate).map(|r| r.key == key).unwrap_or(false)
        });
        self.maybe_compact()
    }

    /// Deletes `key` if present.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        let _guard = self.epoch.protect();
        let log = &self.log;
        let removed = self.index.remove(key, |candidate| {
            log.read(candidate).map(|r| r.key == key).unwrap_or(false)
        });
        if let Some(addr) = removed {
            let old = self.log.read(addr)?;
            self.live_bytes = self.live_bytes.saturating_sub(old.encoded_len() as u64);
            // Tombstones keep crash-recovery replay correct.
            let tombstone = Record {
                key: key.to_vec(),
                value: Vec::new(),
                tombstone: true,
            };
            self.appended_total += tombstone.encoded_len() as u64;
            self.log.append(&tombstone)?;
            self.maybe_compact()?;
        }
        Ok(())
    }

    /// Reads, transforms, and writes back the value of `key` in one call.
    pub fn rmw(&mut self, key: &[u8], f: impl FnOnce(Option<&[u8]>) -> Vec<u8>) -> Result<()> {
        let current = self.read(key)?;
        let next = f(current.as_deref());
        self.upsert(key, &next)
    }

    /// Visits every live `(key, value)` pair in unspecified order.
    pub fn scan_live(&self, mut f: impl FnMut(&[u8], &[u8])) -> Result<()> {
        let _guard = self.epoch.protect();
        for addr in self.index.iter_addrs() {
            let record = self.log.read(addr)?;
            f(&record.key, &record.value);
        }
        Ok(())
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Flushes the mutable log region to disk.
    pub fn flush(&mut self) -> Result<()> {
        self.log.flush()
    }

    /// The metrics block charged by this store.
    pub fn metrics(&self) -> Arc<StoreMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The epoch table, exposed for overhead accounting in benchmarks.
    pub fn epoch(&self) -> Arc<EpochTable> {
        Arc::clone(&self.epoch)
    }

    /// Approximate bytes of state held in memory.
    pub fn memory_bytes(&self) -> usize {
        self.log.memory_bytes() + self.index.memory_bytes()
    }

    /// Bytes in the log (live + dead).
    pub fn log_bytes(&self) -> u64 {
        self.log.tail()
    }

    /// Cumulative bytes ever appended by user operations (monotonic
    /// across compactions), used to measure write amplification.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_total
    }

    /// Bytes occupied by live records.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Copies a consistent snapshot of the store into `dst`.
    pub fn checkpoint(&mut self, dst: &Path) -> Result<()> {
        self.log.flush()?;
        self.log.sync()?;
        self.vfs
            .create_dir_all(dst)
            .map_err(|e| StoreError::io_at("checkpoint dir", dst, e))?;
        let to = dst.join(LOG_NAME);
        self.vfs
            .copy(self.log.path(), &to)
            .map_err(|e| StoreError::io_at("checkpoint copy", &to, e))?;
        Ok(())
    }

    /// Replaces the store contents with the snapshot in `src`.
    pub fn restore(&mut self, src: &Path) -> Result<()> {
        let from = src.join(LOG_NAME);
        let to = self.dir.join(LOG_NAME);
        self.vfs
            .copy(&from, &to)
            .map_err(|e| StoreError::io_at("restore copy", &from, e))?;
        self.log = HybridLog::open_in(
            &self.vfs,
            &to,
            self.cfg.mem_budget,
            Arc::clone(&self.metrics),
        )?;
        self.rebuild_index()?;
        Ok(())
    }

    /// Deletes every file of the store.
    pub fn destroy(&mut self) -> Result<()> {
        self.index.clear();
        self.live_bytes = 0;
        let _ = self.vfs.remove_file(&self.dir.join(LOG_NAME));
        self.log = HybridLog::create_in(
            &self.vfs,
            self.dir.join(LOG_NAME),
            self.cfg.mem_budget,
            Arc::clone(&self.metrics),
        )?;
        let _ = self.vfs.remove_file(&self.dir.join(LOG_NAME));
        Ok(())
    }

    /// Finds the live record for `key`, resolving tag collisions.
    fn find(&self, key: &[u8]) -> Result<Option<(u64, Record)>> {
        for addr in self.index.candidates(key) {
            let record = self.log.read(addr)?;
            if record.key == key && !record.tombstone {
                return Ok(Some((addr, record)));
            }
        }
        Ok(None)
    }

    /// Rebuilds the index by replaying the log oldest-to-newest.
    fn rebuild_index(&mut self) -> Result<()> {
        self.index.clear();
        self.live_bytes = 0;
        let mut entries: Vec<(u64, Vec<u8>, bool, u64)> = Vec::new();
        self.log.scan(|addr, record| {
            entries.push((
                addr,
                record.key.clone(),
                record.tombstone,
                record.encoded_len() as u64,
            ));
        })?;
        for (addr, key, tombstone, len) in entries {
            let log = &self.log;
            if tombstone {
                if let Some(old) = self.index.remove(&key, |candidate| {
                    log.read(candidate).map(|r| r.key == key).unwrap_or(false)
                }) {
                    let old_len = self.log.read(old)?.encoded_len() as u64;
                    self.live_bytes = self.live_bytes.saturating_sub(old_len);
                }
            } else {
                // Walk the candidate chain to subtract a replaced record.
                let prior = self
                    .index
                    .candidates(&key)
                    .find(|a| log.read(*a).map(|r| r.key == key).unwrap_or(false));
                if let Some(p) = prior {
                    let old_len = self.log.read(p)?.encoded_len() as u64;
                    self.live_bytes = self.live_bytes.saturating_sub(old_len);
                }
                self.index.upsert(&key, addr, |candidate| {
                    log.read(candidate).map(|r| r.key == key).unwrap_or(false)
                });
                self.live_bytes += len;
            }
        }
        Ok(())
    }

    /// Rewrites the log with only live records when space amplification
    /// exceeds the configured threshold.
    fn maybe_compact(&mut self) -> Result<()> {
        let tail = self.log.tail();
        if tail < self.cfg.min_compact_bytes {
            return Ok(());
        }
        let amp = tail as f64 / self.live_bytes.max(1) as f64;
        if amp <= self.cfg.max_space_amplification {
            return Ok(());
        }
        let _t = self.metrics.timer(OpCategory::Compaction);
        let tmp_path = self.dir.join("hybrid.log.compact");
        let mut new_log = HybridLog::create_in(
            &self.vfs,
            &tmp_path,
            self.cfg.mem_budget,
            Arc::clone(&self.metrics),
        )?;
        let mut new_index = HashIndex::with_capacity(self.index.len().max(8));
        let addrs: Vec<u64> = self.index.iter_addrs().collect();
        let mut new_live = 0u64;
        for addr in addrs {
            let record = self.log.read(addr)?;
            let new_addr = new_log.append(&record)?;
            self.appended_total += record.encoded_len() as u64;
            new_live += record.encoded_len() as u64;
            let log_ref = &new_log;
            let key = record.key.clone();
            new_index.upsert(&key, new_addr, |candidate| {
                log_ref
                    .read(candidate)
                    .map(|r| r.key == key)
                    .unwrap_or(false)
            });
        }
        new_log.flush()?;
        new_log.sync()?;
        let final_path = self.dir.join(LOG_NAME);
        self.vfs
            .rename(&tmp_path, &final_path)
            .map_err(|e| StoreError::io_at("compaction rename", &final_path, e))?;
        self.log = HybridLog::open_in(
            &self.vfs,
            &final_path,
            self.cfg.mem_budget,
            Arc::clone(&self.metrics),
        )?;
        self.index = new_index;
        self.live_bytes = new_live;
        self.epoch.bump();
        self.metrics.add_compaction();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::scratch::ScratchDir;

    fn open_small(dir: &Path) -> HashDb {
        HashDb::open(dir, HashDbConfig::small_for_tests()).unwrap()
    }

    #[test]
    fn upsert_read_delete() {
        let dir = ScratchDir::new("hdb-basic").unwrap();
        let mut db = open_small(dir.path());
        assert_eq!(db.read(b"k").unwrap(), None);
        db.upsert(b"k", b"v1").unwrap();
        assert_eq!(db.read(b"k").unwrap(), Some(b"v1".to_vec()));
        db.upsert(b"k", b"v2").unwrap();
        assert_eq!(db.read(b"k").unwrap(), Some(b"v2".to_vec()));
        db.delete(b"k").unwrap();
        assert_eq!(db.read(b"k").unwrap(), None);
        assert!(db.is_empty());
    }

    #[test]
    fn many_keys_survive_flushes() {
        let dir = ScratchDir::new("hdb-many").unwrap();
        let mut db = open_small(dir.path());
        for i in 0..2000u32 {
            db.upsert(format!("key-{i}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        assert_eq!(db.len(), 2000);
        for i in (0..2000u32).step_by(41) {
            assert_eq!(
                db.read(format!("key-{i}").as_bytes()).unwrap(),
                Some(i.to_le_bytes().to_vec())
            );
        }
    }

    #[test]
    fn rmw_counts() {
        let dir = ScratchDir::new("hdb-rmw").unwrap();
        let mut db = open_small(dir.path());
        for _ in 0..10 {
            db.rmw(b"counter", |cur| {
                let n = cur
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                (n + 1).to_le_bytes().to_vec()
            })
            .unwrap();
        }
        assert_eq!(
            db.read(b"counter").unwrap(),
            Some(10u64.to_le_bytes().to_vec())
        );
        // Same-size updates take the in-place path: log stays tiny.
        assert!(db.log_bytes() < 200, "log bytes {}", db.log_bytes());
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let dir = ScratchDir::new("hdb-compact").unwrap();
        let mut db = open_small(dir.path());
        // Repeatedly overwrite the same keys with different sizes so the
        // in-place path never applies and garbage accumulates.
        for round in 0..200u32 {
            for key in 0..10u32 {
                let value = vec![round as u8; 100 + (round as usize % 3)];
                db.upsert(format!("k{key}").as_bytes(), &value).unwrap();
            }
        }
        assert!(db.metrics().snapshot().compactions > 0, "never compacted");
        // After the last compaction the log can regrow up to the
        // compaction floor again, but no further.
        assert!(
            db.log_bytes() < 2 * HashDbConfig::small_for_tests().min_compact_bytes,
            "log bytes {} never reclaimed",
            db.log_bytes()
        );
        for key in 0..10u32 {
            assert!(db.read(format!("k{key}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn scan_live_sees_exactly_live_keys() {
        let dir = ScratchDir::new("hdb-scan").unwrap();
        let mut db = open_small(dir.path());
        for i in 0..50u32 {
            db.upsert(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        db.delete(b"k7").unwrap();
        let mut keys = Vec::new();
        db.scan_live(|k, _| keys.push(k.to_vec())).unwrap();
        assert_eq!(keys.len(), 49);
        assert!(!keys.contains(&b"k7".to_vec()));
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let dir = ScratchDir::new("hdb-ckpt").unwrap();
        let ckpt = ScratchDir::new("hdb-ckpt-dst").unwrap();
        let mut db = open_small(dir.path());
        db.upsert(b"a", b"1").unwrap();
        db.delete(b"gone").unwrap();
        db.checkpoint(ckpt.path()).unwrap();
        db.upsert(b"b", b"2").unwrap();
        db.restore(ckpt.path()).unwrap();
        assert_eq!(db.read(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.read(b"b").unwrap(), None);
    }

    #[test]
    fn reopen_replays_log() {
        let dir = ScratchDir::new("hdb-reopen").unwrap();
        {
            let mut db = open_small(dir.path());
            db.upsert(b"a", b"1").unwrap();
            db.upsert(b"b", b"2").unwrap();
            db.delete(b"a").unwrap();
            db.flush().unwrap();
        }
        let db = open_small(dir.path());
        assert_eq!(db.read(b"a").unwrap(), None);
        assert_eq!(db.read(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn epoch_protection_runs_per_operation() {
        let dir = ScratchDir::new("hdb-epoch").unwrap();
        let mut db = open_small(dir.path());
        let before = db.epoch().entry_count();
        db.upsert(b"k", b"v").unwrap();
        db.read(b"k").unwrap();
        db.delete(b"k").unwrap();
        assert!(db.epoch().entry_count() >= before + 3);
    }
}
