//! Property-based tests for the codec and log-file substrate.

use flowkv_common::codec::{
    crc32, put_len_prefixed, put_varint_i64, put_varint_u64, zigzag_decode, zigzag_encode, Decoder,
};
use flowkv_common::logfile::{LogReader, LogWriter};
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::{Tuple, WindowId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_u64_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        put_varint_u64(&mut buf, v);
        let mut dec = Decoder::new(&buf);
        prop_assert_eq!(dec.get_varint_u64().unwrap(), v);
        prop_assert!(dec.is_empty());
    }

    #[test]
    fn varint_i64_roundtrip(v in any::<i64>()) {
        let mut buf = Vec::new();
        put_varint_i64(&mut buf, v);
        let mut dec = Decoder::new(&buf);
        prop_assert_eq!(dec.get_varint_i64().unwrap(), v);
    }

    #[test]
    fn zigzag_is_bijective(v in any::<i64>()) {
        prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }

    #[test]
    fn len_prefixed_sequence_roundtrip(chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 0..20)) {
        let mut buf = Vec::new();
        for c in &chunks {
            put_len_prefixed(&mut buf, c);
        }
        let mut dec = Decoder::new(&buf);
        for c in &chunks {
            prop_assert_eq!(dec.get_len_prefixed().unwrap(), &c[..]);
        }
        prop_assert!(dec.is_empty());
    }

    #[test]
    fn crc_detects_single_byte_mutation(data in prop::collection::vec(any::<u8>(), 1..100), idx in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let mut mutated = data.clone();
        let i = idx.index(data.len());
        mutated[i] ^= flip;
        prop_assert_ne!(crc32(&data), crc32(&mutated));
    }

    #[test]
    fn tuple_roundtrip(key in prop::collection::vec(any::<u8>(), 0..64),
                       value in prop::collection::vec(any::<u8>(), 0..256),
                       ts in any::<i64>()) {
        let t = Tuple::new(key, value, ts);
        let mut buf = Vec::new();
        t.encode_to(&mut buf);
        let mut dec = Decoder::new(&buf);
        prop_assert_eq!(Tuple::decode_from(&mut dec).unwrap(), t);
    }

    #[test]
    fn window_ordered_bytes_match_tuple_order(a in any::<(i64, i64)>(), b in any::<(i64, i64)>()) {
        let wa = WindowId { start: a.0.min(a.1), end: a.0.max(a.1) };
        let wb = WindowId { start: b.0.min(b.1), end: b.0.max(b.1) };
        let byte_order = wa.to_ordered_bytes().cmp(&wb.to_ordered_bytes());
        prop_assert_eq!(byte_order, wa.cmp(&wb));
    }

    #[test]
    fn log_roundtrip_and_truncation_recovery(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..128), 1..20),
        cut in 1u64..64,
    ) {
        let dir = ScratchDir::new("prop-log").unwrap();
        let path = dir.path().join("p.log");
        let mut w = LogWriter::create(&path).unwrap();
        let mut locs = Vec::new();
        for p in &payloads {
            locs.push(w.append(p).unwrap());
        }
        w.flush().unwrap();
        drop(w);

        // Full read-back.
        let mut r = LogReader::open(&path).unwrap();
        for p in &payloads {
            prop_assert_eq!(&r.next_record().unwrap().unwrap().1, p);
        }
        prop_assert!(r.next_record().unwrap().is_none());

        // Truncate somewhere inside the final record; recovery must keep
        // every earlier record and position appends at the cut prefix.
        let last = *locs.last().unwrap();
        let cut_at = last.offset + (cut % last.disk_len().max(1));
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut_at).unwrap();
        drop(f);

        let w = LogWriter::open_append(&path).unwrap();
        prop_assert_eq!(w.offset(), last.offset);
        drop(w);
        let mut r = LogReader::open(&path).unwrap();
        for p in &payloads[..payloads.len() - 1] {
            prop_assert_eq!(&r.next_record().unwrap().unwrap().1, p);
        }
        prop_assert!(r.next_record().unwrap().is_none());
    }
}
