//! Property tests for the cold-block columnar codec.
//!
//! - Round-trip: `decode_block(encode_block(rows)) == rows` for
//!   arbitrary tuple sequences — arbitrary keys, arbitrary (including
//!   negative and unordered) timestamps through the delta encoder,
//!   arbitrary values through both the dictionary and plain paths.
//! - Robustness: decoding any truncated or bit-flipped block returns a
//!   structured [`StoreError`], never panics.

use flowkv_common::columnar::{decode_block, encode_block, BlockKind, ColdRow};
use flowkv_common::error::StoreError;
use flowkv_common::types::WindowId;
use proptest::prelude::*;

fn rows_strategy() -> impl Strategy<Value = Vec<ColdRow>> {
    prop::collection::vec(
        (
            prop::collection::vec(any::<u8>(), 0..12),
            any::<i64>(),
            prop::collection::vec(any::<u8>(), 0..24),
        )
            .prop_map(|(key, ts, value)| ColdRow { key, ts, value }),
        0..64,
    )
}

fn windows() -> impl Strategy<Value = WindowId> {
    (any::<i32>(), 0i64..1_000_000)
        .prop_map(|(start, len)| WindowId::new(i64::from(start), i64::from(start) + len))
}

fn kinds() -> impl Strategy<Value = BlockKind> {
    prop_oneof![Just(BlockKind::Values), Just(BlockKind::Aggregates)]
}

/// The decode outcomes a damaged block is allowed to produce.
fn is_structured_failure(r: &Result<flowkv_common::columnar::ColdBlock, StoreError>) -> bool {
    matches!(
        r,
        Err(StoreError::UnexpectedEof { .. }
            | StoreError::Corruption { .. }
            | StoreError::VarintOverflow)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode ∘ decode = id, with value dictionary on (the
    /// dictionary-ID path) and off (the plain len-prefixed path); the
    /// timestamp column always takes the delta path.
    #[test]
    fn round_trip_is_identity(
        window in windows(),
        kind in kinds(),
        rows in rows_strategy(),
        compress in any::<bool>(),
    ) {
        let blob = encode_block(window, kind, &rows, compress);
        let block = decode_block(&blob).expect("well-formed block must decode");
        prop_assert_eq!(block.window, window);
        prop_assert_eq!(block.kind, kind);
        prop_assert_eq!(block.rows, rows);
    }

    /// Every strict prefix of a valid block fails decoding with a
    /// structured error — never a panic, never silent success.
    #[test]
    fn truncation_is_a_structured_error(
        window in windows(),
        rows in rows_strategy(),
        compress in any::<bool>(),
    ) {
        let blob = encode_block(window, BlockKind::Values, &rows, compress);
        for cut in 0..blob.len() {
            let result = decode_block(&blob[..cut]);
            prop_assert!(
                is_structured_failure(&result),
                "truncation at {}/{} did not fail structurally: {:?}",
                cut,
                blob.len(),
                result.map(|b| b.rows.len())
            );
        }
    }

    /// Any single-byte corruption is caught (the CRC covers everything
    /// after the magic; flipping the magic itself is caught first).
    #[test]
    fn bitflip_is_a_structured_error(
        window in windows(),
        rows in rows_strategy(),
        compress in any::<bool>(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut blob = encode_block(window, BlockKind::Aggregates, &rows, compress);
        let pos = (pos_seed % blob.len() as u64) as usize;
        blob[pos] ^= 1 << bit;
        let result = decode_block(&blob);
        prop_assert!(
            is_structured_failure(&result),
            "bitflip at {} bit {} did not fail structurally: {:?}",
            pos,
            bit,
            result.map(|b| b.rows.len())
        );
    }
}
