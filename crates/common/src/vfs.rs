//! Virtual filesystem layer with deterministic fault injection.
//!
//! Every store in the workspace persists through this seam: [`Vfs`] is
//! the set of filesystem operations the stores need (open/append/
//! positional read/sync/rename/remove and a handful of whole-file
//! helpers), [`StdVfs`] passes them straight to `std::fs`, and
//! [`FaultVfs`] wraps any inner `Vfs` with a seeded, deterministic fault
//! plan — torn writes, dropped or failing fsyncs, short reads, ENOSPC,
//! and crash-point panics.
//!
//! The point is to make the recovery story of paper §8 *testable*: the
//! happy path already checkpoints and replays, but only an injectable
//! filesystem can prove the stores survive a write torn mid-record or a
//! process death between two syncs. Fault triggering is by global
//! operation index — every faultable call through a `FaultVfs` counts as
//! one op — so a failing run is reproducible from its seed alone.

use std::fmt;
use std::io::{self, Read, Seek, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// An open file handle behind a [`Vfs`].
///
/// Sequential access goes through the inherited [`Read`]/[`Write`]/
/// [`Seek`] impls (so a `Box<dyn VfsFile>` drops into `BufReader` and
/// `BufWriter` unchanged); positional access, truncation, and durability
/// are the explicit methods below, mirroring what `std::fs::File`
/// offers on Unix.
#[allow(clippy::len_without_is_empty)]
pub trait VfsFile: Read + Write + Seek + Send {
    /// Flushes file data (not necessarily metadata) to the device.
    fn sync_data(&mut self) -> io::Result<()>;

    /// Reads exactly `buf.len()` bytes at `offset` without moving the
    /// cursor.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()>;

    /// Writes all of `buf` at `offset` without moving the cursor.
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()>;

    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;

    /// Current length of the file in bytes.
    fn len(&self) -> io::Result<u64>;
}

impl VfsFile for std::fs::File {
    fn sync_data(&mut self) -> io::Result<()> {
        std::fs::File::sync_data(self)
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        std::os::unix::fs::FileExt::read_exact_at(self, buf, offset)
    }

    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        std::os::unix::fs::FileExt::write_all_at(self, buf, offset)
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        std::fs::File::set_len(self, len)
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.metadata()?.len())
    }
}

/// The filesystem operations a state store performs.
///
/// Implementations must be shareable across worker threads; handles
/// returned by the `open`/`create` methods are single-owner like
/// `std::fs::File`.
pub trait Vfs: Send + Sync {
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens an existing file for reading and writing without
    /// truncation — the append/recovery path.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens an existing file read-only.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens (creating if absent) a file for positional read/write.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Copies `from` to `to`, returning the bytes copied.
    fn copy(&self, from: &Path, to: &Path) -> io::Result<u64>;

    /// Hard-links `from` to `to`, falling back to a copy across
    /// filesystems — the cheap-checkpoint primitive.
    fn link_or_copy(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Reads a whole file into memory.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes a whole buffer to `path`, truncating.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;

    /// Length of the file at `path`.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// The file names (not paths) inside the directory `path`.
    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>>;
}

/// The passthrough implementation over `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

impl StdVfs {
    /// A shared trait-object handle, the default for every store.
    pub fn shared() -> Arc<dyn Vfs> {
        Arc::new(StdVfs)
    }
}

impl Vfs for StdVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(
            std::fs::OpenOptions::new()
                .create(true)
                .read(true)
                .write(true)
                .truncate(true)
                .open(path)?,
        ))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(
            std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(path)?,
        ))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(std::fs::File::open(path)?))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(
            std::fs::OpenOptions::new()
                .create(true)
                .truncate(false)
                .read(true)
                .write(true)
                .open(path)?,
        ))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn copy(&self, from: &Path, to: &Path) -> io::Result<u64> {
        std::fs::copy(from, to)
    }

    fn link_or_copy(&self, from: &Path, to: &Path) -> io::Result<()> {
        if std::fs::hard_link(from, to).is_err() {
            std::fs::copy(from, to)?;
        }
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }
}

// ---------------------------------------------------------------------------
// Read-latency injection
// ---------------------------------------------------------------------------

/// A [`Vfs`] wrapper that sleeps on every read operation, emulating a
/// cold storage device.
///
/// The prefetch experiments need reads that *block*: on a page-cache-warm
/// filesystem a "cold" read returns in microseconds and overlapping it
/// with computation saves nothing, while on the paper's disks a trigger
/// read stalls the operator for a device round trip. `SlowVfs` restores
/// that stall — synchronous reads pay it inline on the worker thread,
/// background reads pay it parked on an I/O ring pool thread — without
/// touching the write or metadata path.
pub struct SlowVfs {
    inner: Arc<dyn Vfs>,
    read_delay: std::time::Duration,
}

impl SlowVfs {
    /// Wraps `inner`, delaying every read operation by `read_delay`.
    pub fn wrap(inner: Arc<dyn Vfs>, read_delay: std::time::Duration) -> Arc<dyn Vfs> {
        Arc::new(SlowVfs { inner, read_delay })
    }
}

/// File handle issued by [`SlowVfs`]: read calls sleep, writes pass
/// through.
struct SlowFile {
    inner: Box<dyn VfsFile>,
    read_delay: std::time::Duration,
}

impl Read for SlowFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        std::thread::sleep(self.read_delay);
        self.inner.read(buf)
    }
}

impl Write for SlowFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Seek for SlowFile {
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

impl VfsFile for SlowFile {
    fn sync_data(&mut self) -> io::Result<()> {
        self.inner.sync_data()
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        std::thread::sleep(self.read_delay);
        self.inner.read_exact_at(buf, offset)
    }

    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        self.inner.write_all_at(buf, offset)
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }
}

impl SlowVfs {
    fn slow(&self, file: io::Result<Box<dyn VfsFile>>) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(SlowFile {
            inner: file?,
            read_delay: self.read_delay,
        }))
    }
}

impl Vfs for SlowVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.slow(self.inner.create(path))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.slow(self.inner.open_append(path))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.slow(self.inner.open_read(path))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.slow(self.inner.open_rw(path))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn copy(&self, from: &Path, to: &Path) -> io::Result<u64> {
        self.inner.copy(from, to)
    }

    fn link_or_copy(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.link_or_copy(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::thread::sleep(self.read_delay);
        self.inner.read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.inner.write(path, data)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }

    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        self.inner.read_dir_names(path)
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One step of the SplitMix64 sequence — the workspace-local seeded RNG
/// used to derive fault plans (no external dependency).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The injectable fault taxonomy (DESIGN.md §9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// A write persists only its first `keep` bytes, then errors — the
    /// classic torn write.
    TornWrite {
        /// Bytes of the buffer that reach the file before the failure.
        keep: usize,
    },
    /// One `sync_data` silently does nothing (data stays in the page
    /// cache); no error is surfaced.
    SyncDrop,
    /// One `sync_data` fails with an I/O error.
    SyncFail,
    /// One read observes a premature end-of-file.
    ShortRead,
    /// One mutating operation fails with `ENOSPC` ("no space left on
    /// device").
    Enospc,
    /// The process "dies": half of any in-flight write is persisted,
    /// then the calling thread panics.
    Crash,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::TornWrite { keep } => write!(f, "torn-write(keep={keep})"),
            FaultKind::SyncDrop => write!(f, "sync-drop"),
            FaultKind::SyncFail => write!(f, "sync-fail"),
            FaultKind::ShortRead => write!(f, "short-read"),
            FaultKind::Enospc => write!(f, "enospc"),
            FaultKind::Crash => write!(f, "crash"),
        }
    }
}

/// A deterministic schedule of faults, keyed by global operation index
/// (the first faultable operation through the `FaultVfs` is op 1).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<(u64, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan: the `FaultVfs` only counts operations.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a one-shot fault firing at operation `op` (1-based).
    pub fn with_fault(mut self, op: u64, kind: FaultKind) -> Self {
        self.faults.push((op, kind));
        self
    }

    /// A plan with a single crash at operation `op`.
    pub fn crash_at(op: u64) -> Self {
        FaultPlan::new().with_fault(op, FaultKind::Crash)
    }

    /// Derives a single-fault plan from `seed`: both the fault kind and
    /// its trigger op (in `1..=max_op`) come from the SplitMix64 stream,
    /// so a logged seed reproduces the exact failure.
    pub fn random(seed: u64, max_op: u64) -> Self {
        let mut s = seed;
        let op = 1 + splitmix64(&mut s) % max_op.max(1);
        let kind = match splitmix64(&mut s) % 6 {
            0 => FaultKind::TornWrite {
                keep: (splitmix64(&mut s) % 8) as usize,
            },
            1 => FaultKind::SyncDrop,
            2 => FaultKind::SyncFail,
            3 => FaultKind::ShortRead,
            4 => FaultKind::Enospc,
            _ => FaultKind::Crash,
        };
        FaultPlan::new().with_fault(op, kind)
    }

    /// Derives a crash-only plan from `seed` with the crash point drawn
    /// uniformly from `1..=max_op` — the crash-matrix helper.
    pub fn random_crash(seed: u64, max_op: u64) -> Self {
        let mut s = seed;
        FaultPlan::crash_at(1 + splitmix64(&mut s) % max_op.max(1))
    }
}

#[derive(Default)]
struct FaultState {
    ops: u64,
    pending: Vec<(u64, FaultKind)>,
    fired: Vec<(u64, FaultKind)>,
}

/// Decides what (if anything) happens at the next faultable operation.
/// The lock is released before any panic is raised so a crash fault
/// never poisons the plan state.
fn arm(state: &Mutex<FaultState>) -> Option<FaultKind> {
    let mut s = state.lock().unwrap_or_else(|e| e.into_inner());
    s.ops += 1;
    let op = s.ops;
    if let Some(pos) = s.pending.iter().position(|(o, _)| *o == op) {
        let (_, kind) = s.pending.remove(pos);
        s.fired.push((op, kind));
        return Some(kind);
    }
    None
}

fn injected(kind: FaultKind) -> io::Error {
    let errkind = match kind {
        FaultKind::Enospc => io::ErrorKind::StorageFull,
        FaultKind::ShortRead => io::ErrorKind::UnexpectedEof,
        _ => io::ErrorKind::Other,
    };
    io::Error::new(errkind, format!("injected fault: {kind}"))
}

/// A [`Vfs`] decorator that injects the faults of a [`FaultPlan`].
///
/// Every faultable call — file reads, writes, syncs, and the
/// metadata-mutating `Vfs` operations — increments a shared operation
/// counter; when the counter hits a planned index the fault fires once.
/// [`FaultVfs::ops`] after an uninjected run gives the op range from
/// which a randomized plan should draw.
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: Arc<dyn Vfs>, plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultVfs {
            inner,
            state: Arc::new(Mutex::new(FaultState {
                pending: plan.faults,
                ..FaultState::default()
            })),
        })
    }

    /// A counting-only wrapper (empty plan) for measuring a run's op
    /// footprint.
    pub fn counting(inner: Arc<dyn Vfs>) -> Arc<Self> {
        FaultVfs::new(inner, FaultPlan::new())
    }

    /// Total faultable operations observed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).ops
    }

    /// The faults that have fired, as `(op index, kind)`.
    pub fn fired(&self) -> Vec<(u64, FaultKind)> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .fired
            .clone()
    }

    /// Handles a fault on a metadata-level (non-file-handle) operation.
    /// Crash faults panic; everything else surfaces as an I/O error.
    fn meta_op(&self) -> io::Result<()> {
        match arm(&self.state) {
            None | Some(FaultKind::SyncDrop) => Ok(()),
            Some(FaultKind::Crash) => panic!("flowkv-fault: injected crash"),
            Some(kind) => Err(injected(kind)),
        }
    }

    fn wrap(&self, file: io::Result<Box<dyn VfsFile>>) -> io::Result<Box<dyn VfsFile>> {
        self.meta_op()?;
        Ok(Box::new(FaultFile {
            inner: file?,
            state: Arc::clone(&self.state),
        }))
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.wrap(self.inner.create(path))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.wrap(self.inner.open_append(path))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.wrap(self.inner.open_read(path))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.wrap(self.inner.open_rw(path))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.meta_op()?;
        self.inner.create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.meta_op()?;
        self.inner.remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.meta_op()?;
        self.inner.rename(from, to)
    }

    fn copy(&self, from: &Path, to: &Path) -> io::Result<u64> {
        self.meta_op()?;
        self.inner.copy(from, to)
    }

    fn link_or_copy(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.meta_op()?;
        self.inner.link_or_copy(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.meta_op()?;
        self.inner.read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.meta_op()?;
        self.inner.write(path, data)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }

    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        self.inner.read_dir_names(path)
    }
}

/// A file handle whose reads, writes, and syncs consult the fault plan.
struct FaultFile {
    inner: Box<dyn VfsFile>,
    state: Arc<Mutex<FaultState>>,
}

impl Read for FaultFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match arm(&self.state) {
            // A short read surfaces as premature EOF: the reader sees a
            // truncated file, the torn-tail recovery path.
            Some(FaultKind::ShortRead) => Ok(0),
            Some(FaultKind::Crash) => panic!("flowkv-fault: injected crash"),
            Some(kind @ (FaultKind::Enospc | FaultKind::TornWrite { .. })) => Err(injected(kind)),
            _ => self.inner.read(buf),
        }
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match arm(&self.state) {
            Some(FaultKind::TornWrite { keep }) => {
                let keep = keep.min(buf.len());
                let _ = self.inner.write(&buf[..keep]);
                let _ = self.inner.flush();
                Err(injected(FaultKind::TornWrite { keep }))
            }
            Some(FaultKind::Crash) => {
                // Persist half the buffer, then die: the on-disk state a
                // real crash leaves behind.
                let _ = self.inner.write(&buf[..buf.len() / 2]);
                let _ = self.inner.flush();
                panic!("flowkv-fault: injected crash");
            }
            Some(FaultKind::Enospc) => Err(injected(FaultKind::Enospc)),
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Seek for FaultFile {
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

impl VfsFile for FaultFile {
    fn sync_data(&mut self) -> io::Result<()> {
        match arm(&self.state) {
            Some(FaultKind::SyncDrop) => Ok(()),
            Some(FaultKind::SyncFail) => Err(injected(FaultKind::SyncFail)),
            Some(FaultKind::Crash) => panic!("flowkv-fault: injected crash"),
            Some(kind) => Err(injected(kind)),
            None => self.inner.sync_data(),
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        match arm(&self.state) {
            Some(FaultKind::ShortRead) => Err(injected(FaultKind::ShortRead)),
            Some(FaultKind::Crash) => panic!("flowkv-fault: injected crash"),
            Some(kind) => Err(injected(kind)),
            None => self.inner.read_exact_at(buf, offset),
        }
    }

    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        match arm(&self.state) {
            Some(FaultKind::TornWrite { keep }) => {
                let keep = keep.min(buf.len());
                let _ = self.inner.write_all_at(&buf[..keep], offset);
                Err(injected(FaultKind::TornWrite { keep }))
            }
            Some(FaultKind::Crash) => {
                let _ = self.inner.write_all_at(&buf[..buf.len() / 2], offset);
                panic!("flowkv-fault: injected crash");
            }
            Some(kind) => Err(injected(kind)),
            None => self.inner.write_all_at(buf, offset),
        }
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        match arm(&self.state) {
            Some(FaultKind::Crash) => panic!("flowkv-fault: injected crash"),
            Some(FaultKind::SyncDrop) | None => self.inner.set_len(len),
            Some(kind) => Err(injected(kind)),
        }
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;

    #[test]
    fn slow_vfs_delays_reads_not_writes() {
        let dir = ScratchDir::new("vfs-slow").unwrap();
        let delay = std::time::Duration::from_millis(5);
        let vfs = SlowVfs::wrap(StdVfs::shared(), delay);
        let path = dir.path().join("f");
        vfs.write(&path, b"payload").unwrap();

        let started = std::time::Instant::now();
        let f = vfs.open_read(&path).unwrap();
        let mut buf = [0u8; 7];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"payload");
        assert!(
            started.elapsed() >= delay,
            "positional read returned before the injected delay"
        );
        assert_eq!(vfs.read(&path).unwrap(), b"payload");

        // The write path is untouched: appending 200 records must not
        // accumulate 200 delays.
        let started = std::time::Instant::now();
        let mut w = vfs.create(&dir.path().join("w")).unwrap();
        for _ in 0..200 {
            w.write_all(b"x").unwrap();
        }
        w.flush().unwrap();
        assert!(
            started.elapsed() < delay * 100,
            "writes appear to pay the read delay"
        );
    }

    #[test]
    fn std_vfs_roundtrip() {
        let dir = ScratchDir::new("vfs-std").unwrap();
        let vfs = StdVfs::shared();
        let path = dir.path().join("f");
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"hello world").unwrap();
        f.flush().unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(vfs.file_len(&path).unwrap(), 11);
        let f = vfs.open_read(&path).unwrap();
        let mut buf = [0u8; 5];
        f.read_exact_at(&mut buf, 6).unwrap();
        assert_eq!(&buf, b"world");
        let renamed = dir.path().join("g");
        vfs.rename(&path, &renamed).unwrap();
        assert!(vfs.exists(&renamed) && !vfs.exists(&path));
        assert_eq!(vfs.read_dir_names(dir.path()).unwrap(), vec!["g"]);
        vfs.remove_file(&renamed).unwrap();
        assert!(!vfs.exists(&renamed));
    }

    #[test]
    fn counting_vfs_counts_deterministically() {
        let dir = ScratchDir::new("vfs-count").unwrap();
        let fv = FaultVfs::counting(StdVfs::shared());
        let path = dir.path().join("f");
        let mut f = fv.create(&path).unwrap(); // op 1
        f.write_all(b"abc").unwrap(); // op 2
        f.sync_data().unwrap(); // op 3
        assert_eq!(fv.ops(), 3);
        assert!(fv.fired().is_empty());
    }

    #[test]
    fn torn_write_keeps_prefix_and_errors() {
        let dir = ScratchDir::new("vfs-torn").unwrap();
        let fv = FaultVfs::new(
            StdVfs::shared(),
            FaultPlan::new().with_fault(2, FaultKind::TornWrite { keep: 4 }),
        );
        let path = dir.path().join("f");
        let mut f = fv.create(&path).unwrap();
        let err = f.write(b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn-write"), "{err}");
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"0123");
        assert_eq!(fv.fired().len(), 1);
    }

    #[test]
    fn enospc_fails_write() {
        let dir = ScratchDir::new("vfs-enospc").unwrap();
        let fv = FaultVfs::new(
            StdVfs::shared(),
            FaultPlan::new().with_fault(2, FaultKind::Enospc),
        );
        let mut f = fv.create(&dir.path().join("f")).unwrap();
        let err = f.write(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn crash_fault_panics_once() {
        let dir = ScratchDir::new("vfs-crash").unwrap();
        let fv = FaultVfs::new(StdVfs::shared(), FaultPlan::crash_at(2));
        let path = dir.path().join("f");
        let mut f = fv.create(&path).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = f.write(b"abcdefgh");
        }));
        assert!(result.is_err(), "crash fault did not panic");
        // Half the buffer reached the file before the "death".
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
        // One-shot: later operations proceed normally.
        f.write_all(b"rest").unwrap();
        assert_eq!(fv.fired(), vec![(2, FaultKind::Crash)]);
    }

    #[test]
    fn random_plans_are_deterministic_and_in_range() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = FaultPlan::random(seed, 100);
            let b = FaultPlan::random(seed, 100);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            let (op, _) = a.faults[0];
            assert!((1..=100).contains(&op), "op {op} out of range");
            let crash = FaultPlan::random_crash(seed, 50);
            assert!(matches!(crash.faults[0].1, FaultKind::Crash));
            assert!((1..=50).contains(&crash.faults[0].0));
        }
    }

    #[test]
    fn sync_faults() {
        let dir = ScratchDir::new("vfs-sync").unwrap();
        let fv = FaultVfs::new(
            StdVfs::shared(),
            FaultPlan::new()
                .with_fault(2, FaultKind::SyncDrop)
                .with_fault(3, FaultKind::SyncFail),
        );
        let mut f = fv.create(&dir.path().join("f")).unwrap();
        f.sync_data().unwrap(); // dropped silently
        assert!(f.sync_data().is_err()); // failed loudly
        f.sync_data().unwrap(); // back to normal
    }
}
