//! The contract between the stream engine and any state store.
//!
//! [`StateBackend`] is the Rust rendition of the paper's Listing 1: every
//! method takes explicit window metadata, appends additionally carry the
//! tuple timestamp (used by FlowKV's trigger-time estimation), and reads
//! have *fetch-and-remove* semantics because a triggered window's state is
//! dead after aggregation.
//!
//! A backend is created per physical operator partition via a
//! [`StateBackendFactory`], receiving the operator's
//! [`OperatorSemantics`] — the aggregate-function and window-function
//! signatures FlowKV classifies at application launch (paper §3.1).
//! Baseline stores ignore the semantics and map everything onto generic
//! KV operations, exactly as Flink does with RocksDB.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::Result;
use crate::metrics::StoreMetrics;
use crate::types::{Timestamp, WindowId};

/// How a window operation updates state on tuple arrival (paper §2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateKind {
    /// Associative + commutative aggregate applied incrementally; the
    /// store holds one intermediate aggregate per `(key, window)`
    /// (Flink's `AggregateFunction` → read-modify-write pattern).
    Incremental,
    /// Non-associative or non-commutative aggregate; the store holds the
    /// full list of windowed tuples (Flink's `ProcessWindowFunction` →
    /// append pattern).
    FullList,
}

/// How a window function bounds the stream (paper §2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowKind {
    /// Fixed (tumbling) windows of `size` milliseconds.
    Fixed {
        /// Window length in event-time milliseconds.
        size: i64,
    },
    /// Sliding windows of `size` milliseconds every `slide` milliseconds.
    Sliding {
        /// Window length in event-time milliseconds.
        size: i64,
        /// Sliding interval in event-time milliseconds.
        slide: i64,
    },
    /// Per-key session windows delimited by `gap` milliseconds of
    /// inactivity.
    Session {
        /// Session gap in event-time milliseconds.
        gap: i64,
    },
    /// A single window covering all of event time.
    Global,
    /// Per-key windows that close after `size` tuples arrive.
    Count {
        /// Number of tuples per window.
        size: u64,
    },
    /// A user-defined window function whose semantics are unknown to the
    /// store; classified conservatively as unaligned (paper §3.1, §8).
    Custom,
}

impl WindowKind {
    /// Returns `true` when windows of all keys share trigger times.
    ///
    /// Fixed and sliding windows are aligned; session, count, and custom
    /// windows are not (paper §2.1, "Window Functions").
    pub fn is_aligned(&self) -> bool {
        matches!(self, WindowKind::Fixed { .. } | WindowKind::Sliding { .. })
    }

    /// Advisory lifetime of one entry's state in event-time
    /// milliseconds, for queryable-state metadata: how long past its
    /// arrival an entry can stay live before the engine drains it.
    ///
    /// Fixed/sliding windows retain state for the window length,
    /// sessions for the gap; global, count, and custom windows carry no
    /// event-time bound, so they report `None`.
    pub fn retention_hint_ms(&self) -> Option<u64> {
        match self {
            WindowKind::Fixed { size } => u64::try_from(*size).ok(),
            WindowKind::Sliding { size, .. } => u64::try_from(*size).ok(),
            WindowKind::Session { gap } => u64::try_from(*gap).ok(),
            WindowKind::Global | WindowKind::Count { .. } | WindowKind::Custom => None,
        }
    }
}

/// The launch-time description of a window operation used for store
/// classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OperatorSemantics {
    /// The aggregate-function signature.
    pub aggregate: AggregateKind,
    /// The window-function signature.
    pub window: WindowKind,
}

impl OperatorSemantics {
    /// Convenience constructor.
    pub fn new(aggregate: AggregateKind, window: WindowKind) -> Self {
        OperatorSemantics { aggregate, window }
    }
}

/// One gradual chunk of a triggered window's state: keys paired with
/// their appended values.
pub type WindowChunk = Vec<(Vec<u8>, Vec<Vec<u8>>)>;

/// One migratable unit of store state, produced by
/// [`StateBackend::extract_range`] and consumed by
/// [`StateBackend::inject_entries`].
///
/// An entry carries everything needed to re-create the state in a
/// different store instance, independent of the source store's layout:
/// the two variants mirror the two physical shapes every backend holds
/// (appended value lists and intermediate aggregates).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StateEntry {
    /// The appended values of one `(key, window)` pair, in append order.
    Values {
        /// The tuple key.
        key: Vec<u8>,
        /// The window the values belong to.
        window: WindowId,
        /// All appended values, oldest first.
        values: Vec<Vec<u8>>,
    },
    /// The intermediate aggregate of one `(key, window)` pair.
    Aggregate {
        /// The tuple key.
        key: Vec<u8>,
        /// The window the aggregate belongs to.
        window: WindowId,
        /// The encoded aggregate.
        value: Vec<u8>,
    },
}

impl StateEntry {
    /// The key this entry belongs to — what range filters inspect.
    pub fn key(&self) -> &[u8] {
        match self {
            StateEntry::Values { key, .. } | StateEntry::Aggregate { key, .. } => key,
        }
    }

    /// The window this entry belongs to.
    pub fn window(&self) -> WindowId {
        match self {
            StateEntry::Values { window, .. } | StateEntry::Aggregate { window, .. } => *window,
        }
    }
}

/// A key predicate used to select the state entries to migrate —
/// typically "is this key's range hash inside shard `s`".
pub type KeyFilter<'a> = &'a dyn Fn(&[u8]) -> bool;

/// A state store for one physical window-operator partition.
///
/// Methods correspond to the paper's Listing 1:
///
/// | Paper | Trait method |
/// |---|---|
/// | AAR `GetWindow(W)` | [`StateBackend::get_window_chunk`] |
/// | AAR `Append(K, V, W)` | [`StateBackend::append`] (timestamp ignored) |
/// | AUR `Get(K, W)` | [`StateBackend::take_values`] |
/// | AUR `Append(K, V, W, T)` | [`StateBackend::append`] |
/// | RMW `Get(K, W)` | [`StateBackend::take_aggregate`] |
/// | RMW `Put(K, W, A)` | [`StateBackend::put_aggregate`] |
///
/// Stores are single-writer: each instance is owned by exactly one worker
/// thread (paper §2.1), so the trait takes `&mut self` and implementations
/// need no interior synchronization.
pub trait StateBackend: Send {
    /// Appends `value` for `key` in `window`; `ts` is the tuple timestamp.
    fn append(&mut self, key: &[u8], window: WindowId, value: &[u8], ts: Timestamp) -> Result<()>;

    /// Reads the next chunk of `window`'s state across all keys, removing
    /// it from the store; `Ok(None)` once the window is fully drained.
    ///
    /// The chunked contract is the paper's *gradual state loading*
    /// (§4.1): the engine aggregates chunk by chunk so only one
    /// non-aggregated chunk is in memory at a time.
    fn get_window_chunk(&mut self, window: WindowId) -> Result<Option<WindowChunk>>;

    /// Fetches and removes the appended values of `(key, window)`.
    fn take_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>>;

    /// Reads the appended values of `(key, window)` *without* removing
    /// them.
    ///
    /// This is the non-destructive read that interval joins need (paper
    /// §8 lists them as future work): a probe against the other stream's
    /// buffered rows must leave that state in place for later probes.
    fn peek_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>>;

    /// Fetches and removes the intermediate aggregate of `(key, window)`.
    fn take_aggregate(&mut self, key: &[u8], window: WindowId) -> Result<Option<Vec<u8>>>;

    /// Stores the updated aggregate for `(key, window)`.
    fn put_aggregate(&mut self, key: &[u8], window: WindowId, aggregate: &[u8]) -> Result<()>;

    /// Forces buffered state to storage.
    fn flush(&mut self) -> Result<()>;

    /// Builds an immutable snapshot of the store's live state for the
    /// queryable-state registry ([`crate::registry`]).
    ///
    /// The snapshot is an owned copy: after it is returned the store may
    /// continue appending, flushing, and compacting without invalidating
    /// it. Building the view may flush buffered writes (it must not lose
    /// or reorder state) but must never consume entries — a served store
    /// produces byte-identical job output to an unserved one.
    ///
    /// The default returns `Ok(None)`: the store does not support
    /// snapshot reads and is simply not queryable.
    fn read_view(&mut self) -> Result<Option<crate::registry::StateView>> {
        Ok(None)
    }

    /// Extracts every live entry whose key satisfies `in_range`,
    /// *without* consuming any state (a rescale must be able to abort).
    ///
    /// Per-key value lists preserve append order; cross-key order is
    /// unspecified. Together with [`StateBackend::inject_entries`] this
    /// is the store half of key-range state migration: the old worker's
    /// store is scanned once per receiving shard with that shard's hash
    /// range as the filter, and the pieces are injected into fresh
    /// stores at the new parallelism. Single-writer ownership (each
    /// store instance belongs to one worker thread) is what makes the
    /// scan safe without coordination.
    ///
    /// Like [`StateBackend::read_view`], building the extract may flush
    /// buffered writes but must never lose or reorder state.
    ///
    /// `kind` is the owning operator's aggregate signature: stores whose
    /// record layout cannot distinguish an appended list from an opaque
    /// aggregate (the hash baseline stores both as raw payloads) need it
    /// to shape the entries, exactly as the engine selects list vs.
    /// aggregate calls from the same classification at runtime.
    fn extract_range(
        &mut self,
        in_range: KeyFilter<'_>,
        kind: AggregateKind,
    ) -> Result<Vec<StateEntry>>;

    /// Re-creates `entries` in this store.
    ///
    /// The default implementation replays value lists through
    /// [`StateBackend::append`] (with the window start as the tuple
    /// timestamp — migrated appends carry no per-tuple timestamps) and
    /// aggregates through [`StateBackend::put_aggregate`]; backends
    /// with cheaper bulk paths may override.
    fn inject_entries(&mut self, entries: Vec<StateEntry>) -> Result<()> {
        for entry in entries {
            match entry {
                StateEntry::Values {
                    key,
                    window,
                    values,
                } => {
                    for value in values {
                        self.append(&key, window, &value, window.start)?;
                    }
                }
                StateEntry::Aggregate { key, window, value } => {
                    self.put_aggregate(&key, window, &value)?;
                }
            }
        }
        Ok(())
    }

    /// Drives asynchronous prefetching: drains finished background reads
    /// into the store's buffers and schedules new ones for state whose
    /// ETT-predicted trigger falls within the prefetch horizon of
    /// `stream_time`. Called by the executor at batch and watermark
    /// boundaries when an I/O ring is configured. The default is a no-op
    /// — stores without anticipatable reads stay synchronous.
    fn advance_prefetch(&mut self, stream_time: Timestamp) -> Result<()> {
        let _ = stream_time;
        Ok(())
    }

    /// Notifies the store that `window`'s entries were just demoted to an
    /// external cold tier: every row the tier consumed left a tombstone
    /// (fetch-and-remove) behind, so block-oriented stores can schedule a
    /// compaction now and reclaim the dead space while the range is still
    /// warm in cache. Purely advisory; the default is a no-op.
    fn demoted_hint(&mut self, window: WindowId) -> Result<()> {
        let _ = window;
        Ok(())
    }

    /// Hints that the given `(key, window)` pairs are about to be read or
    /// modified, letting block-oriented stores warm caches in the
    /// background. Purely advisory; the default is a no-op.
    fn warm(&mut self, pairs: &[(&[u8], WindowId)]) -> Result<()> {
        let _ = pairs;
        Ok(())
    }

    /// Whether [`StateBackend::warm`] would do anything, so callers can
    /// skip assembling hint batches for stores that ignore them.
    fn wants_warm(&self) -> bool {
        false
    }

    /// The metrics block charged by this store.
    fn metrics(&self) -> Arc<StoreMetrics>;

    /// Approximate bytes of state held in memory, for memory-budget
    /// enforcement and the harnesses' reporting.
    fn memory_bytes(&self) -> usize;

    /// Writes a self-contained snapshot of the store into `dir`.
    fn checkpoint(&mut self, dir: &Path) -> Result<()>;

    /// Replaces the store's contents with the snapshot in `dir`.
    fn restore(&mut self, dir: &Path) -> Result<()>;

    /// Releases the store, deleting its working files.
    fn close(&mut self) -> Result<()>;
}

/// Identifies one physical operator partition and carries everything a
/// factory needs to build its store.
#[derive(Clone, Debug)]
pub struct OperatorContext {
    /// Name of the logical operator, unique within the job.
    pub operator: String,
    /// Index of this physical partition.
    pub partition: usize,
    /// Launch-time semantics used for store classification.
    pub semantics: OperatorSemantics,
    /// Directory under which the store may create files.
    pub data_dir: PathBuf,
    /// Job-wide telemetry handle; `None` disables store instrumentation.
    pub telemetry: Option<Arc<crate::telemetry::Telemetry>>,
    /// Background I/O policy; `None` (or `threads == 0`) keeps every
    /// store read synchronous. Factories that support the ring build one
    /// over their own VFS so fault injection covers background I/O.
    pub io: Option<crate::ioring::IoPolicy>,
}

impl OperatorContext {
    /// Directory reserved for this partition's store files.
    pub fn partition_dir(&self) -> PathBuf {
        self.data_dir
            .join(&self.operator)
            .join(format!("p{}", self.partition))
    }

    /// Label used to tag this partition's telemetry, `operator/p<N>`.
    pub fn telemetry_tag(&self) -> String {
        format!("{}/p{}", self.operator, self.partition)
    }
}

/// Creates state backends for physical operator partitions.
pub trait StateBackendFactory: Send + Sync {
    /// Builds the store for `ctx`, creating its directories.
    fn create(&self, ctx: &OperatorContext) -> Result<Box<dyn StateBackend>>;

    /// Short human-readable name used in benchmark output.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_classification() {
        assert!(WindowKind::Fixed { size: 10 }.is_aligned());
        assert!(WindowKind::Sliding { size: 10, slide: 5 }.is_aligned());
        assert!(!WindowKind::Session { gap: 10 }.is_aligned());
        assert!(!WindowKind::Count { size: 10 }.is_aligned());
        assert!(!WindowKind::Custom.is_aligned());
        assert!(!WindowKind::Global.is_aligned());
    }

    #[test]
    fn partition_dir_layout() {
        let ctx = OperatorContext {
            operator: "window-join".to_string(),
            partition: 3,
            semantics: OperatorSemantics::new(
                AggregateKind::FullList,
                WindowKind::Fixed { size: 100 },
            ),
            data_dir: PathBuf::from("/tmp/job"),
            telemetry: None,
            io: None,
        };
        assert_eq!(
            ctx.partition_dir(),
            PathBuf::from("/tmp/job/window-join/p3")
        );
        assert_eq!(ctx.telemetry_tag(), "window-join/p3");
    }
}
