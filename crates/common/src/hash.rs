//! Key hashing shared by hash indexes, write buffers, and partitioning.
//!
//! A single hash function is used everywhere a store or the engine needs
//! to place a key: FNV-1a over the bytes followed by a splitmix64
//! finalizer to break up the weak avalanche of plain FNV. It is seedable
//! so different structures (e.g. a hash index vs. the partitioner) can
//! decorrelate their bucket choices.

/// 64-bit hash of `data` with the default seed.
pub fn hash64(data: &[u8]) -> u64 {
    hash64_seeded(data, 0)
}

/// 64-bit hash of `data` mixed with `seed`.
pub fn hash64_seeded(data: &[u8], seed: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

/// Finalizing mixer from the splitmix64 generator.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Assigns `key` to one of `n` partitions.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn partition_of(key: &[u8], n: usize) -> usize {
    assert!(n > 0, "partition count must be positive");
    (hash64_seeded(key, 0x5157) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(b"abc"), hash64(b"abc"));
        assert_ne!(hash64(b"abc"), hash64(b"abd"));
    }

    #[test]
    fn seed_decorrelates() {
        assert_ne!(hash64_seeded(b"abc", 1), hash64_seeded(b"abc", 2));
    }

    #[test]
    fn partition_in_range() {
        for i in 0..1000u32 {
            let key = i.to_le_bytes();
            let p = partition_of(&key, 7);
            assert!(p < 7);
        }
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let n = 4;
        let mut counts = vec![0usize; n];
        for i in 0..4000u32 {
            counts[partition_of(&i.to_le_bytes(), n)] += 1;
        }
        for &c in &counts {
            // Each of 4 partitions should get 1000 +- 20 % of 4000 keys.
            assert!((800..=1200).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_partitions_panics() {
        let _ = partition_of(b"x", 0);
    }
}
