//! Pipeline-wide telemetry: metric registry, histograms, flight recorder.
//!
//! The store-level counters in [`crate::metrics`] attribute time and bytes
//! to store operations, but the executor, the exchange, and the ETT
//! estimator used to be black boxes. This module is the shared telemetry
//! substrate for all of them:
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free atomic metrics.
//!   The histogram is log-linear (HdrHistogram-style: 32 sub-buckets per
//!   power of two), so quantile estimates carry a bounded relative error
//!   (≤ 1/64 per bucket midpoint) and snapshots merge exactly across
//!   partitions by adding bucket counts.
//! - [`MetricRegistry`] — a named map of metrics. Registration takes a
//!   lock; the returned `Arc` handles are then updated lock-free on the
//!   hot path. Metric names carry their labels inline
//!   (`operator_busy_nanos{operator=count,partition=0}`), which keeps the
//!   registry a flat string map while the Prometheus renderer recovers
//!   proper label syntax.
//! - [`FlightRecorder`] — a bounded ring of structured [`TraceEvent`]s
//!   (predicted-vs-actual trigger times, etc.). When the ring is full the
//!   oldest event is dropped and counted, never blocking the writer.
//! - [`Telemetry`] — one registry plus one recorder plus a start instant,
//!   shared by every thread of a running job via `Arc`.
//!
//! Two exposition formats, both dependency-free:
//!
//! - JSONL ([`snapshot_json`] / [`event_json`]) — one JSON object per
//!   line, written periodically by the executor when
//!   `RunOptions::telemetry_out` is set. [`validate_jsonl_line`] is the
//!   schema check CI runs against emitted files, and [`parse_json`] is a
//!   minimal JSON reader tests use to inspect fields.
//! - Prometheus text format 0.0.4 ([`render_prometheus`]) — served by
//!   `crates/serve` and dumped by `flowkv-metrics-dump`.
//!   [`validate_prometheus`] checks conformance line by line.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Scalar metrics
// ---------------------------------------------------------------------------

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: a signed value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger.
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Log-linear histogram
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per power of two.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;

/// Bucket count: values `< 2*SUB` get one bucket each (exact), then 32
/// sub-buckets for every exponent 6..=63.
const NUM_BUCKETS: usize = (2 * SUB as usize) + (63 - 6 + 1) * SUB as usize;

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let shift = exp - SUB_BITS;
    let sub = (v >> shift) as usize; // in [SUB, 2*SUB)
    (2 * SUB as usize) + ((exp - SUB_BITS - 1) as usize) * (SUB as usize) + (sub - SUB as usize)
}

/// The representative (midpoint) value of a bucket. The true value lies in
/// `[lo, lo + 2^shift)`, so the relative error of the midpoint is at most
/// `2^(shift-1) / lo <= 1 / (2*SUB) = 1/64`.
fn bucket_value(idx: usize) -> u64 {
    if idx < 2 * SUB as usize {
        return idx as u64;
    }
    let rest = idx - 2 * SUB as usize;
    let exp = SUB_BITS + 1 + (rest / SUB as usize) as u32;
    let sub = SUB + (rest % SUB as usize) as u64;
    let shift = exp - SUB_BITS;
    let lo = sub << shift;
    lo + (1u64 << (shift - 1))
}

/// A mergeable log-linear histogram with lock-free recording.
///
/// Values are `u64` (typically nanoseconds, bytes, or queue depths).
/// Recording is three relaxed atomic RMWs plus two min/max updates; no
/// allocation, no locking.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds a snapshot's buckets into this live histogram (exact, the
    /// dual of [`HistogramSnapshot::merge`]): bucket counts, count, and
    /// sum add; min/max widen. This is how a job-level registry absorbs
    /// per-worker histograms without losing quantile fidelity.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        if snap.is_empty() {
            return;
        }
        for (idx, &c) in snap.counts.iter().enumerate() {
            if c > 0 {
                self.buckets[idx].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.min.fetch_min(snap.min, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while counts.last() == Some(&0) {
            counts.pop();
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

/// A plain, mergeable copy of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts with trailing zero buckets trimmed.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the observed values (exact; the sum is tracked exactly).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The estimated `q`-quantile (`0.0 ..= 1.0`) of the recorded values.
    ///
    /// Uses the nearest-rank definition on bucket midpoints and clamps the
    /// estimate into the exact observed `[min, max]`, so the relative
    /// error vs. the exact nearest-rank percentile is bounded by the
    /// bucket width: at most 1/32 (~3.1%).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds another snapshot's buckets into this one (exact merge).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        let was_empty = self.count == 0;
        self.count += other.count;
        self.sum += other.sum;
        if !other.is_empty() {
            self.min = if was_empty {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named map of counters, gauges, and histograms.
///
/// Lookup/creation takes an `RwLock` once; updates then go through the
/// returned `Arc` handles without touching the registry. Names embed
/// labels as `base{key=value,key2=value2}` — see [`render_prometheus`]
/// for how they are exposed.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    ///
    /// Panics if `name` is already registered as a different metric kind
    /// (a programming error in instrumentation code).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Metric::Counter(c)) = self.metrics.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.metrics.write().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Metric::Gauge(g)) = self.metrics.read().unwrap().get(name) {
            return Arc::clone(g);
        }
        let mut map = self.metrics.write().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(Metric::Histogram(h)) = self.metrics.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        let mut map = self.metrics.write().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Folds `samples` (typically another registry's
    /// [`MetricRegistry::snapshot`]) into this registry, tagging every
    /// metric with an extra `label_key=label_value` inline label.
    ///
    /// Counters add, gauges adopt the sample's value, histograms merge
    /// exactly bucket by bucket. The label keeps per-worker series
    /// distinct, so the merged registry flows through the existing JSONL
    /// and Prometheus paths unchanged while remaining attributable. Fold
    /// each worker snapshot exactly once: merging is additive for
    /// counters and histograms.
    pub fn merge(&self, samples: &[MetricSample], label_key: &str, label_value: &str) {
        for sample in samples {
            let name = add_label(&sample.name, label_key, label_value);
            match &sample.value {
                SampleValue::Counter(v) => self.counter(&name).add(*v),
                SampleValue::Gauge(v) => self.gauge(&name).set(*v),
                SampleValue::Histogram(h) => self.histogram(&name).merge_snapshot(h),
            }
        }
    }

    /// Copies every metric into a name-sorted sample list.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        self.metrics
            .read()
            .unwrap()
            .iter()
            .map(|(name, metric)| MetricSample {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }
}

/// Appends `key=value` to a registry name's inline label block,
/// creating the block when the name has none.
fn add_label(name: &str, key: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(head) if head.ends_with('{') => format!("{head}{key}={value}}}"),
        Some(head) => format!("{head},{key}={value}}}"),
        None => format!("{name}{{{key}={value}}}"),
    }
}

/// One named metric value captured by [`MetricRegistry::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSample {
    /// Registry name, `base{key=value,...}`.
    pub name: String,
    /// The captured value.
    pub value: SampleValue,
}

/// The value part of a [`MetricSample`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// Monotonic counter.
    Counter(u64),
    /// Point-in-time gauge.
    Gauge(i64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// One structured trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since [`Telemetry`] creation.
    pub nanos: u64,
    /// Event kind, e.g. `"ett"`.
    pub kind: &'static str,
    /// Free-form origin tag, e.g. `"median/p0"`.
    pub tag: String,
    /// Named integer payload fields.
    pub fields: Vec<(&'static str, i64)>,
}

/// A bounded ring of [`TraceEvent`]s.
///
/// Full ring drops the oldest event (counted in `dropped`) rather than
/// blocking or growing; the JSONL writer drains it periodically.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

/// Default flight-recorder capacity.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Removes and returns all buffered events.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().drain(..).collect()
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Telemetry handle
// ---------------------------------------------------------------------------

/// The shared telemetry handle of one running job (or server).
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricRegistry,
    recorder: FlightRecorder,
    epoch: Instant,
    trace: Mutex<Option<crate::trace::TraceHandle>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Creates a telemetry handle with the default ring capacity.
    pub fn new() -> Self {
        Telemetry::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Creates a telemetry handle with an explicit ring capacity.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Telemetry {
            registry: MetricRegistry::new(),
            recorder: FlightRecorder::new(capacity),
            epoch: Instant::now(),
            trace: Mutex::new(None),
        }
    }

    /// Creates a shared handle.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Telemetry::new())
    }

    /// The metric registry.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Nanoseconds since this handle was created.
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Records a trace event stamped with [`Telemetry::now_nanos`].
    pub fn event(&self, kind: &'static str, tag: &str, fields: Vec<(&'static str, i64)>) {
        self.recorder.record(TraceEvent {
            nanos: self.now_nanos(),
            kind,
            tag: tag.to_string(),
            fields,
        });
    }

    /// Installs the span tracer this job's threads, stores, and I/O
    /// rings record into (see [`crate::trace`]). Installing is what
    /// turns tracing on for everything reached through this handle.
    pub fn set_trace(&self, handle: crate::trace::TraceHandle) {
        *self.trace.lock().expect("trace handle lock") = Some(handle);
    }

    /// The installed span tracer, if any.
    pub fn trace(&self) -> Option<crate::trace::TraceHandle> {
        self.trace.lock().expect("trace handle lock").clone()
    }
}

// ---------------------------------------------------------------------------
// JSONL exposition
// ---------------------------------------------------------------------------

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders one `{"type":"snapshot",...}` JSONL line (no trailing newline).
///
/// Histograms are summarized (count/sum/min/max plus p50/p90/p99); the
/// full bucket vectors stay in-process and on the wire protocol, where
/// mergeability matters.
pub fn snapshot_json(seq: u64, uptime_ms: u64, samples: &[MetricSample]) -> String {
    let mut out = String::with_capacity(256 + samples.len() * 64);
    out.push_str(&format!(
        "{{\"type\":\"snapshot\",\"seq\":{seq},\"uptime_ms\":{uptime_ms},\"metrics\":{{"
    ));
    for (i, sample) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape(&mut out, &sample.name);
        out.push_str("\":");
        match &sample.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("{{\"kind\":\"counter\",\"value\":{v}}}"));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!("{{\"kind\":\"gauge\",\"value\":{v}}}"));
            }
            SampleValue::Histogram(h) => {
                out.push_str(&format!(
                    "{{\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                     \"p50\":{},\"p90\":{},\"p99\":{}}}",
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                ));
            }
        }
    }
    out.push_str("}}");
    out
}

/// Renders one `{"type":"event",...}` JSONL line (no trailing newline).
pub fn event_json(event: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push_str(&format!(
        "{{\"type\":\"event\",\"kind\":\"{}\",\"tag\":\"",
        event.kind
    ));
    json_escape(&mut out, &event.tag);
    out.push_str(&format!("\",\"nanos\":{},\"fields\":{{", event.nanos));
    for (i, (name, value)) in event.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push_str("}}");
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (for schema validation and tests)
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are kept as `f64`; every integer this
/// module emits below 2^53 round-trips exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer value, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|n| n as i64)
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the plain-ASCII run up to the next
                    // quote, escape, or multi-byte sequence; validating
                    // from here to EOF per character would be quadratic
                    // in the document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b >= 0x80 {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.pos > start {
                        out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                    } else {
                        // Multi-byte lead: decode one scalar from a
                        // bounded window (UTF-8 is at most 4 bytes).
                        let end = (self.pos + 4).min(self.bytes.len());
                        let window = &self.bytes[self.pos..end];
                        let valid = match std::str::from_utf8(window) {
                            Ok(s) => s,
                            Err(e) if e.valid_up_to() > 0 => {
                                std::str::from_utf8(&window[..e.valid_up_to()]).unwrap()
                            }
                            Err(e) => return Err(format!("invalid UTF-8: {e}")),
                        };
                        let c = valid.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }
}

/// Parses one JSON document (objects, arrays, strings, numbers, bools,
/// null). Rejects trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing bytes at {}", parser.pos));
    }
    Ok(value)
}

/// Validates one telemetry JSONL line against the emitted schema.
///
/// Accepted shapes:
/// - `{"type":"snapshot","seq":N,"uptime_ms":N,"metrics":{name:{"kind":..},..}}`
/// - `{"type":"event","kind":S,"tag":S,"nanos":N,"fields":{name:N,..}}`
pub fn validate_jsonl_line(line: &str) -> Result<(), String> {
    let doc = parse_json(line)?;
    let typ = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or("missing \"type\"")?;
    match typ {
        "snapshot" => {
            doc.get("seq")
                .and_then(Json::as_f64)
                .ok_or("snapshot missing numeric \"seq\"")?;
            doc.get("uptime_ms")
                .and_then(Json::as_f64)
                .ok_or("snapshot missing numeric \"uptime_ms\"")?;
            let metrics = doc
                .get("metrics")
                .and_then(Json::as_obj)
                .ok_or("snapshot missing object \"metrics\"")?;
            for (name, value) in metrics {
                let kind = value
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("metric {name:?} missing \"kind\""))?;
                let required: &[&str] = match kind {
                    "counter" | "gauge" => &["value"],
                    "histogram" => &["count", "sum", "min", "max", "p50", "p90", "p99"],
                    other => return Err(format!("metric {name:?} has unknown kind {other:?}")),
                };
                for field in required {
                    value
                        .get(field)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("metric {name:?} missing numeric {field:?}"))?;
                }
            }
            Ok(())
        }
        "event" => {
            doc.get("kind")
                .and_then(Json::as_str)
                .ok_or("event missing string \"kind\"")?;
            doc.get("tag")
                .and_then(Json::as_str)
                .ok_or("event missing string \"tag\"")?;
            doc.get("nanos")
                .and_then(Json::as_f64)
                .ok_or("event missing numeric \"nanos\"")?;
            let fields = doc
                .get("fields")
                .and_then(Json::as_obj)
                .ok_or("event missing object \"fields\"")?;
            for (name, value) in fields {
                value
                    .as_f64()
                    .ok_or_else(|| format!("event field {name:?} is not a number"))?;
            }
            Ok(())
        }
        other => Err(format!("unknown line type {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Prometheus text format 0.0.4
// ---------------------------------------------------------------------------

fn prom_sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Splits a registry name `base{k=v,k2=v2}` into the base and its label
/// pairs.
fn split_labels(name: &str) -> (String, Vec<(String, String)>) {
    match name.split_once('{') {
        None => (prom_sanitize(name), Vec::new()),
        Some((base, rest)) => {
            let rest = rest.strip_suffix('}').unwrap_or(rest);
            let labels = rest
                .split(',')
                .filter(|part| !part.is_empty())
                .map(|part| match part.split_once('=') {
                    Some((k, v)) => (prom_sanitize(k), v.to_string()),
                    None => (prom_sanitize(part), String::new()),
                })
                .collect();
            (prom_sanitize(base), labels)
        }
    }
}

fn prom_label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            let mut escaped = String::new();
            for c in v.chars() {
                match c {
                    '\\' => escaped.push_str("\\\\"),
                    '"' => escaped.push_str("\\\""),
                    '\n' => escaped.push_str("\\n"),
                    c => escaped.push(c),
                }
            }
            format!("{k}=\"{escaped}\"")
        })
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders samples as Prometheus text exposition format 0.0.4.
///
/// Registry names gain a `flowkv_` namespace prefix; inline labels become
/// proper Prometheus labels; histograms are rendered as `summary` metrics
/// with `quantile` labels plus `_sum` and `_count` series.
pub fn render_prometheus(samples: &[MetricSample]) -> String {
    let mut out = String::with_capacity(samples.len() * 96);
    let mut typed: BTreeMap<String, &'static str> = BTreeMap::new();
    let mut sorted: Vec<&MetricSample> = samples.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    for sample in sorted {
        let (base, labels) = split_labels(&sample.name);
        let full = format!("flowkv_{base}");
        let kind = match &sample.value {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram(_) => "summary",
        };
        match typed.get(&full) {
            None => {
                typed.insert(full.clone(), kind);
                out.push_str(&format!("# TYPE {full} {kind}\n"));
            }
            // One base name must keep one kind; skip conflicting samples.
            Some(&seen) if seen != kind => continue,
            Some(_) => {}
        }
        match &sample.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("{full}{} {v}\n", prom_label_block(&labels, None)));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!("{full}{} {v}\n", prom_label_block(&labels, None)));
            }
            SampleValue::Histogram(h) => {
                for (q, qv) in [
                    ("0.5", h.quantile(0.50)),
                    ("0.9", h.quantile(0.90)),
                    ("0.99", h.quantile(0.99)),
                ] {
                    out.push_str(&format!(
                        "{full}{} {qv}\n",
                        prom_label_block(&labels, Some(("quantile", q)))
                    ));
                }
                out.push_str(&format!(
                    "{full}_sum{} {}\n",
                    prom_label_block(&labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{full}_count{} {}\n",
                    prom_label_block(&labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_body(body: &str) -> bool {
    // body is the text between '{' and '}': k="v",k2="v2"
    let mut rest = body;
    if rest.is_empty() {
        return true;
    }
    loop {
        let Some(eq) = rest.find('=') else {
            return false;
        };
        if !valid_metric_name(&rest[..eq]) {
            return false;
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return false;
        }
        // Find the closing unescaped quote.
        let bytes = rest.as_bytes();
        let mut i = 1;
        loop {
            match bytes.get(i) {
                None => return false,
                Some(b'\\') => i += 2,
                Some(b'"') => break,
                Some(_) => i += 1,
            }
        }
        rest = &rest[i + 1..];
        match rest.strip_prefix(',') {
            Some(tail) => rest = tail,
            None => return rest.is_empty(),
        }
    }
}

/// Checks that `text` is well-formed Prometheus 0.0.4 exposition output:
/// every line is a comment (`# HELP` / `# TYPE`) or a sample of the form
/// `name{labels} value [timestamp]`.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            match words.next() {
                Some("TYPE") => {
                    let name = words.next().unwrap_or("");
                    let kind = words.next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return err("bad TYPE metric name");
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return err("bad TYPE kind");
                    }
                }
                Some("HELP") => {}
                _ => {} // free-form comments are legal
            }
            continue;
        }
        // name{labels} value [timestamp]
        let (name_part, value_part) = match line.find('{') {
            Some(brace) => {
                let Some(close) = line.rfind('}') else {
                    return err("unclosed label block");
                };
                if close < brace || !valid_label_body(&line[brace + 1..close]) {
                    return err("bad label block");
                }
                (&line[..brace], line[close + 1..].trim_start())
            }
            None => match line.split_once(' ') {
                Some((n, v)) => (n, v.trim_start()),
                None => return err("missing value"),
            },
        };
        if !valid_metric_name(name_part) {
            return err("bad metric name");
        }
        let mut fields = value_part.split_whitespace();
        let Some(value) = fields.next() else {
            return err("missing value");
        };
        let value_ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
        if !value_ok {
            return err("bad sample value");
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return err("bad timestamp");
            }
        }
        if fields.next().is_some() {
            return err("trailing tokens");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        let mut v: u64 = 1;
        while v < u64::MAX / 3 {
            for probe in [v, v + v / 3, v.saturating_mul(2).saturating_sub(1)] {
                let idx = bucket_index(probe);
                let rep = bucket_value(idx);
                let err = rep.abs_diff(probe) as f64 / probe.max(1) as f64;
                assert!(
                    err <= 1.0 / 32.0,
                    "value {probe} -> bucket {idx} -> {rep} (err {err})"
                );
            }
            v = v.saturating_mul(2);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(
            bucket_value(bucket_index(u64::MAX)),
            bucket_value(NUM_BUCKETS - 1)
        );
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v: u64 = 0;
        while v < 1 << 40 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            assert!(idx < NUM_BUCKETS);
            last = idx;
            v = v * 2 + 1;
        }
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 17, 63] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 63);
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(0.5), 5);
        assert_eq!(snap.quantile(1.0), 63);
        assert_eq!(snap.sum, 86);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for i in 0..1000u64 {
            let v = i * i * 37 + 11;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn quantile_error_vs_exact_is_bounded() {
        let h = Histogram::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut x: u64 = 987654321;
        for _ in 0..5000 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 10_000_000;
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        let snap = h.snapshot();
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let est = snap.quantile(q);
            let err = est.abs_diff(truth) as f64 / truth.max(1) as f64;
            assert!(
                err <= 1.0 / 32.0,
                "q={q}: exact {truth}, est {est}, err {err}"
            );
        }
    }

    #[test]
    fn registry_returns_same_handle_and_snapshots_sorted() {
        let reg = MetricRegistry::new();
        let c1 = reg.counter("b_counter");
        let c2 = reg.counter("b_counter");
        c1.add(3);
        c2.add(4);
        reg.gauge("a_gauge").set(-5);
        reg.histogram("c_hist").record(42);
        let samples = reg.snapshot();
        let names: Vec<&str> = samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a_gauge", "b_counter", "c_hist"]);
        assert_eq!(samples[1].value, SampleValue::Counter(7));
        assert_eq!(samples[0].value, SampleValue::Gauge(-5));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_change() {
        let reg = MetricRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_absorbs_snapshot_exactly() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for i in 0..500u64 {
            let v = i * 313 + 7;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge_snapshot(&b.snapshot());
        assert_eq!(a.snapshot(), both.snapshot());
        // Merging an empty snapshot changes nothing (min stays intact).
        a.merge_snapshot(&Histogram::new().snapshot());
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn registry_merge_labels_and_folds_workers() {
        let job = MetricRegistry::new();
        job.counter("tuples_total").add(5);
        let workers: Vec<MetricRegistry> = (0..3).map(|_| MetricRegistry::new()).collect();
        for (i, w) in workers.iter().enumerate() {
            w.counter("tuples_total{operator=src}")
                .add(10 * (i as u64 + 1));
            w.gauge("depth").set(i as i64);
            w.histogram("busy_nanos").record(100 * (i as u64 + 1));
        }
        for (i, w) in workers.iter().enumerate() {
            job.merge(&w.snapshot(), "worker", &i.to_string());
        }
        let samples = job.snapshot();
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name}: {samples:?}"))
                .value
                .clone()
        };
        // Existing labels keep their block; new labels gain one.
        assert_eq!(
            get("tuples_total{operator=src,worker=1}"),
            SampleValue::Counter(20)
        );
        assert_eq!(get("depth{worker=2}"), SampleValue::Gauge(2));
        match get("busy_nanos{worker=0}") {
            SampleValue::Histogram(h) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum, 100);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        // The unlabelled job-level series is untouched.
        assert_eq!(get("tuples_total"), SampleValue::Counter(5));
        // Merged output still validates on both exposition paths.
        validate_jsonl_line(&snapshot_json(0, 1, &samples)).unwrap();
        validate_prometheus(&render_prometheus(&samples)).unwrap();
    }

    #[test]
    fn merge_twice_is_additive_for_counters() {
        let job = MetricRegistry::new();
        let w = MetricRegistry::new();
        w.counter("c").add(3);
        job.merge(&w.snapshot(), "worker", "0");
        job.merge(&w.snapshot(), "worker", "0");
        assert_eq!(job.snapshot()[0].value, SampleValue::Counter(6));
    }

    #[test]
    fn flight_recorder_bounds_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record(TraceEvent {
                nanos: i,
                kind: "t",
                tag: String::new(),
                fields: vec![("i", i as i64)],
            });
        }
        assert_eq!(rec.dropped(), 2);
        let events = rec.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].nanos, 2);
        assert!(rec.is_empty());
    }

    #[test]
    fn jsonl_lines_validate_and_parse() {
        let telemetry = Telemetry::new();
        telemetry
            .registry()
            .counter("ops{operator=agg,partition=0}")
            .add(7);
        telemetry.registry().gauge("lag_ms").set(-12);
        let h = telemetry.registry().histogram("latency_nanos");
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        telemetry.event("ett", "agg/p0", vec![("predicted", 100), ("actual", 140)]);

        let line = snapshot_json(3, 250, &telemetry.registry().snapshot());
        validate_jsonl_line(&line).unwrap();
        let doc = parse_json(&line).unwrap();
        assert_eq!(doc.get("seq").and_then(Json::as_i64), Some(3));
        let metrics = doc.get("metrics").unwrap();
        let ops = metrics.get("ops{operator=agg,partition=0}").unwrap();
        assert_eq!(ops.get("value").and_then(Json::as_i64), Some(7));

        for event in telemetry.recorder().drain() {
            let line = event_json(&event);
            validate_jsonl_line(&line).unwrap();
            let doc = parse_json(&line).unwrap();
            assert_eq!(doc.get("kind").and_then(Json::as_str), Some("ett"));
            let fields = doc.get("fields").unwrap();
            assert_eq!(fields.get("actual").and_then(Json::as_i64), Some(140));
        }
    }

    #[test]
    fn jsonl_validator_rejects_malformed_lines() {
        assert!(validate_jsonl_line("not json").is_err());
        assert!(validate_jsonl_line("{\"type\":\"mystery\"}").is_err());
        assert!(validate_jsonl_line("{\"type\":\"snapshot\",\"seq\":1}").is_err());
        assert!(validate_jsonl_line(
            "{\"type\":\"snapshot\",\"seq\":1,\"uptime_ms\":2,\
             \"metrics\":{\"x\":{\"kind\":\"counter\"}}}"
        )
        .is_err());
        assert!(validate_jsonl_line(
            "{\"type\":\"event\",\"kind\":\"e\",\"tag\":\"\",\"nanos\":1,\"fields\":{}}"
        )
        .is_ok());
    }

    #[test]
    fn prometheus_rendering_validates_and_exposes_labels() {
        let reg = MetricRegistry::new();
        reg.counter("tuples_total{operator=source,partition=0}")
            .add(1234);
        reg.gauge("watermark_lag_ms{operator=agg,partition=1}")
            .set(-3);
        let h = reg.histogram("busy_nanos{operator=agg,partition=1}");
        h.record(50);
        h.record(5000);
        let text = render_prometheus(&reg.snapshot());
        validate_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE flowkv_tuples_total counter"));
        assert!(text.contains("flowkv_tuples_total{operator=\"source\",partition=\"0\"} 1234"));
        assert!(text.contains("# TYPE flowkv_busy_nanos summary"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("flowkv_busy_nanos_count{operator=\"agg\",partition=\"1\"} 2"));
        assert!(text.contains("flowkv_watermark_lag_ms{operator=\"agg\",partition=\"1\"} -3"));
    }

    #[test]
    fn prometheus_validator_rejects_bad_lines() {
        assert!(validate_prometheus("ok_metric 1\n").is_ok());
        assert!(validate_prometheus("bad metric name 1 2 3\n").is_err());
        assert!(validate_prometheus("metric{unclosed=\"v\" 1\n").is_err());
        assert!(validate_prometheus("metric{k=\"v\"} notanumber\n").is_err());
        assert!(validate_prometheus("# TYPE x bogus\n").is_err());
        assert!(validate_prometheus("m{a=\"x\",b=\"y\"} 2.5 1700000000\n").is_ok());
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let doc = parse_json(
            "{\"a\": [1, 2.5, -3e2], \"s\": \"q\\\"uo\\u0041te\", \"n\": null, \"b\": true}",
        )
        .unwrap();
        let arr = match doc.get("a") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("q\"uoAte"));
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{broken").is_err());
    }
}
