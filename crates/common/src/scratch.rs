//! Unique scratch directories for tests, examples, and benchmarks.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Result, StoreError};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named temporary directory removed on drop.
///
/// # Examples
///
/// ```
/// use flowkv_common::scratch::ScratchDir;
///
/// let dir = ScratchDir::new("doc").unwrap();
/// assert!(dir.path().exists());
/// ```
pub struct ScratchDir {
    path: PathBuf,
    keep: bool,
}

impl ScratchDir {
    /// Creates a fresh directory under the system temp dir.
    ///
    /// The directory name embeds `label`, the process id, and a
    /// process-wide counter, so concurrent tests never collide.
    pub fn new(label: &str) -> Result<Self> {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("flowkv-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).map_err(|e| StoreError::io("scratch create", e))?;
        Ok(ScratchDir { path, keep: false })
    }

    /// Path of the directory.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Prevents removal on drop; returns the path for later inspection.
    pub fn into_kept(mut self) -> PathBuf {
        self.keep = true;
        self.path.clone()
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        if !self.keep {
            // Best-effort cleanup; leaking a temp dir is not worth a panic
            // during unwinding.
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_paths() {
        let a = ScratchDir::new("t").unwrap();
        let b = ScratchDir::new("t").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn removed_on_drop() {
        let path = {
            let d = ScratchDir::new("t").unwrap();
            d.path().to_path_buf()
        };
        assert!(!path.exists());
    }

    #[test]
    fn kept_when_requested() {
        let d = ScratchDir::new("t").unwrap();
        let path = d.into_kept();
        assert!(path.exists());
        std::fs::remove_dir_all(&path).unwrap();
    }
}
