//! Causal span tracing with Chrome-trace export and critical-path
//! latency attribution.
//!
//! The telemetry registry (PR 3) answers *how much* — counters and
//! histograms aggregated over a run. This module answers *where the
//! time went* for an individual tuple batch: a sampled batch carries a
//! [`TraceCtx`] from the source through exchange, operator `on_batch`,
//! every store call, and (via submission tagging) into background
//! [`ioring`](crate::ioring) jobs, so a p999 spike decomposes into
//! queue wait, compute, store reads, prefetch-miss stalls, barrier
//! alignment, and exchange backpressure.
//!
//! Design rules, in decreasing order of importance:
//!
//! 1. **Off means free.** Tracing is off unless a [`Tracer`] is
//!    installed *and* the batch was sampled; untraced calls cost one
//!    thread-local read.
//! 2. **One clock, per-thread rings.** Every [`SpanRecorder`] shares
//!    the tracer's monotonic epoch but owns its ring
//!    (the same bounded-ring discipline as
//!    [`FlightRecorder`](crate::telemetry::FlightRecorder): oldest
//!    events drop first, drops are counted, never blocking the hot
//!    path on a global lock).
//! 3. **Timestamps never cross threads.** A begin/end span measures
//!    work on the recording thread only, so timestamps are monotone
//!    per tid by construction. Cross-thread intervals (channel queue
//!    wait, prefetch lateness) are recorded as *instant* events
//!    carrying the measured duration as an argument.
//!
//! Export is the Chrome trace-event JSON format (`ph: B/E/i/M`), which
//! Perfetto and `chrome://tracing` load directly: one `pid` per worker
//! process/shard, one `tid` per operator or ring thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::backend::{AggregateKind, KeyFilter, StateBackend, WindowChunk};
use crate::error::Result;
use crate::telemetry::{parse_json, Json, Telemetry};
use crate::types::{Timestamp, WindowId};

/// Default per-thread span ring capacity (events, not spans; a span is
/// one begin plus one end event).
pub const DEFAULT_SPAN_RING_CAPACITY: usize = 65_536;

/// The causal context a sampled batch carries: the trace it belongs to
/// and the span to parent new work under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id; one per sampled source batch, never zero.
    pub trace: u64,
    /// Current parent span id; zero means "root of the trace".
    pub span: u64,
    /// Tracer nanos at which the trace was born (the source sealed the
    /// batch). Rides in the context so any hop — in particular the sink,
    /// several exchanges downstream — can stamp the end-to-end total
    /// without a side channel.
    pub born: u64,
}

/// Where an event sits in a span's lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanPhase {
    /// Span opened on the recording thread.
    Begin,
    /// Span closed on the recording thread.
    End,
    /// A point event (Chrome `ph: "i"`).
    Instant,
}

/// One recorded event. Names and categories are `&'static str` so the
/// hot path never allocates for the common case.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Begin / end / instant.
    pub phase: SpanPhase,
    /// Nanoseconds since the tracer's epoch (one clock for all threads).
    pub nanos: u64,
    /// Span or event name, e.g. `"on_batch"`.
    pub name: &'static str,
    /// Attribution category: one of [`STAGES`] plus `"source"`, `"sink"`,
    /// `"io"`, `"recovery"`, `"migrate"`.
    pub cat: &'static str,
    /// Span id (shared by the begin and end events); zero for instants.
    pub id: u64,
    /// Parent span id; zero for roots.
    pub parent: u64,
    /// Owning trace id; zero for lifecycle spans outside any trace.
    pub trace: u64,
    /// Small integer arguments (durations, counts, barrier ids).
    pub args: Vec<(&'static str, i64)>,
}

/// Attribution stages reported by [`attribution`], in table order.
/// `other` is the residual of the end-to-end time no stage claimed.
pub const STAGES: [&str; 7] = [
    "queue",
    "exchange",
    "compute",
    "store",
    "prefetch_stall",
    "barrier",
    "other",
];

struct TracerCore {
    epoch: Instant,
    next_span: AtomicU64,
    next_trace: AtomicU64,
    next_tid: AtomicU64,
    dropped: AtomicU64,
}

/// A handle a thread uses to record spans. Cheap to clone via `Arc`;
/// the ring itself is only contended by the export path.
pub struct SpanRecorder {
    pid: u32,
    tid: u32,
    name: String,
    capacity: usize,
    ring: Mutex<VecDeque<SpanEvent>>,
    core: Arc<TracerCore>,
}

/// An open span returned by [`SpanRecorder::begin`]; pass it back to
/// [`SpanRecorder::end`].
#[derive(Clone, Copy, Debug)]
pub struct OpenSpan {
    /// The span's id.
    pub id: u64,
    /// The owning trace (zero for lifecycle spans).
    pub trace: u64,
}

impl SpanRecorder {
    /// The worker/shard this thread belongs to (Chrome `pid`).
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// The thread lane id (Chrome `tid`), unique within the tracer.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Human-readable thread name, e.g. `"window/p0"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nanoseconds since the tracer epoch.
    pub fn now_nanos(&self) -> u64 {
        self.core.epoch.elapsed().as_nanos() as u64
    }

    fn push(&self, event: SpanEvent) {
        let mut ring = self.ring.lock().expect("span ring lock");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.core.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Opens a span under `ctx` (or as a root when `ctx` is `None`).
    pub fn begin(&self, name: &'static str, cat: &'static str, ctx: Option<TraceCtx>) -> OpenSpan {
        self.begin_with(name, cat, ctx, Vec::new())
    }

    /// [`SpanRecorder::begin`] with arguments on the begin event.
    pub fn begin_with(
        &self,
        name: &'static str,
        cat: &'static str,
        ctx: Option<TraceCtx>,
        args: Vec<(&'static str, i64)>,
    ) -> OpenSpan {
        let id = self.core.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        let (trace, parent) = match ctx {
            Some(c) => (c.trace, c.span),
            None => (0, 0),
        };
        self.push(SpanEvent {
            phase: SpanPhase::Begin,
            nanos: self.now_nanos(),
            name,
            cat,
            id,
            parent,
            trace,
            args,
        });
        OpenSpan { id, trace }
    }

    /// Closes `span`.
    pub fn end(&self, span: OpenSpan, name: &'static str, cat: &'static str) {
        self.end_with(span, name, cat, Vec::new());
    }

    /// Closes `span` with arguments on the end event.
    pub fn end_with(
        &self,
        span: OpenSpan,
        name: &'static str,
        cat: &'static str,
        args: Vec<(&'static str, i64)>,
    ) {
        self.push(SpanEvent {
            phase: SpanPhase::End,
            nanos: self.now_nanos(),
            name,
            cat,
            id: span.id,
            parent: 0,
            trace: span.trace,
            args,
        });
    }

    /// Records a point event.
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        ctx: Option<TraceCtx>,
        args: Vec<(&'static str, i64)>,
    ) {
        let (trace, parent) = match ctx {
            Some(c) => (c.trace, c.span),
            None => (0, 0),
        };
        self.push(SpanEvent {
            phase: SpanPhase::Instant,
            nanos: self.now_nanos(),
            name,
            cat,
            id: 0,
            parent,
            trace,
            args,
        });
    }

    /// Clones the ring's current contents, oldest first.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        self.ring
            .lock()
            .expect("span ring lock")
            .iter()
            .cloned()
            .collect()
    }

    fn drain(&self) -> Vec<SpanEvent> {
        self.ring
            .lock()
            .expect("span ring lock")
            .drain(..)
            .collect()
    }
}

/// One thread's recorded events, as returned by [`Tracer::snapshot`].
#[derive(Clone, Debug)]
pub struct ThreadSpans {
    /// Worker/shard id.
    pub pid: u32,
    /// Thread lane id.
    pub tid: u32,
    /// Thread name.
    pub name: String,
    /// Events, oldest first.
    pub events: Vec<SpanEvent>,
}

/// The job-wide tracer: allocates trace/span ids from one sequence,
/// stamps every event against one monotonic epoch, and registers the
/// per-thread recorders so export can find them.
pub struct Tracer {
    core: Arc<TracerCore>,
    capacity: usize,
    recorders: Mutex<Vec<Arc<SpanRecorder>>>,
}

impl Tracer {
    /// A shared tracer with the default ring capacity.
    pub fn new() -> Arc<Tracer> {
        Tracer::with_capacity(DEFAULT_SPAN_RING_CAPACITY)
    }

    /// A shared tracer whose per-thread rings hold `capacity` events.
    pub fn with_capacity(capacity: usize) -> Arc<Tracer> {
        Arc::new(Tracer {
            core: Arc::new(TracerCore {
                epoch: Instant::now(),
                next_span: AtomicU64::new(0),
                next_trace: AtomicU64::new(0),
                next_tid: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
            capacity: capacity.max(16),
            recorders: Mutex::new(Vec::new()),
        })
    }

    /// Nanoseconds since the tracer's epoch.
    pub fn now_nanos(&self) -> u64 {
        self.core.epoch.elapsed().as_nanos() as u64
    }

    /// Allocates a fresh trace id (never zero).
    pub fn next_trace_id(&self) -> u64 {
        self.core.next_trace.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Registers a recorder for the calling thread under worker `pid`.
    pub fn thread(self: &Arc<Self>, pid: u32, name: &str) -> Arc<SpanRecorder> {
        let tid = self.core.next_tid.fetch_add(1, Ordering::Relaxed) as u32 + 1;
        let recorder = Arc::new(SpanRecorder {
            pid,
            tid,
            name: name.to_string(),
            capacity: self.capacity,
            ring: Mutex::new(VecDeque::new()),
            core: Arc::clone(&self.core),
        });
        self.recorders
            .lock()
            .expect("tracer registry lock")
            .push(Arc::clone(&recorder));
        recorder
    }

    /// Events dropped across all rings since the tracer was built.
    pub fn dropped(&self) -> u64 {
        self.core.dropped.load(Ordering::Relaxed)
    }

    /// Clones every thread's events without consuming them — what the
    /// serving layer reads from a live job.
    pub fn snapshot(&self) -> Vec<ThreadSpans> {
        self.recorders
            .lock()
            .expect("tracer registry lock")
            .iter()
            .map(|r| ThreadSpans {
                pid: r.pid,
                tid: r.tid,
                name: r.name.clone(),
                events: r.snapshot(),
            })
            .collect()
    }

    /// Takes every thread's events, leaving the rings empty.
    pub fn drain(&self) -> Vec<ThreadSpans> {
        self.recorders
            .lock()
            .expect("tracer registry lock")
            .iter()
            .map(|r| ThreadSpans {
                pid: r.pid,
                tid: r.tid,
                name: r.name.clone(),
                events: r.drain(),
            })
            .collect()
    }

    /// Spans currently open (begun, not yet ended) across all threads —
    /// the post-mortem payload the supervisor dumps on a crash.
    pub fn open_spans(&self) -> Vec<(u32, u32, SpanEvent)> {
        let mut open = Vec::new();
        for t in self.snapshot() {
            let mut begun: Vec<SpanEvent> = Vec::new();
            for ev in t.events {
                match ev.phase {
                    SpanPhase::Begin => begun.push(ev),
                    SpanPhase::End => begun.retain(|b| b.id != ev.id),
                    SpanPhase::Instant => {}
                }
            }
            open.extend(begun.into_iter().map(|ev| (t.pid, t.tid, ev)));
        }
        open
    }
}

/// A tracer plus the worker id its threads register under; this is what
/// rides on [`Telemetry`] so stores and rings reached only through
/// their telemetry handle can still record spans.
#[derive(Clone)]
pub struct TraceHandle {
    /// The shared tracer.
    pub tracer: Arc<Tracer>,
    /// Chrome `pid` for threads registered through this handle.
    pub pid: u32,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("pid", &self.pid)
            .finish()
    }
}

impl TraceHandle {
    /// Registers the calling thread.
    pub fn thread(&self, name: &str) -> Arc<SpanRecorder> {
        self.tracer.thread(self.pid, name)
    }
}

// ---------------------------------------------------------------------
// Thread-local active context
// ---------------------------------------------------------------------

/// Store operations cheap and frequent enough that a span per call
/// would dominate the call itself: a per-tuple append is ~100ns of
/// buffer work, while a span is two ring pushes plus two clock reads.
/// These accumulate per kind inside the active scope and flush as one
/// `store`-category instant each when the scope ends, carrying
/// `("nanos", total)` and `("count", n)` — the attribution pass charges
/// the aggregate exactly as it would the individual spans.
const COALESCED_OPS: [&str; 5] = [
    "store_append",
    "store_take_values",
    "store_peek_values",
    "store_take_agg",
    "store_put_agg",
];

struct Active {
    recorder: Arc<SpanRecorder>,
    ctx: TraceCtx,
    /// (nanos, calls) per entry of [`COALESCED_OPS`].
    acc: [(u64, u64); COALESCED_OPS.len()],
}

thread_local! {
    static ACTIVE: std::cell::RefCell<Option<Active>> = const { std::cell::RefCell::new(None) };
}

/// Restores the previously active context on drop. Not `Send`: the
/// scope must end on the thread that entered it.
pub struct ActiveScope {
    prev: Option<Active>,
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Makes `ctx` the calling thread's active trace context; store calls,
/// prefetch instants, and ioring submissions made while the scope is
/// alive attach to it.
pub fn enter(recorder: &Arc<SpanRecorder>, ctx: TraceCtx) -> ActiveScope {
    let prev = ACTIVE.with(|a| {
        a.borrow_mut().replace(Active {
            recorder: Arc::clone(recorder),
            ctx,
            acc: [(0, 0); COALESCED_OPS.len()],
        })
    });
    ActiveScope {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for ActiveScope {
    fn drop(&mut self) {
        let out = ACTIVE.with(|a| std::mem::replace(&mut *a.borrow_mut(), self.prev.take()));
        // Flush the scope's coalesced store-op aggregates under the
        // context it was entered with (end_here restored `ctx.span`).
        if let Some(active) = out {
            for (name, &(nanos, count)) in COALESCED_OPS.iter().zip(&active.acc) {
                if count > 0 {
                    active.recorder.instant(
                        name,
                        "store",
                        Some(active.ctx),
                        vec![("nanos", nanos as i64), ("count", count as i64)],
                    );
                }
            }
        }
    }
}

fn coalesced_begin() -> Option<u64> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|act| act.recorder.now_nanos()))
}

fn coalesced_end(idx: usize, started: Option<u64>) {
    let Some(started) = started else { return };
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow_mut().as_mut() {
            let dt = active.recorder.now_nanos().saturating_sub(started);
            active.acc[idx].0 += dt;
            active.acc[idx].1 += 1;
        }
    });
}

/// The calling thread's active context, if a sampled batch is in
/// flight.
pub fn current() -> Option<TraceCtx> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|s| s.ctx))
}

/// Records a point event against the active context; no-op when the
/// thread is untraced.
pub fn instant_here(name: &'static str, cat: &'static str, args: &[(&'static str, i64)]) {
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow().as_ref() {
            active
                .recorder
                .instant(name, cat, Some(active.ctx), args.to_vec());
        }
    });
}

/// A span opened by [`begin_here`]; close it with [`end_here`].
pub struct HereSpan {
    open: OpenSpan,
    name: &'static str,
    cat: &'static str,
    prev_span: u64,
}

/// Opens a child span of the active context and makes it the new
/// parent for nested work; returns `None` when the thread is untraced.
pub fn begin_here(name: &'static str, cat: &'static str) -> Option<HereSpan> {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let active = slot.as_mut()?;
        let open = active.recorder.begin(name, cat, Some(active.ctx));
        let prev_span = active.ctx.span;
        active.ctx.span = open.id;
        Some(HereSpan {
            open,
            name,
            cat,
            prev_span,
        })
    })
}

/// Closes a span opened by [`begin_here`], restoring the previous
/// parent. Accepts `None` so call sites stay branch-free.
pub fn end_here(span: Option<HereSpan>, args: &[(&'static str, i64)]) {
    let Some(span) = span else { return };
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        if let Some(active) = slot.as_mut() {
            active.ctx.span = span.prev_span;
            active
                .recorder
                .end_with(span.open, span.name, span.cat, args.to_vec());
        }
    });
}

// ---------------------------------------------------------------------
// Traced store wrapper
// ---------------------------------------------------------------------

/// Wraps any [`StateBackend`] so every store call made while a sampled
/// batch is active records a `store`-category span. When the thread is
/// untraced the wrapper costs one thread-local read per call.
pub struct TracedBackend {
    inner: Box<dyn StateBackend>,
}

impl TracedBackend {
    /// Wraps `inner`.
    pub fn wrap(inner: Box<dyn StateBackend>) -> Box<dyn StateBackend> {
        Box::new(TracedBackend { inner })
    }
}

macro_rules! traced_op {
    ($self:ident, $name:literal, $cat:literal, $call:expr) => {{
        let span = begin_here($name, $cat);
        let out = $call;
        end_here(span, &[("ok", out.is_ok() as i64)]);
        out
    }};
}

/// Per-tuple-frequency ops: accumulate into the active scope instead of
/// recording a span per call (see [`COALESCED_OPS`]).
macro_rules! coalesced_op {
    ($idx:expr, $call:expr) => {{
        let started = coalesced_begin();
        let out = $call;
        coalesced_end($idx, started);
        out
    }};
}

impl StateBackend for TracedBackend {
    fn append(&mut self, key: &[u8], window: WindowId, value: &[u8], ts: Timestamp) -> Result<()> {
        coalesced_op!(0, self.inner.append(key, window, value, ts))
    }

    fn get_window_chunk(&mut self, window: WindowId) -> Result<Option<WindowChunk>> {
        traced_op!(
            self,
            "store_get_window",
            "store",
            self.inner.get_window_chunk(window)
        )
    }

    fn take_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        coalesced_op!(1, self.inner.take_values(key, window))
    }

    fn peek_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        coalesced_op!(2, self.inner.peek_values(key, window))
    }

    fn take_aggregate(&mut self, key: &[u8], window: WindowId) -> Result<Option<Vec<u8>>> {
        coalesced_op!(3, self.inner.take_aggregate(key, window))
    }

    fn put_aggregate(&mut self, key: &[u8], window: WindowId, aggregate: &[u8]) -> Result<()> {
        coalesced_op!(4, self.inner.put_aggregate(key, window, aggregate))
    }

    fn flush(&mut self) -> Result<()> {
        traced_op!(self, "store_flush", "store", self.inner.flush())
    }

    fn read_view(&mut self) -> Result<Option<crate::registry::StateView>> {
        self.inner.read_view()
    }

    fn extract_range(
        &mut self,
        in_range: KeyFilter<'_>,
        kind: AggregateKind,
    ) -> Result<Vec<crate::backend::StateEntry>> {
        self.inner.extract_range(in_range, kind)
    }

    fn inject_entries(&mut self, entries: Vec<crate::backend::StateEntry>) -> Result<()> {
        self.inner.inject_entries(entries)
    }

    fn advance_prefetch(&mut self, stream_time: Timestamp) -> Result<()> {
        traced_op!(
            self,
            "advance_prefetch",
            "prefetch",
            self.inner.advance_prefetch(stream_time)
        )
    }

    fn warm(&mut self, pairs: &[(&[u8], WindowId)]) -> Result<()> {
        traced_op!(self, "store_warm", "prefetch", self.inner.warm(pairs))
    }

    fn wants_warm(&self) -> bool {
        self.inner.wants_warm()
    }

    fn metrics(&self) -> Arc<crate::metrics::StoreMetrics> {
        self.inner.metrics()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn checkpoint(&mut self, dir: &std::path::Path) -> Result<()> {
        traced_op!(
            self,
            "store_checkpoint",
            "barrier",
            self.inner.checkpoint(dir)
        )
    }

    fn restore(&mut self, dir: &std::path::Path) -> Result<()> {
        self.inner.restore(dir)
    }

    fn close(&mut self) -> Result<()> {
        self.inner.close()
    }
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_args(out: &mut String, ev: &SpanEvent, parent: u64) {
    out.push_str(&format!(
        "{{\"span\":{},\"parent\":{},\"trace\":{}",
        ev.id, parent, ev.trace
    ));
    for (k, v) in &ev.args {
        out.push_str(&format!(",\"{}\":{}", json_escape(k), v));
    }
    out.push('}');
}

/// Serializes `threads` as Chrome trace-event JSON (the
/// `{"traceEvents": [...]}` envelope Perfetto loads).
///
/// Ring wraparound can leave an `End` whose `Begin` was evicted, and a
/// live snapshot can hold a `Begin` whose `End` has not happened; both
/// are dropped so the emitted file always has matching begin/end pairs
/// with stack discipline per tid. Parent ids that no longer resolve
/// (the parent's begin was evicted) are rewritten to zero.
pub fn chrome_trace_json(threads: &[ThreadSpans]) -> String {
    // First pass: which span ids survive with both events present?
    let mut emitted = std::collections::HashSet::new();
    for t in threads {
        let mut begun = std::collections::HashSet::new();
        for ev in &t.events {
            match ev.phase {
                SpanPhase::Begin => {
                    begun.insert(ev.id);
                }
                SpanPhase::End => {
                    if begun.contains(&ev.id) {
                        emitted.insert(ev.id);
                    }
                }
                SpanPhase::Instant => {}
            }
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    for t in threads {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                t.pid,
                t.tid,
                json_escape(&t.name)
            ),
            &mut first,
        );
        for ev in &t.events {
            let ts = ev.nanos as f64 / 1000.0;
            let parent = if emitted.contains(&ev.parent) {
                ev.parent
            } else {
                0
            };
            match ev.phase {
                SpanPhase::Begin | SpanPhase::End => {
                    if !emitted.contains(&ev.id) {
                        continue;
                    }
                    let ph = if ev.phase == SpanPhase::Begin {
                        "B"
                    } else {
                        "E"
                    };
                    let mut line = format!(
                        "{{\"ph\":\"{}\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"args\":",
                        ph, json_escape(ev.name), json_escape(ev.cat), t.pid, t.tid, ts
                    );
                    write_args(&mut line, ev, parent);
                    line.push('}');
                    push(line, &mut first);
                }
                SpanPhase::Instant => {
                    let mut line = format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"args\":",
                        json_escape(ev.name), json_escape(ev.cat), t.pid, t.tid, ts
                    );
                    write_args(&mut line, ev, parent);
                    line.push('}');
                    push(line, &mut first);
                }
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// A parsed Chrome trace event — the analyzer-side mirror of
/// [`SpanEvent`] with owned strings.
#[derive(Clone, Debug)]
pub struct ChromeEvent {
    /// `B`, `E`, or `i`.
    pub ph: char,
    /// Event name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Worker id.
    pub pid: u32,
    /// Thread lane.
    pub tid: u32,
    /// Nanoseconds (converted back from the microsecond `ts`).
    pub nanos: u64,
    /// Span id.
    pub span: u64,
    /// Parent span id.
    pub parent: u64,
    /// Trace id.
    pub trace: u64,
    /// Remaining integer args.
    pub args: Vec<(String, i64)>,
}

fn event_arg(obj: &Json, key: &str) -> u64 {
    obj.get("args")
        .and_then(|a| a.get(key))
        .and_then(|v| v.as_i64())
        .unwrap_or(0) as u64
}

/// Summary counts from a validated trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total events (including metadata).
    pub events: u64,
    /// Matched begin/end span pairs.
    pub spans: u64,
    /// Distinct pids.
    pub pids: u64,
    /// Distinct (pid, tid) lanes.
    pub lanes: u64,
}

/// Parses and schema-validates Chrome trace JSON: every event has the
/// required fields, begin/end events nest with stack discipline per
/// `(pid, tid)`, timestamps are monotone per lane, no span is left
/// open, and every nonzero parent id resolves to a span in the file.
pub fn validate_chrome_trace(text: &str) -> std::result::Result<ChromeTraceStats, String> {
    let events = parse_chrome_trace(text)?;
    let mut stats = ChromeTraceStats {
        events: events.len() as u64,
        ..Default::default()
    };
    let mut lanes: std::collections::HashMap<(u32, u32), (u64, Vec<u64>)> =
        std::collections::HashMap::new();
    let mut pids = std::collections::HashSet::new();
    let mut span_ids = std::collections::HashSet::new();
    for ev in &events {
        if ev.ph == 'B' {
            span_ids.insert(ev.span);
        }
    }
    for (i, ev) in events.iter().enumerate() {
        pids.insert(ev.pid);
        let lane = lanes.entry((ev.pid, ev.tid)).or_insert((0, Vec::new()));
        if ev.nanos < lane.0 {
            return Err(format!(
                "event {i} ({}): timestamp regressed on pid {} tid {} ({} < {})",
                ev.name, ev.pid, ev.tid, ev.nanos, lane.0
            ));
        }
        lane.0 = ev.nanos;
        match ev.ph {
            'B' => {
                lane.1.push(ev.span);
                stats.spans += 1;
            }
            'E' => match lane.1.pop() {
                Some(top) if top == ev.span => {}
                Some(top) => {
                    return Err(format!(
                        "event {i} ({}): end of span {} but span {} is open on pid {} tid {}",
                        ev.name, ev.span, top, ev.pid, ev.tid
                    ));
                }
                None => {
                    return Err(format!(
                        "event {i} ({}): end of span {} with no open span on pid {} tid {}",
                        ev.name, ev.span, ev.pid, ev.tid
                    ));
                }
            },
            'i' => {}
            ph => return Err(format!("event {i}: unsupported phase {ph:?}")),
        }
        if ev.parent != 0 && !span_ids.contains(&ev.parent) {
            return Err(format!(
                "event {i} ({}): parent span {} does not resolve",
                ev.name, ev.parent
            ));
        }
    }
    for ((pid, tid), (_, stack)) in &lanes {
        if !stack.is_empty() {
            return Err(format!(
                "pid {pid} tid {tid}: {} span(s) left open ({:?})",
                stack.len(),
                stack
            ));
        }
    }
    stats.pids = pids.len() as u64;
    stats.lanes = lanes.len() as u64;
    Ok(stats)
}

/// Parses Chrome trace JSON into [`ChromeEvent`]s, skipping metadata
/// (`M`) records. Accepts both the object envelope and a bare array.
pub fn parse_chrome_trace(text: &str) -> std::result::Result<Vec<ChromeEvent>, String> {
    let root = parse_json(text)?;
    let items = match &root {
        Json::Arr(items) => items,
        _ => match root.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            _ => return Err("missing traceEvents array".to_string()),
        },
    };
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let ph = item
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let ph = ph
            .chars()
            .next()
            .ok_or_else(|| format!("event {i}: empty ph"))?;
        if ph == 'M' {
            continue;
        }
        let name = item
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        let pid = item
            .get("pid")
            .and_then(|v| v.as_i64())
            .ok_or_else(|| format!("event {i}: missing pid"))? as u32;
        let tid = item
            .get("tid")
            .and_then(|v| v.as_i64())
            .ok_or_else(|| format!("event {i}: missing tid"))? as u32;
        let ts = item
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: bad ts {ts}"));
        }
        let cat = item
            .get("cat")
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string();
        let mut args = Vec::new();
        if let Some(Json::Obj(members)) = item.get("args") {
            for (k, v) in members {
                if let (Some(n), false) = (
                    v.as_i64(),
                    matches!(k.as_str(), "span" | "parent" | "trace"),
                ) {
                    args.push((k.clone(), n));
                }
            }
        }
        out.push(ChromeEvent {
            ph,
            name,
            cat,
            pid,
            tid,
            nanos: (ts * 1000.0).round() as u64,
            span: event_arg(item, "span"),
            parent: event_arg(item, "parent"),
            trace: event_arg(item, "trace"),
            args,
        });
    }
    Ok(out)
}

/// Converts in-memory [`ThreadSpans`] to analyzer events without a
/// JSON round trip — the serving layer's path from a live tracer
/// snapshot to an attribution table.
pub fn flatten(threads: &[ThreadSpans]) -> Vec<ChromeEvent> {
    parse_chrome_trace(&chrome_trace_json(threads)).unwrap_or_default()
}

// ---------------------------------------------------------------------
// Critical-path latency attribution
// ---------------------------------------------------------------------

/// Per-stage statistics across all sampled batches.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttributionRow {
    /// Stage name (one of [`STAGES`], or `"total"`).
    pub stage: String,
    /// Batches with a nonzero contribution from this stage.
    pub count: u64,
    /// Median per-batch nanoseconds.
    pub p50: u64,
    /// 99th-percentile per-batch nanoseconds.
    pub p99: u64,
    /// 99.9th-percentile per-batch nanoseconds.
    pub p999: u64,
    /// Sum over all batches, nanoseconds.
    pub total_nanos: u64,
}

/// The latency-attribution table: where end-to-end batch time went.
#[derive(Clone, Debug, Default)]
pub struct Attribution {
    /// Sampled batches reconstructed.
    pub traces: u64,
    /// One row per stage, in [`STAGES`] order.
    pub rows: Vec<AttributionRow>,
    /// End-to-end totals.
    pub total: AttributionRow,
}

fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn row_from(stage: &str, mut samples: Vec<u64>) -> AttributionRow {
    samples.retain(|&v| v > 0);
    samples.sort_unstable();
    AttributionRow {
        stage: stage.to_string(),
        count: samples.len() as u64,
        p50: nearest_rank(&samples, 0.50),
        p99: nearest_rank(&samples, 0.99),
        p999: nearest_rank(&samples, 0.999),
        total_nanos: samples.iter().sum(),
    }
}

#[derive(Default)]
struct TraceAcc {
    born: u64,
    done: u64,
    stage: [u64; 6], // queue, exchange, compute, store, prefetch_stall, barrier (pre-residual)
    lanes: std::collections::HashSet<(u32, u32)>,
}

/// Reconstructs per-batch critical paths from analyzer events and
/// aggregates them into the per-stage attribution table.
///
/// Stage accounting rules (documented in DESIGN.md §12):
/// - `queue` sums `queue_wait` instants (channel residency measured at
///   the receiver against the sender's stamp);
/// - `exchange` sums `exchange_send` spans (send-side backpressure);
/// - `store` sums `store`-category spans plus the coalesced per-op
///   aggregate instants (`("nanos", _)`), net of prefetch stalls;
/// - `prefetch_stall` sums `prefetch_stall` instants (sync waits on a
///   background read that arrived late);
/// - `compute` is `compute`-category span time net of the store and
///   prefetch spans nested inside it;
/// - `barrier` is `barrier`-category span time overlapping the batch's
///   lifetime on lanes the batch touched;
/// - `other` is the unclaimed residual of the end-to-end time.
pub fn attribution(events: &[ChromeEvent]) -> Attribution {
    use std::collections::HashMap;
    let mut traces: HashMap<u64, TraceAcc> = HashMap::new();
    // Pair begin/end per (pid, tid) to get span durations.
    let mut open: HashMap<(u32, u32), Vec<&ChromeEvent>> = HashMap::new();
    struct DoneSpan {
        pid: u32,
        tid: u32,
        cat: String,
        trace: u64,
        start: u64,
        end: u64,
    }
    let mut spans: Vec<DoneSpan> = Vec::new();
    for ev in events {
        match ev.ph {
            'B' => open.entry((ev.pid, ev.tid)).or_default().push(ev),
            'E' => {
                if let Some(b) = open.entry((ev.pid, ev.tid)).or_default().pop() {
                    spans.push(DoneSpan {
                        pid: ev.pid,
                        tid: ev.tid,
                        cat: b.cat.clone(),
                        trace: b.trace,
                        start: b.nanos,
                        end: ev.nanos,
                    });
                }
            }
            'i' => {
                if ev.trace == 0 {
                    continue;
                }
                let acc = traces.entry(ev.trace).or_default();
                acc.lanes.insert((ev.pid, ev.tid));
                let arg = |key: &str| {
                    ev.args
                        .iter()
                        .find(|(k, _)| k == key)
                        .map(|(_, v)| (*v).max(0) as u64)
                        .unwrap_or(0)
                };
                match ev.name.as_str() {
                    "queue_wait" => acc.stage[0] += arg("wait"),
                    "prefetch_stall" => acc.stage[4] += arg("stall"),
                    "batch_done" => {
                        let total = arg("total");
                        acc.done = acc.done.max(ev.nanos);
                        let born = ev.nanos.saturating_sub(total);
                        if acc.born == 0 || born < acc.born {
                            acc.born = born;
                        }
                    }
                    // Coalesced store-op aggregates: per-tuple ops too
                    // cheap for a span each flush as one instant per
                    // kind carrying their summed nanoseconds.
                    _ if ev.cat == "store" => acc.stage[3] += arg("nanos"),
                    _ => {}
                }
            }
            _ => {}
        }
    }
    for s in &spans {
        if s.trace == 0 {
            continue;
        }
        let acc = traces.entry(s.trace).or_default();
        acc.lanes.insert((s.pid, s.tid));
        let dur = s.end.saturating_sub(s.start);
        match s.cat.as_str() {
            "exchange" => acc.stage[1] += dur,
            "compute" => acc.stage[2] += dur,
            "store" => acc.stage[3] += dur,
            // Prefetch spans (advance/warm) nest inside compute; they
            // are subtracted from compute below but the stall share is
            // carried by prefetch_stall instants, so nothing adds here.
            _ => {}
        }
    }
    // compute net of nested store + prefetch spans on the same lanes.
    let mut nested: HashMap<u64, u64> = HashMap::new();
    for s in &spans {
        if s.trace != 0 && matches!(s.cat.as_str(), "store" | "prefetch") {
            *nested.entry(s.trace).or_default() += s.end.saturating_sub(s.start);
        }
    }
    // Coalesced store aggregates spent their time inside the enclosing
    // compute span too, so they subtract just like nested spans.
    for ev in events {
        if ev.ph == 'i' && ev.trace != 0 && ev.cat == "store" {
            let nanos = ev
                .args
                .iter()
                .find(|(k, _)| k == "nanos")
                .map(|(_, v)| (*v).max(0) as u64)
                .unwrap_or(0);
            *nested.entry(ev.trace).or_default() += nanos;
        }
    }
    // Barrier overlap with each trace's lifetime, on lanes it touched.
    for s in &spans {
        if s.cat != "barrier" {
            continue;
        }
        for acc in traces.values_mut() {
            if acc.done == 0 || !acc.lanes.contains(&(s.pid, s.tid)) {
                continue;
            }
            let lo = s.start.max(acc.born);
            let hi = s.end.min(acc.done);
            if hi > lo {
                acc.stage[5] += hi - lo;
            }
        }
    }
    let mut per_stage: Vec<Vec<u64>> = vec![Vec::new(); STAGES.len()];
    let mut totals: Vec<u64> = Vec::new();
    for (id, acc) in &traces {
        if acc.done == 0 || acc.done <= acc.born {
            continue;
        }
        let total = acc.done - acc.born;
        let nested_dur = *nested.get(id).unwrap_or(&0);
        let queue = acc.stage[0];
        let exchange = acc.stage[1];
        let compute = acc.stage[2].saturating_sub(nested_dur);
        let stall = acc.stage[4];
        let store = acc.stage[3].saturating_sub(stall);
        let barrier = acc.stage[5];
        let claimed = queue + exchange + compute + store + stall + barrier;
        let other = total.saturating_sub(claimed);
        for (slot, value) in per_stage
            .iter_mut()
            .zip([queue, exchange, compute, store, stall, barrier, other])
        {
            slot.push(value);
        }
        totals.push(total);
    }
    let traces_count = totals.len() as u64;
    Attribution {
        traces: traces_count,
        rows: STAGES
            .iter()
            .zip(per_stage)
            .map(|(stage, samples)| row_from(stage, samples))
            .collect(),
        total: row_from("total", totals),
    }
}

/// Renders the attribution table as aligned text, shares computed
/// against the end-to-end total.
pub fn render_attribution(a: &Attribution) -> String {
    let mut out = String::new();
    out.push_str(&format!("sampled batches: {}\n", a.traces));
    out.push_str(&format!(
        "{:<15} {:>8} {:>12} {:>12} {:>12} {:>8}\n",
        "stage", "batches", "p50_us", "p99_us", "p999_us", "share"
    ));
    let grand = a.total.total_nanos.max(1);
    for row in a.rows.iter().chain(std::iter::once(&a.total)) {
        out.push_str(&format!(
            "{:<15} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>7.1}%\n",
            row.stage,
            row.count,
            row.p50 as f64 / 1000.0,
            row.p99 as f64 / 1000.0,
            row.p999 as f64 / 1000.0,
            row.total_nanos as f64 * 100.0 / grand as f64,
        ));
    }
    out
}

/// Dumps post-mortem context to stderr as JSONL: the flight-recorder
/// ring, then every open span. Called by the supervisor when a worker
/// panic is caught so the last moments of the job are not discarded.
pub fn dump_crash_context(telemetry: &Telemetry) {
    let events = telemetry.recorder().drain();
    eprintln!(
        "{{\"crash_dump\":\"flight_recorder\",\"events\":{},\"dropped\":{}}}",
        events.len(),
        telemetry.recorder().dropped()
    );
    for ev in &events {
        eprintln!("{}", crate::telemetry::event_json(ev));
    }
    if let Some(handle) = telemetry.trace() {
        let open = handle.tracer.open_spans();
        eprintln!("{{\"crash_dump\":\"open_spans\",\"count\":{}}}", open.len());
        for (pid, tid, ev) in open {
            let mut args = String::new();
            for (k, v) in &ev.args {
                args.push_str(&format!(",\"{}\":{}", json_escape(k), v));
            }
            eprintln!(
                "{{\"open_span\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"span\":{},\"parent\":{},\"trace\":{},\"begin_nanos\":{}{}}}",
                json_escape(ev.name),
                json_escape(ev.cat),
                pid,
                tid,
                ev.id,
                ev.parent,
                ev.trace,
                ev.nanos,
                args
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let tracer = Tracer::new();
        let rec = tracer.thread(0, "t");
        let a = rec.begin("a", "compute", None);
        let b = rec.begin("b", "compute", None);
        assert_ne!(a.id, 0);
        assert_ne!(a.id, b.id);
        assert_ne!(tracer.next_trace_id(), 0);
        rec.end(b, "b", "compute");
        rec.end(a, "a", "compute");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let tracer = Tracer::with_capacity(16);
        let rec = tracer.thread(0, "t");
        for _ in 0..20 {
            let s = rec.begin("x", "compute", None);
            rec.end(s, "x", "compute");
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 16);
        assert_eq!(tracer.dropped(), 24);
        // Order survives wraparound: timestamps never regress.
        for pair in events.windows(2) {
            assert!(pair[0].nanos <= pair[1].nanos);
        }
    }

    #[test]
    fn open_spans_reported() {
        let tracer = Tracer::new();
        let rec = tracer.thread(0, "t");
        let outer = rec.begin("outer", "compute", None);
        let inner = rec.begin("inner", "store", None);
        rec.end(inner, "inner", "store");
        assert_eq!(tracer.open_spans().len(), 1);
        assert_eq!(tracer.open_spans()[0].2.name, "outer");
        rec.end(outer, "outer", "compute");
        assert!(tracer.open_spans().is_empty());
    }

    #[test]
    fn thread_local_context_nests_and_restores() {
        let tracer = Tracer::new();
        let rec = tracer.thread(0, "t");
        assert!(current().is_none());
        assert!(begin_here("noop", "store").is_none());
        let ctx = TraceCtx {
            trace: 7,
            span: 0,
            born: 0,
        };
        {
            let _scope = enter(&rec, ctx);
            assert_eq!(current(), Some(ctx));
            let outer = begin_here("outer", "compute");
            let outer_id = current().unwrap().span;
            assert_ne!(outer_id, 0);
            let inner = begin_here("inner", "store");
            assert_ne!(current().unwrap().span, outer_id);
            end_here(inner, &[]);
            assert_eq!(current().unwrap().span, outer_id);
            end_here(outer, &[("n", 3)]);
            assert_eq!(current(), Some(ctx));
            instant_here("tick", "queue", &[("wait", 10)]);
        }
        assert!(current().is_none());
        let events = rec.snapshot();
        assert_eq!(events.len(), 5);
        assert!(events.iter().all(|e| e.trace == 7));
    }

    #[test]
    fn chrome_export_round_trips_and_validates() {
        let tracer = Tracer::new();
        let rec = tracer.thread(3, "worker");
        let ctx = TraceCtx {
            trace: 1,
            span: 0,
            born: 0,
        };
        let outer = rec.begin("on_batch", "compute", Some(ctx));
        let inner = rec.begin(
            "store_take_values",
            "store",
            Some(TraceCtx {
                trace: 1,
                span: outer.id,
                born: 0,
            }),
        );
        rec.end(inner, "store_take_values", "store");
        rec.instant("queue_wait", "queue", Some(ctx), vec![("wait", 42)]);
        rec.end(outer, "on_batch", "compute");
        let json = chrome_trace_json(&tracer.snapshot());
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.pids, 1);
        let events = parse_chrome_trace(&json).unwrap();
        let nested = events
            .iter()
            .find(|e| e.name == "store_take_values" && e.ph == 'B')
            .unwrap();
        assert_eq!(nested.parent, outer.id);
        assert_eq!(nested.trace, 1);
    }

    #[test]
    fn export_drops_unmatched_halves() {
        let tracer = Tracer::with_capacity(16);
        let rec = tracer.thread(0, "t");
        let open = rec.begin("still_open", "compute", None);
        for _ in 0..20 {
            let s = rec.begin("x", "compute", None);
            rec.end(s, "x", "compute");
        }
        // `still_open` has no end; wraparound also evicted early begins.
        let json = chrome_trace_json(&tracer.snapshot());
        validate_chrome_trace(&json).expect("sanitized export validates");
        rec.end(open, "still_open", "compute");
    }

    #[test]
    fn validator_rejects_bad_traces() {
        let bad = r#"{"traceEvents":[
            {"ph":"E","name":"x","pid":0,"tid":0,"ts":1.0,"args":{"span":9}}
        ]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("no open span"));
        let regress = r#"{"traceEvents":[
            {"ph":"B","name":"a","pid":0,"tid":0,"ts":5.0,"args":{"span":1}},
            {"ph":"E","name":"a","pid":0,"tid":0,"ts":4.0,"args":{"span":1}}
        ]}"#;
        assert!(validate_chrome_trace(regress)
            .unwrap_err()
            .contains("regressed"));
        let unresolved = r#"{"traceEvents":[
            {"ph":"i","s":"t","name":"x","pid":0,"tid":0,"ts":1.0,"args":{"parent":77}}
        ]}"#;
        assert!(validate_chrome_trace(unresolved)
            .unwrap_err()
            .contains("does not resolve"));
    }

    #[test]
    fn attribution_decomposes_a_synthetic_batch() {
        // One trace: born at 0, done at 1000ns; queue 100, compute span
        // 400 containing a 150ns store span, barrier span overlapping
        // 50ns on the same lane.
        let json = r#"{"traceEvents":[
            {"ph":"i","s":"t","name":"queue_wait","cat":"queue","pid":0,"tid":1,"ts":0.3,"args":{"trace":1,"wait":100}},
            {"ph":"B","name":"on_batch","cat":"compute","pid":0,"tid":1,"ts":0.3,"args":{"span":10,"trace":1}},
            {"ph":"B","name":"store_take_values","cat":"store","pid":0,"tid":1,"ts":0.4,"args":{"span":11,"parent":10,"trace":1}},
            {"ph":"E","name":"store_take_values","cat":"store","pid":0,"tid":1,"ts":0.55,"args":{"span":11,"trace":1}},
            {"ph":"E","name":"on_batch","cat":"compute","pid":0,"tid":1,"ts":0.7,"args":{"span":10,"trace":1}},
            {"ph":"B","name":"barrier_align","cat":"barrier","pid":0,"tid":1,"ts":0.7,"args":{"span":12}},
            {"ph":"E","name":"barrier_align","cat":"barrier","pid":0,"tid":1,"ts":0.75,"args":{"span":12}},
            {"ph":"i","s":"t","name":"batch_done","cat":"sink","pid":0,"tid":2,"ts":1.0,"args":{"trace":1,"total":1000}}
        ]}"#;
        let events = parse_chrome_trace(json).unwrap();
        let a = attribution(&events);
        assert_eq!(a.traces, 1);
        let get = |stage: &str| {
            a.rows
                .iter()
                .find(|r| r.stage == stage)
                .map(|r| r.total_nanos)
                .unwrap()
        };
        assert_eq!(get("queue"), 100);
        assert_eq!(get("store"), 150);
        assert_eq!(get("compute"), 250);
        assert_eq!(get("barrier"), 50);
        assert_eq!(get("prefetch_stall"), 0);
        assert_eq!(a.total.total_nanos, 1000);
        // Stages plus residual reconcile exactly with the total.
        let claimed: u64 = a.rows.iter().map(|r| r.total_nanos).sum();
        assert_eq!(claimed, a.total.total_nanos);
        let table = render_attribution(&a);
        assert!(table.contains("prefetch_stall"));
        assert!(table.contains("total"));
    }

    #[test]
    fn traced_backend_is_transparent_when_untraced() {
        struct Null;
        impl StateBackend for Null {
            fn append(&mut self, _: &[u8], _: WindowId, _: &[u8], _: Timestamp) -> Result<()> {
                Ok(())
            }
            fn get_window_chunk(&mut self, _: WindowId) -> Result<Option<WindowChunk>> {
                Ok(None)
            }
            fn take_values(&mut self, _: &[u8], _: WindowId) -> Result<Vec<Vec<u8>>> {
                Ok(vec![b"v".to_vec()])
            }
            fn peek_values(&mut self, _: &[u8], _: WindowId) -> Result<Vec<Vec<u8>>> {
                Ok(Vec::new())
            }
            fn take_aggregate(&mut self, _: &[u8], _: WindowId) -> Result<Option<Vec<u8>>> {
                Ok(None)
            }
            fn put_aggregate(&mut self, _: &[u8], _: WindowId, _: &[u8]) -> Result<()> {
                Ok(())
            }
            fn flush(&mut self) -> Result<()> {
                Ok(())
            }
            fn extract_range(
                &mut self,
                _: KeyFilter<'_>,
                _: AggregateKind,
            ) -> Result<Vec<crate::backend::StateEntry>> {
                Ok(Vec::new())
            }
            fn metrics(&self) -> Arc<crate::metrics::StoreMetrics> {
                Arc::new(crate::metrics::StoreMetrics::default())
            }
            fn memory_bytes(&self) -> usize {
                0
            }
            fn checkpoint(&mut self, _: &std::path::Path) -> Result<()> {
                Ok(())
            }
            fn restore(&mut self, _: &std::path::Path) -> Result<()> {
                Ok(())
            }
            fn close(&mut self) -> Result<()> {
                Ok(())
            }
        }
        let mut traced = TracedBackend::wrap(Box::new(Null));
        let w = WindowId { start: 0, end: 10 };
        assert_eq!(traced.take_values(b"k", w).unwrap(), vec![b"v".to_vec()]);
        // With an active context the per-tuple ops accumulate and the
        // scope's exit flushes one aggregate instant per op kind.
        let tracer = Tracer::new();
        let rec = tracer.thread(0, "t");
        {
            let _scope = enter(
                &rec,
                TraceCtx {
                    trace: 5,
                    span: 0,
                    born: 0,
                },
            );
            traced.take_values(b"k", w).unwrap();
            traced.take_values(b"k", w).unwrap();
            traced.append(b"k", w, b"v", 1).unwrap();
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 2, "one instant per op kind used");
        let take = events
            .iter()
            .find(|e| e.name == "store_take_values")
            .expect("take_values aggregate");
        assert_eq!(take.phase, SpanPhase::Instant);
        assert_eq!(take.cat, "store");
        assert_eq!(take.trace, 5);
        assert!(take.args.iter().any(|&(k, v)| k == "count" && v == 2));
        let append = events
            .iter()
            .find(|e| e.name == "store_append")
            .expect("append aggregate");
        assert!(append.args.iter().any(|&(k, v)| k == "count" && v == 1));
    }
}
