//! Shared substrate for the FlowKV reproduction.
//!
//! This crate hosts everything that the FlowKV store, the two baseline
//! stores (LSM / hash), and the stream-processing engine have in common:
//!
//! - [`types`] — timestamped key-value tuples and window identifiers, the
//!   vocabulary of the whole system (paper §2.1).
//! - [`codec`] — varint and fixed-width little-endian encoding plus a
//!   hand-rolled CRC32 used to checksum every on-disk record.
//! - [`logfile`] — checksummed append-only log files with torn-write
//!   recovery; every store in the workspace persists through these.
//! - [`backend`] — the [`backend::StateBackend`] trait, the contract
//!   between the stream engine and any state store. It mirrors Listing 1
//!   of the paper: every call carries explicit window metadata.
//! - [`metrics`] — per-category time/byte accounting used to regenerate
//!   the paper's breakdown figures (Figures 4 and 10).
//! - [`hash`] — the 64-bit key hash shared by hash indexes and
//!   partitioning.
//! - [`registry`] — the queryable-state registry: immutable snapshot
//!   views of live operator state that workers publish at watermark
//!   boundaries and the serving layer reads concurrently.
//! - [`scratch`] — unique scratch directories for tests and benchmarks.
//! - [`telemetry`] — the pipeline-wide metric registry (counters, gauges,
//!   log-linear histograms), bounded-ring flight recorder, and the JSONL
//!   and Prometheus exposition formats.
//! - [`ioring`] — the per-worker background I/O ring: a completion-queue
//!   submission API over a small thread pool bound to the [`vfs`] seam,
//!   used to move predictable reads (prefetch, warm-up, snapshots) off
//!   the hot path without changing observable semantics.
//! - [`trace`] — causal span tracing: per-thread bounded span rings, a
//!   sampled per-batch trace context that propagates through stores and
//!   the I/O ring, Chrome trace-event export (Perfetto-loadable), and
//!   critical-path latency attribution.
//! - [`vfs`] — the virtual filesystem seam every store persists through:
//!   a passthrough [`vfs::StdVfs`] and a deterministic, seeded
//!   [`vfs::FaultVfs`] for torn-write / dropped-fsync / ENOSPC /
//!   crash-point injection.

pub mod backend;
pub mod codec;
pub mod columnar;
pub mod error;
pub mod hash;
pub mod ioring;
pub mod logfile;
pub mod metrics;
pub mod registry;
pub mod scratch;
pub mod telemetry;
pub mod trace;
pub mod types;
pub mod vfs;

pub use backend::StateBackend;
pub use error::{Result, StoreError};
pub use ioring::{Completion, IoJob, IoOutcome, IoPolicy, IoRing};
pub use registry::{StateKey, StatePattern, StateRegistry, StateView, ViewValue};
pub use telemetry::{
    Counter, FlightRecorder, Gauge, Histogram, HistogramSnapshot, MetricRegistry, MetricSample,
    SampleValue, Telemetry, TraceEvent,
};
pub use trace::{SpanRecorder, TraceCtx, TraceHandle, Tracer};
pub use types::{Timestamp, Tuple, WindowId};
pub use vfs::{FaultKind, FaultPlan, FaultVfs, StdVfs, Vfs, VfsFile};
