//! Per-store operation accounting.
//!
//! The paper attributes execution time to query computation, store CPU,
//! and I/O (Figure 4), and further splits store time into write,
//! read & delete, and compaction (Figure 10). Every store in this
//! workspace carries a shared [`StoreMetrics`] and wraps its operations in
//! [`StoreMetrics::timer`] so the benchmark harnesses can regenerate those
//! breakdowns without an external profiler.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The operation categories of the paper's Figure 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpCategory {
    /// Appends, puts, and write-buffer flushes.
    Write,
    /// Gets, window reads, and the deletes folded into fetch-and-remove.
    Read,
    /// Background reorganization: merges, compactions, log cleaning.
    Compaction,
}

/// Thread-safe counters for one store instance (or a whole store, when
/// shared across its partitions).
#[derive(Debug, Default)]
pub struct StoreMetrics {
    write_nanos: AtomicU64,
    read_nanos: AtomicU64,
    compaction_nanos: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    records_written: AtomicU64,
    records_read: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_misses: AtomicU64,
    prefetch_evictions: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
}

impl StoreMetrics {
    /// Creates a zeroed metrics block behind an [`Arc`].
    pub fn new_shared() -> Arc<Self> {
        Arc::new(StoreMetrics::default())
    }

    /// Starts a timer whose elapsed time is charged to `category` when the
    /// returned guard drops.
    pub fn timer(self: &Arc<Self>, category: OpCategory) -> OpTimer {
        OpTimer {
            metrics: Arc::clone(self),
            category,
            start: Instant::now(),
        }
    }

    /// Charges `nanos` of CPU-attributed time to `category`.
    pub fn record_nanos(&self, category: OpCategory, nanos: u64) {
        self.counter(category).fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records `n` bytes written to storage.
    pub fn add_bytes_written(&self, n: u64) {
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` bytes read from storage.
    pub fn add_bytes_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` logical records written.
    pub fn add_records_written(&self, n: u64) {
        self.records_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` logical records read.
    pub fn add_records_read(&self, n: u64) {
        self.records_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a prefetch-buffer hit.
    pub fn add_prefetch_hit(&self) {
        self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a prefetch-buffer miss.
    pub fn add_prefetch_miss(&self) {
        self.prefetch_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an eviction of prefetched state whose trigger-time estimate
    /// turned out wrong.
    pub fn add_prefetch_eviction(&self) {
        self.prefetch_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a write-buffer flush.
    pub fn add_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed compaction.
    pub fn add_compaction(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            write_nanos: self.write_nanos.load(Ordering::Relaxed),
            read_nanos: self.read_nanos.load(Ordering::Relaxed),
            compaction_nanos: self.compaction_nanos.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            records_written: self.records_written.load(Ordering::Relaxed),
            records_read: self.records_read.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            prefetch_misses: self.prefetch_misses.load(Ordering::Relaxed),
            prefetch_evictions: self.prefetch_evictions.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }

    fn counter(&self, category: OpCategory) -> &AtomicU64 {
        match category {
            OpCategory::Write => &self.write_nanos,
            OpCategory::Read => &self.read_nanos,
            OpCategory::Compaction => &self.compaction_nanos,
        }
    }
}

/// Guard that charges its lifetime to an [`OpCategory`] on drop.
pub struct OpTimer {
    metrics: Arc<StoreMetrics>,
    category: OpCategory,
    start: Instant,
}

impl Drop for OpTimer {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.metrics.record_nanos(self.category, nanos);
    }
}

/// A plain copy of every counter in a [`StoreMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Nanoseconds charged to writes.
    pub write_nanos: u64,
    /// Nanoseconds charged to reads and deletes.
    pub read_nanos: u64,
    /// Nanoseconds charged to compaction.
    pub compaction_nanos: u64,
    /// Bytes written to storage.
    pub bytes_written: u64,
    /// Bytes read from storage.
    pub bytes_read: u64,
    /// Logical records written.
    pub records_written: u64,
    /// Logical records read.
    pub records_read: u64,
    /// Prefetch-buffer hits.
    pub prefetch_hits: u64,
    /// Prefetch-buffer misses.
    pub prefetch_misses: u64,
    /// Prefetched windows evicted after a wrong trigger-time estimate.
    pub prefetch_evictions: u64,
    /// Write-buffer flushes.
    pub flushes: u64,
    /// Completed compactions.
    pub compactions: u64,
}

impl MetricsSnapshot {
    /// Total nanoseconds charged to the store across all categories.
    pub fn total_store_nanos(&self) -> u64 {
        self.write_nanos + self.read_nanos + self.compaction_nanos
    }

    /// Hit ratio of the prefetch buffer, or `None` before any lookup.
    pub fn prefetch_hit_ratio(&self) -> Option<f64> {
        let total = self.prefetch_hits + self.prefetch_misses;
        if total == 0 {
            None
        } else {
            Some(self.prefetch_hits as f64 / total as f64)
        }
    }

    /// Element-wise sum, used to merge snapshots across store instances.
    pub fn merged(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            write_nanos: self.write_nanos + other.write_nanos,
            read_nanos: self.read_nanos + other.read_nanos,
            compaction_nanos: self.compaction_nanos + other.compaction_nanos,
            bytes_written: self.bytes_written + other.bytes_written,
            bytes_read: self.bytes_read + other.bytes_read,
            records_written: self.records_written + other.records_written,
            records_read: self.records_read + other.records_read,
            prefetch_hits: self.prefetch_hits + other.prefetch_hits,
            prefetch_misses: self.prefetch_misses + other.prefetch_misses,
            prefetch_evictions: self.prefetch_evictions + other.prefetch_evictions,
            flushes: self.flushes + other.flushes,
            compactions: self.compactions + other.compactions,
        }
    }

    /// Element-wise difference since an earlier snapshot.
    ///
    /// Saturating: snapshots taken out of order (or a merged snapshot
    /// diffed against a larger one) clamp to zero instead of panicking in
    /// debug builds.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            write_nanos: self.write_nanos.saturating_sub(earlier.write_nanos),
            read_nanos: self.read_nanos.saturating_sub(earlier.read_nanos),
            compaction_nanos: self
                .compaction_nanos
                .saturating_sub(earlier.compaction_nanos),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            records_written: self.records_written.saturating_sub(earlier.records_written),
            records_read: self.records_read.saturating_sub(earlier.records_read),
            prefetch_hits: self.prefetch_hits.saturating_sub(earlier.prefetch_hits),
            prefetch_misses: self.prefetch_misses.saturating_sub(earlier.prefetch_misses),
            prefetch_evictions: self
                .prefetch_evictions
                .saturating_sub(earlier.prefetch_evictions),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            compactions: self.compactions.saturating_sub(earlier.compactions),
        }
    }

    /// Every counter as a `(name, value)` pair, in wire/display order.
    ///
    /// Shared by the serve-layer Prometheus renderer and anything else
    /// that wants to iterate the counters without naming all twelve.
    pub fn named(&self) -> [(&'static str, u64); 12] {
        [
            ("write_nanos", self.write_nanos),
            ("read_nanos", self.read_nanos),
            ("compaction_nanos", self.compaction_nanos),
            ("bytes_written", self.bytes_written),
            ("bytes_read", self.bytes_read),
            ("records_written", self.records_written),
            ("records_read", self.records_read),
            ("prefetch_hits", self.prefetch_hits),
            ("prefetch_misses", self.prefetch_misses),
            ("prefetch_evictions", self.prefetch_evictions),
            ("flushes", self.flushes),
            ("compactions", self.compactions),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_charges_category() {
        let m = StoreMetrics::new_shared();
        {
            let _t = m.timer(OpCategory::Write);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = m.snapshot();
        assert!(snap.write_nanos >= 1_000_000, "got {}", snap.write_nanos);
        assert_eq!(snap.read_nanos, 0);
    }

    #[test]
    fn byte_and_record_counters_accumulate() {
        let m = StoreMetrics::new_shared();
        m.add_bytes_written(10);
        m.add_bytes_written(5);
        m.add_bytes_read(3);
        m.add_records_written(2);
        m.add_records_read(1);
        let s = m.snapshot();
        assert_eq!(s.bytes_written, 15);
        assert_eq!(s.bytes_read, 3);
        assert_eq!(s.records_written, 2);
        assert_eq!(s.records_read, 1);
    }

    #[test]
    fn hit_ratio() {
        let m = StoreMetrics::new_shared();
        assert_eq!(m.snapshot().prefetch_hit_ratio(), None);
        for _ in 0..93 {
            m.add_prefetch_hit();
        }
        for _ in 0..7 {
            m.add_prefetch_miss();
        }
        let ratio = m.snapshot().prefetch_hit_ratio().unwrap();
        assert!((ratio - 0.93).abs() < 1e-9);
    }

    #[test]
    fn merged_and_since_are_inverse() {
        let a = MetricsSnapshot {
            write_nanos: 10,
            compactions: 2,
            ..MetricsSnapshot::default()
        };
        let b = MetricsSnapshot {
            write_nanos: 5,
            read_nanos: 9,
            ..MetricsSnapshot::default()
        };
        let sum = a.merged(&b);
        assert_eq!(sum.write_nanos, 15);
        assert_eq!(sum.read_nanos, 9);
        assert_eq!(sum.since(&b), a);
    }

    #[test]
    fn since_saturates_on_out_of_order_snapshots() {
        let small = MetricsSnapshot {
            write_nanos: 5,
            ..MetricsSnapshot::default()
        };
        let large = MetricsSnapshot {
            write_nanos: 10,
            read_nanos: 3,
            ..MetricsSnapshot::default()
        };
        let diff = small.since(&large);
        assert_eq!(diff.write_nanos, 0);
        assert_eq!(diff.read_nanos, 0);
    }

    #[test]
    fn named_covers_every_counter() {
        let snap = MetricsSnapshot {
            write_nanos: 1,
            read_nanos: 2,
            compaction_nanos: 3,
            bytes_written: 4,
            bytes_read: 5,
            records_written: 6,
            records_read: 7,
            prefetch_hits: 8,
            prefetch_misses: 9,
            prefetch_evictions: 10,
            flushes: 11,
            compactions: 12,
        };
        let named = snap.named();
        let sum: u64 = named.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, (1..=12).sum::<u64>());
        assert_eq!(named[0].0, "write_nanos");
        assert_eq!(named[11].0, "compactions");
    }

    #[test]
    fn total_store_nanos_sums_categories() {
        let m = StoreMetrics::new_shared();
        m.record_nanos(OpCategory::Write, 1);
        m.record_nanos(OpCategory::Read, 2);
        m.record_nanos(OpCategory::Compaction, 4);
        assert_eq!(m.snapshot().total_store_nanos(), 7);
    }
}
