//! Error types shared by every store in the workspace.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// A specialized [`Result`](std::result::Result) for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors produced by state stores and their substrates.
///
/// The enum is `#[non_exhaustive]`: downstream matches must carry a
/// wildcard arm so new failure classes (the fault-injection work keeps
/// finding them) can be added without a breaking change.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io {
        /// The operation that failed, for context in error messages.
        context: &'static str,
        /// The file the operation touched, when known.
        path: Option<PathBuf>,
        /// The originating I/O error.
        source: io::Error,
    },
    /// An on-disk record failed its CRC32 check.
    ///
    /// Readers treat a corrupt record at the tail of a log as a torn write
    /// and truncate; a corrupt record in the middle is a hard error.
    Corruption {
        /// The file in which corruption was detected.
        file: PathBuf,
        /// Byte offset of the corrupt record.
        offset: u64,
        /// Human-readable description of the failed check.
        detail: String,
    },
    /// A decode ran past the end of its input buffer.
    UnexpectedEof {
        /// What was being decoded.
        what: &'static str,
    },
    /// A varint was longer than the maximum of ten bytes.
    VarintOverflow,
    /// The store was asked for state it does not hold.
    ///
    /// Fetch-and-remove APIs return `Ok(None)`/empty instead; this variant
    /// signals genuine contract violations such as reading from a store
    /// instance after [`StateBackend::close`] was called.
    ///
    /// [`StateBackend::close`]: crate::backend::StateBackend::close
    InvalidState {
        /// Description of the violated invariant.
        detail: String,
    },
    /// A configuration value was out of its legal range.
    InvalidConfig {
        /// Name of the offending parameter.
        param: &'static str,
        /// Description of the legal range and the supplied value.
        detail: String,
    },
    /// The memory budget of an in-memory store was exhausted.
    ///
    /// This models the out-of-memory failures of the paper's in-memory
    /// baseline (Figure 8, crossed bars).
    OutOfMemory {
        /// Bytes the store was attempting to hold.
        requested: usize,
        /// The configured budget in bytes.
        budget: usize,
    },
    /// A checkpoint or restore operation failed.
    Checkpoint {
        /// Description of the failure.
        detail: String,
    },
}

impl StoreError {
    /// Wraps an I/O error with a static context string.
    pub fn io(context: &'static str, source: io::Error) -> Self {
        StoreError::Io {
            context,
            path: None,
            source,
        }
    }

    /// Wraps an I/O error with the operation name *and* the path it
    /// touched — the preferred constructor wherever a path is in hand.
    pub fn io_at(context: &'static str, path: impl Into<PathBuf>, source: io::Error) -> Self {
        StoreError::Io {
            context,
            path: Some(path.into()),
            source,
        }
    }

    /// Builds a [`StoreError::Corruption`] for `file` at `offset`.
    pub fn corruption(file: impl Into<PathBuf>, offset: u64, detail: impl Into<String>) -> Self {
        StoreError::Corruption {
            file: file.into(),
            offset,
            detail: detail.into(),
        }
    }

    /// Builds a [`StoreError::InvalidState`] from a description.
    pub fn invalid_state(detail: impl Into<String>) -> Self {
        StoreError::InvalidState {
            detail: detail.into(),
        }
    }

    /// Returns `true` if the error is a data-corruption error.
    pub fn is_corruption(&self) -> bool {
        matches!(self, StoreError::Corruption { .. })
    }

    /// Returns `true` if the error is an out-of-memory failure.
    pub fn is_out_of_memory(&self) -> bool {
        matches!(self, StoreError::OutOfMemory { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                context,
                path,
                source,
            } => match path {
                Some(p) => write!(f, "I/O error during {context} on {}: {source}", p.display()),
                None => write!(f, "I/O error during {context}: {source}"),
            },
            StoreError::Corruption {
                file,
                offset,
                detail,
            } => write!(
                f,
                "corruption in {} at offset {offset}: {detail}",
                file.display()
            ),
            StoreError::UnexpectedEof { what } => {
                write!(f, "unexpected end of input while decoding {what}")
            }
            StoreError::VarintOverflow => write!(f, "varint exceeded ten bytes"),
            StoreError::InvalidState { detail } => write!(f, "invalid store state: {detail}"),
            StoreError::InvalidConfig { param, detail } => {
                write!(f, "invalid configuration for `{param}`: {detail}")
            }
            StoreError::OutOfMemory { requested, budget } => write!(
                f,
                "memory budget exhausted: {requested} bytes requested, budget {budget} bytes"
            ),
            StoreError::Checkpoint { detail } => write!(f, "checkpoint failure: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(source: io::Error) -> Self {
        StoreError::Io {
            context: "unspecified",
            path: None,
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_io_error() {
        let err = StoreError::io("flush", io::Error::other("disk full"));
        let text = err.to_string();
        assert!(text.contains("flush"));
        assert!(text.contains("disk full"));
    }

    #[test]
    fn display_io_error_with_path() {
        let err = StoreError::io_at("append", "/tmp/wal.log", io::Error::other("torn"));
        let text = err.to_string();
        assert!(text.contains("append"));
        assert!(text.contains("/tmp/wal.log"));
        assert!(text.contains("torn"));
    }

    #[test]
    fn corruption_predicate() {
        let err = StoreError::corruption("/tmp/x.log", 42, "bad crc");
        assert!(err.is_corruption());
        assert!(!err.is_out_of_memory());
        assert!(err.to_string().contains("offset 42"));
    }

    #[test]
    fn out_of_memory_predicate() {
        let err = StoreError::OutOfMemory {
            requested: 100,
            budget: 50,
        };
        assert!(err.is_out_of_memory());
        assert!(err.to_string().contains("100"));
    }

    #[test]
    fn io_error_source_chain() {
        use std::error::Error as _;
        let err = StoreError::io("read", io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(err.source().is_some());
        let err = StoreError::VarintOverflow;
        assert!(err.source().is_none());
    }
}
