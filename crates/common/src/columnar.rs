//! Columnar cold-block codec for the tiered state layout.
//!
//! Sealed cold windows are demoted out of the hot store into immutable
//! *cold blocks*: one self-describing byte blob per demotion wave and
//! window, laid out column-wise so the schema the store already knows
//! (pattern + window + key) pays off as compression:
//!
//! - **Keys** are dictionary-encoded: NEXMark person/auction identifiers
//!   repeat heavily within a window, so each row stores a varint index
//!   into a per-block key dictionary instead of the full key bytes.
//! - **Timestamps** are delta-encoded against the window start and the
//!   previous row (zigzag varints): tuples arrive in roughly ascending
//!   event-time order, so deltas are tiny.
//! - **Values** are optionally dictionary-encoded too (`compress`);
//!   uncompressed blocks inline them length-prefixed, which keeps the
//!   codec a strict superset of a plain row log.
//!
//! A block carries its own window, kind, row count, and a trailing CRC32
//! over everything after the magic. [`decode_block`] never panics on
//! malformed input: truncation surfaces as
//! [`StoreError::UnexpectedEof`](crate::error::StoreError) and any
//! mismatch (magic, version, CRC, dictionary index) as
//! [`StoreError::Corruption`](crate::error::StoreError) — the
//! contract the codec proptests pin down.

use std::collections::HashMap;

use crate::codec::{self, Decoder};
use crate::error::{Result, StoreError};
use crate::types::{Timestamp, WindowId};

/// Magic prefix of every cold block.
pub const BLOCK_MAGIC: [u8; 4] = *b"FKCB";

/// Current block-format version.
pub const BLOCK_VERSION: u8 = 1;

/// Flag bit: value column is dictionary-encoded.
const FLAG_VALUE_DICT: u8 = 0b0000_0001;

/// What one block's rows are (mirrors the two shapes of
/// [`StateEntry`](crate::backend::StateEntry)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// Appended value-list rows of AAR/AUR state.
    Values,
    /// Intermediate aggregates of RMW state (within a block, a later row
    /// for the same key supersedes an earlier one).
    Aggregates,
}

impl BlockKind {
    fn as_u8(self) -> u8 {
        match self {
            BlockKind::Values => 0,
            BlockKind::Aggregates => 1,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(BlockKind::Values),
            1 => Some(BlockKind::Aggregates),
            _ => None,
        }
    }
}

/// One demoted row: the tuple key, its append timestamp, and the value
/// (an appended element or an encoded aggregate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColdRow {
    /// The tuple key.
    pub key: Vec<u8>,
    /// Append timestamp (aggregates carry their window start).
    pub ts: Timestamp,
    /// The stored bytes.
    pub value: Vec<u8>,
}

/// A decoded cold block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColdBlock {
    /// The window every row belongs to.
    pub window: WindowId,
    /// Row shape.
    pub kind: BlockKind,
    /// Rows in original append order.
    pub rows: Vec<ColdRow>,
}

/// The size the rows would occupy as plain rows (key + value + 8-byte
/// timestamp each) — the numerator of the compression-ratio telemetry.
pub fn uncompressed_size(rows: &[ColdRow]) -> usize {
    rows.iter().map(|r| r.key.len() + r.value.len() + 8).sum()
}

/// Encodes `rows` of `window` into one self-describing cold block.
///
/// With `compress` the value column is dictionary-encoded in addition to
/// the always-on key dictionary and timestamp deltas; without it values
/// are inlined length-prefixed per row.
pub fn encode_block(
    window: WindowId,
    kind: BlockKind,
    rows: &[ColdRow],
    compress: bool,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + rows.len() * 8);
    buf.extend_from_slice(&BLOCK_MAGIC);
    buf.push(BLOCK_VERSION);
    buf.push(kind.as_u8());
    buf.push(if compress { FLAG_VALUE_DICT } else { 0 });
    codec::put_varint_i64(&mut buf, window.start);
    codec::put_varint_i64(&mut buf, window.end);
    codec::put_varint_u64(&mut buf, rows.len() as u64);

    // Key dictionary, in order of first occurrence.
    let mut key_dict: Vec<&[u8]> = Vec::new();
    let mut key_idx: HashMap<&[u8], u64> = HashMap::new();
    for row in rows {
        key_idx.entry(&row.key).or_insert_with(|| {
            key_dict.push(&row.key);
            (key_dict.len() - 1) as u64
        });
    }
    codec::put_varint_u64(&mut buf, key_dict.len() as u64);
    for key in &key_dict {
        codec::put_len_prefixed(&mut buf, key);
    }

    // Optional value dictionary, same scheme.
    let mut val_dict: Vec<&[u8]> = Vec::new();
    let mut val_idx: HashMap<&[u8], u64> = HashMap::new();
    if compress {
        for row in rows {
            val_idx.entry(&row.value).or_insert_with(|| {
                val_dict.push(&row.value);
                (val_dict.len() - 1) as u64
            });
        }
        codec::put_varint_u64(&mut buf, val_dict.len() as u64);
        for value in &val_dict {
            codec::put_len_prefixed(&mut buf, value);
        }
    }

    // Row columns: key index, timestamp delta, value index or bytes.
    let mut prev_ts = window.start;
    for row in rows {
        codec::put_varint_u64(&mut buf, key_idx[row.key.as_slice()]);
        codec::put_varint_i64(&mut buf, row.ts.wrapping_sub(prev_ts));
        prev_ts = row.ts;
        if compress {
            codec::put_varint_u64(&mut buf, val_idx[row.value.as_slice()]);
        } else {
            codec::put_len_prefixed(&mut buf, &row.value);
        }
    }

    let crc = codec::crc32(&buf[BLOCK_MAGIC.len()..]);
    codec::put_u32(&mut buf, crc);
    buf
}

fn corrupt(offset: usize, detail: impl Into<String>) -> StoreError {
    StoreError::corruption("cold-block", offset as u64, detail)
}

/// Decodes one cold block previously written by [`encode_block`].
///
/// Returns a structured [`StoreError`] (never panics) on truncated or
/// corrupted input; the trailing CRC is verified before any row is
/// materialized.
pub fn decode_block(bytes: &[u8]) -> Result<ColdBlock> {
    if bytes.len() < BLOCK_MAGIC.len() + 3 + 4 {
        return Err(StoreError::UnexpectedEof {
            what: "cold-block header",
        });
    }
    if bytes[..BLOCK_MAGIC.len()] != BLOCK_MAGIC {
        return Err(corrupt(0, "bad cold-block magic"));
    }
    let body = &bytes[BLOCK_MAGIC.len()..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    let actual_crc = codec::crc32(body);
    if stored_crc != actual_crc {
        return Err(corrupt(
            bytes.len() - 4,
            format!("cold-block CRC mismatch: stored {stored_crc:#x}, computed {actual_crc:#x}"),
        ));
    }

    let mut dec = Decoder::new(body);
    let version = dec.take(1, "cold-block version")?[0];
    if version != BLOCK_VERSION {
        return Err(corrupt(
            4,
            format!("unsupported cold-block version {version}"),
        ));
    }
    let kind_byte = dec.take(1, "cold-block kind")?[0];
    let kind = BlockKind::from_u8(kind_byte)
        .ok_or_else(|| corrupt(5, format!("unknown cold-block kind {kind_byte}")))?;
    let flags = dec.take(1, "cold-block flags")?[0];
    if flags & !FLAG_VALUE_DICT != 0 {
        return Err(corrupt(6, format!("unknown cold-block flags {flags:#x}")));
    }
    let compress = flags & FLAG_VALUE_DICT != 0;
    let start = dec.get_varint_i64()?;
    let end = dec.get_varint_i64()?;
    if start > end {
        return Err(corrupt(
            7,
            format!("inverted cold-block window [{start}, {end})"),
        ));
    }
    let window = WindowId::new(start, end);
    let row_count = dec.get_varint_u64()? as usize;
    // A row costs at least three varint bytes; reject counts the buffer
    // cannot possibly hold so corrupt counts cannot trigger huge
    // allocations.
    if row_count > body.len() {
        return Err(corrupt(
            8,
            format!("cold-block row count {row_count} exceeds block size"),
        ));
    }

    let key_count = dec.get_varint_u64()? as usize;
    if key_count > body.len() {
        return Err(corrupt(
            9,
            format!("cold-block key count {key_count} exceeds block size"),
        ));
    }
    let mut key_dict: Vec<&[u8]> = Vec::with_capacity(key_count);
    for _ in 0..key_count {
        key_dict.push(dec.get_len_prefixed()?);
    }

    let mut val_dict: Vec<&[u8]> = Vec::new();
    if compress {
        let val_count = dec.get_varint_u64()? as usize;
        if val_count > body.len() {
            return Err(corrupt(
                10,
                format!("cold-block value count {val_count} exceeds block size"),
            ));
        }
        val_dict.reserve(val_count);
        for _ in 0..val_count {
            val_dict.push(dec.get_len_prefixed()?);
        }
    }

    let mut rows = Vec::with_capacity(row_count);
    let mut prev_ts = window.start;
    for _ in 0..row_count {
        let ki = dec.get_varint_u64()? as usize;
        let key = *key_dict
            .get(ki)
            .ok_or_else(|| corrupt(dec.position(), format!("key index {ki} out of range")))?;
        let delta = dec.get_varint_i64()?;
        let ts = prev_ts.wrapping_add(delta);
        prev_ts = ts;
        let value = if compress {
            let vi = dec.get_varint_u64()? as usize;
            *val_dict
                .get(vi)
                .ok_or_else(|| corrupt(dec.position(), format!("value index {vi} out of range")))?
        } else {
            dec.get_len_prefixed()?
        };
        rows.push(ColdRow {
            key: key.to_vec(),
            ts,
            value: value.to_vec(),
        });
    }
    if !dec.is_empty() {
        return Err(corrupt(
            dec.position(),
            format!("{} trailing bytes after cold-block rows", dec.remaining()),
        ));
    }
    Ok(ColdBlock { window, kind, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ColdRow> {
        vec![
            ColdRow {
                key: b"auction-17".to_vec(),
                ts: 1_005,
                value: b"bid:900".to_vec(),
            },
            ColdRow {
                key: b"auction-17".to_vec(),
                ts: 1_009,
                value: b"bid:901".to_vec(),
            },
            ColdRow {
                key: b"auction-3".to_vec(),
                ts: 1_012,
                value: b"bid:900".to_vec(),
            },
        ]
    }

    #[test]
    fn round_trips_both_modes() {
        let w = WindowId::new(1_000, 2_000);
        for compress in [false, true] {
            let blob = encode_block(w, BlockKind::Values, &rows(), compress);
            let block = decode_block(&blob).unwrap();
            assert_eq!(block.window, w);
            assert_eq!(block.kind, BlockKind::Values);
            assert_eq!(block.rows, rows());
        }
    }

    #[test]
    fn dictionary_beats_plain_rows_on_repetitive_data() {
        let w = WindowId::new(0, 1_000);
        let many: Vec<ColdRow> = (0..200)
            .map(|i| ColdRow {
                key: format!("person-{}", i % 8).into_bytes(),
                ts: i,
                value: b"some-repeated-payload".to_vec(),
            })
            .collect();
        let blob = encode_block(w, BlockKind::Values, &many, true);
        assert!(
            blob.len() * 3 < uncompressed_size(&many),
            "expected >3x compression, got {} vs {}",
            blob.len(),
            uncompressed_size(&many)
        );
    }

    #[test]
    fn empty_block_round_trips() {
        let w = WindowId::new(5, 5);
        let blob = encode_block(w, BlockKind::Aggregates, &[], true);
        let block = decode_block(&blob).unwrap();
        assert!(block.rows.is_empty());
        assert_eq!(block.kind, BlockKind::Aggregates);
    }

    #[test]
    fn negative_and_unordered_timestamps_round_trip() {
        let w = WindowId::new(-500, 500);
        let rows = vec![
            ColdRow {
                key: b"k".to_vec(),
                ts: 400,
                value: b"a".to_vec(),
            },
            ColdRow {
                key: b"k".to_vec(),
                ts: -499,
                value: b"b".to_vec(),
            },
        ];
        let blob = encode_block(w, BlockKind::Values, &rows, false);
        assert_eq!(decode_block(&blob).unwrap().rows, rows);
    }

    #[test]
    fn truncation_is_a_structured_error() {
        let blob = encode_block(WindowId::new(0, 10), BlockKind::Values, &rows(), true);
        for cut in 0..blob.len() {
            let err = decode_block(&blob[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::UnexpectedEof { .. }
                        | StoreError::Corruption { .. }
                        | StoreError::VarintOverflow
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn bitflip_fails_crc() {
        let mut blob = encode_block(WindowId::new(0, 10), BlockKind::Values, &rows(), true);
        let mid = blob.len() / 2;
        blob[mid] ^= 0x40;
        assert!(matches!(
            decode_block(&blob).unwrap_err(),
            StoreError::Corruption { .. }
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = encode_block(WindowId::new(0, 10), BlockKind::Values, &rows(), false);
        blob[0] = b'X';
        assert!(matches!(
            decode_block(&blob).unwrap_err(),
            StoreError::Corruption { .. }
        ));
    }
}
