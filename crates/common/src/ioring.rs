//! Background I/O ring: a completion-queue-style submission API backed by
//! a small thread pool over the [`Vfs`](crate::vfs::Vfs) seam.
//!
//! The ring exists so stores can move *anticipatable* reads — predictive
//! batch reads ahead of an ETT-predicted trigger, per-window AAR log
//! scans, LSM block warm-ups, serving snapshots — off the worker's hot
//! path. The shape deliberately mirrors io_uring: callers `submit` jobs
//! tagged with an opaque `tag`, the pool executes them against the ring's
//! shared `Arc<dyn Vfs>`, and callers later `drain_tag` finished
//! completions (non-blocking) or `wait` on a specific submission.
//!
//! Two properties make the ring safe to thread through a deterministic,
//! fault-injected system:
//!
//! 1. **Faults still fire.** Jobs receive the ring's VFS handle — the
//!    *same* `FaultVfs` the rest of the worker uses — so the global fault
//!    op counter covers background I/O too. A `FaultKind::Crash` that
//!    fires on a pool thread panics there; the ring catches the unwind,
//!    parks the payload in the completion, and re-raises it verbatim on
//!    the worker thread when the completion is consumed
//!    ([`Completion::into_result`]). The supervisor sees an ordinary
//!    worker panic and recovery proceeds as if the read had been
//!    synchronous.
//! 2. **Order never matters.** Completions are a bag, not a queue:
//!    consumers must validate results against current store state before
//!    installing them. [`IoRing::with_shuffle_seed`] builds a ring that
//!    inserts completions at seeded pseudo-random positions so tests can
//!    prove output equivalence under adversarial completion orderings.

use std::any::Any;
use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::vfs::Vfs;

/// A background job: runs on a pool thread against the ring's VFS and
/// returns an arbitrary payload for the submitter to downcast.
pub type IoJob = Box<dyn FnOnce(&Arc<dyn Vfs>) -> io::Result<Box<dyn Any + Send>> + Send>;

/// How a background job ended.
pub enum IoOutcome {
    /// The job returned a payload.
    Ok(Box<dyn Any + Send>),
    /// The job returned an I/O error (e.g. an injected fault).
    Err(io::Error),
    /// The job panicked; the unwind payload is carried so the consumer
    /// can re-raise it on its own thread.
    Panicked(Box<dyn Any + Send>),
}

impl std::fmt::Debug for IoOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoOutcome::Ok(_) => f.write_str("IoOutcome::Ok(..)"),
            IoOutcome::Err(e) => write!(f, "IoOutcome::Err({e})"),
            IoOutcome::Panicked(_) => f.write_str("IoOutcome::Panicked(..)"),
        }
    }
}

/// A finished submission.
///
/// The three timestamps (nanoseconds from the ring's creation) record
/// the job's full lifecycle — `submit` when it was queued, `start`
/// when a pool thread picked it up, `done` when it finished — so
/// consumers can distinguish queueing delay from execution time. The
/// `start − submit` gap also feeds the `prefetch_queue_delay_nanos`
/// histogram when the ring carries a telemetry handle.
#[derive(Debug)]
pub struct Completion {
    /// The id `submit` returned for this job.
    pub id: u64,
    /// The caller-chosen routing tag the job was submitted under.
    pub tag: u64,
    /// The job's result.
    pub outcome: IoOutcome,
    /// Nanoseconds (ring epoch) when the job was submitted.
    pub submit_nanos: u64,
    /// Nanoseconds (ring epoch) when a pool thread started the job.
    pub start_nanos: u64,
    /// Nanoseconds (ring epoch) when the job finished.
    pub done_nanos: u64,
}

impl Completion {
    /// Time the job sat queued before a pool thread picked it up.
    pub fn queue_delay_nanos(&self) -> u64 {
        self.start_nanos.saturating_sub(self.submit_nanos)
    }
}

impl Completion {
    /// Unwraps the payload, re-raising a captured panic on the calling
    /// thread — this is what keeps injected crash faults deterministic:
    /// the original panic payload surfaces on the worker exactly where
    /// the completion is consumed.
    pub fn into_result(self) -> io::Result<Box<dyn Any + Send>> {
        match self.outcome {
            IoOutcome::Ok(payload) => Ok(payload),
            IoOutcome::Err(e) => Err(e),
            IoOutcome::Panicked(payload) => resume_unwind(payload),
        }
    }
}

/// Per-worker I/O policy: how many ring threads to run and how far ahead
/// (in event time) the prefetcher may look. Carried on
/// [`OperatorContext`](crate::backend::OperatorContext) so each backend
/// factory can build a ring over its own VFS.
#[derive(Clone, Debug)]
pub struct IoPolicy {
    /// Pool threads per backend ring. `0` disables the ring entirely
    /// (callers must treat `threads == 0` as "stay synchronous").
    pub threads: usize,
    /// How far ahead of current stream time (milliseconds of event time)
    /// prefetch submissions may target.
    pub prefetch_horizon: i64,
    /// Soft cap on bytes of prefetched state resident per store instance.
    pub prefetch_budget_bytes: u64,
    /// Test knob: when set, completions are inserted at seeded
    /// pseudo-random queue positions to exercise reordering.
    pub shuffle_seed: Option<u64>,
}

impl IoPolicy {
    /// A policy with `threads` ring threads and default horizon/budget.
    pub fn with_threads(threads: usize) -> Self {
        IoPolicy {
            threads,
            prefetch_horizon: 500,
            prefetch_budget_bytes: 8 << 20,
            shuffle_seed: None,
        }
    }
}

struct QueuedJob {
    id: u64,
    tag: u64,
    job: IoJob,
    submit_nanos: u64,
    /// Trace context captured from the submitting thread, so the pool
    /// thread's span parents to the exact store call that issued the
    /// read ([`crate::trace`]).
    ctx: Option<crate::trace::TraceCtx>,
}

struct RingState {
    queue: VecDeque<QueuedJob>,
    completions: Vec<Completion>,
    in_flight: usize,
    next_id: u64,
    shutdown: bool,
    shuffle: Option<u64>,
}

struct Shared {
    state: Mutex<RingState>,
    /// Signalled when work arrives or shutdown is requested.
    work: Condvar,
    /// Signalled when a completion lands.
    done: Condvar,
    /// Clock origin for the completion timestamps.
    epoch: std::time::Instant,
    /// When present: queue-delay histogram plus span recording for
    /// traced jobs.
    telemetry: Option<Arc<crate::telemetry::Telemetry>>,
}

/// The ring itself. Clone the `Arc<IoRing>` freely; submissions from any
/// thread are fair-queued to the pool.
pub struct IoRing {
    shared: Arc<Shared>,
    vfs: Arc<dyn Vfs>,
    workers: Vec<JoinHandle<()>>,
}

impl IoRing {
    /// Builds a ring with `threads` pool threads (min 1) over `vfs`.
    pub fn new(vfs: Arc<dyn Vfs>, threads: usize) -> Self {
        Self::build(vfs, threads, None, None)
    }

    /// Like [`IoRing::new`] but completions are inserted at seeded
    /// pseudo-random positions among the already-pending completions, so
    /// drain order is adversarial yet reproducible.
    pub fn with_shuffle_seed(vfs: Arc<dyn Vfs>, threads: usize, seed: u64) -> Self {
        Self::build(vfs, threads, Some(seed), None)
    }

    /// The constructor backend factories use: optional seeded shuffle
    /// plus a telemetry handle. With telemetry the ring records the
    /// `prefetch_queue_delay_nanos` histogram on every completion and,
    /// when a tracer is installed, an `io`-category span for every job
    /// submitted under an active trace context.
    pub fn with_telemetry(
        vfs: Arc<dyn Vfs>,
        threads: usize,
        shuffle: Option<u64>,
        telemetry: Option<Arc<crate::telemetry::Telemetry>>,
    ) -> Self {
        Self::build(vfs, threads, shuffle, telemetry)
    }

    fn build(
        vfs: Arc<dyn Vfs>,
        threads: usize,
        shuffle: Option<u64>,
        telemetry: Option<Arc<crate::telemetry::Telemetry>>,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(RingState {
                queue: VecDeque::new(),
                completions: Vec::new(),
                in_flight: 0,
                next_id: 0,
                shutdown: false,
                shuffle,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            epoch: std::time::Instant::now(),
            telemetry,
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let vfs = Arc::clone(&vfs);
                std::thread::Builder::new()
                    .name(format!("flowkv-ioring-{i}"))
                    .spawn(move || worker_loop(shared, vfs))
                    .expect("spawn ioring worker")
            })
            .collect();
        IoRing {
            shared,
            vfs,
            workers,
        }
    }

    /// The VFS the ring's jobs run against.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// Queues `job` under `tag` and returns its submission id. The
    /// submitting thread's active trace context (if any) rides along so
    /// the job's span links back to the store call that issued it.
    pub fn submit(&self, tag: u64, job: IoJob) -> u64 {
        let submit_nanos = self.shared.epoch.elapsed().as_nanos() as u64;
        let ctx = crate::trace::current();
        let mut st = self.shared.state.lock().expect("ioring lock");
        let id = st.next_id;
        st.next_id += 1;
        st.queue.push_back(QueuedJob {
            id,
            tag,
            job,
            submit_nanos,
            ctx,
        });
        drop(st);
        self.shared.work.notify_one();
        id
    }

    /// Removes and returns every finished completion for `tag` without
    /// blocking. Jobs still queued or running are left alone.
    pub fn drain_tag(&self, tag: u64) -> Vec<Completion> {
        let mut st = self.shared.state.lock().expect("ioring lock");
        let mut out = Vec::new();
        let mut i = 0;
        while i < st.completions.len() {
            if st.completions[i].tag == tag {
                out.push(st.completions.remove(i));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Blocks until submission `id` completes and returns it.
    pub fn wait(&self, id: u64) -> Completion {
        let mut st = self.shared.state.lock().expect("ioring lock");
        loop {
            if let Some(pos) = st.completions.iter().position(|c| c.id == id) {
                return st.completions.remove(pos);
            }
            st = self.shared.done.wait(st).expect("ioring wait");
        }
    }

    /// Blocks until nothing is queued or running. Finished completions
    /// are left in place for `drain_tag`/`wait` — unlike [`IoRing::quiesce`],
    /// which takes them.
    pub fn wait_idle(&self) {
        let mut st = self.shared.state.lock().expect("ioring lock");
        while !st.queue.is_empty() || st.in_flight > 0 {
            st = self.shared.done.wait(st).expect("ioring idle");
        }
    }

    /// Blocks until nothing is queued or running, then removes and
    /// returns every remaining completion (all tags).
    pub fn quiesce(&self) -> Vec<Completion> {
        let mut st = self.shared.state.lock().expect("ioring lock");
        while !st.queue.is_empty() || st.in_flight > 0 {
            st = self.shared.done.wait(st).expect("ioring quiesce");
        }
        std::mem::take(&mut st.completions)
    }

    /// Submissions queued or running (completions not yet drained do not
    /// count).
    pub fn pending(&self) -> usize {
        let st = self.shared.state.lock().expect("ioring lock");
        st.queue.len() + st.in_flight
    }
}

impl Drop for IoRing {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("ioring lock");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, vfs: Arc<dyn Vfs>) {
    // Resolved lazily because the tracer is typically installed on the
    // telemetry handle after the backend (and its ring) was built.
    let mut recorder: Option<Arc<crate::trace::SpanRecorder>> = None;
    let queue_delay = shared
        .telemetry
        .as_ref()
        .map(|t| t.registry().histogram("prefetch_queue_delay_nanos"));
    loop {
        let queued = {
            let mut st = shared.state.lock().expect("ioring lock");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.in_flight += 1;
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).expect("ioring worker wait");
            }
        };
        let QueuedJob {
            id,
            tag,
            job,
            submit_nanos,
            ctx,
        } = queued;
        let start_nanos = shared.epoch.elapsed().as_nanos() as u64;
        let span = ctx.and_then(|ctx| {
            if recorder.is_none() {
                recorder = shared.telemetry.as_ref().and_then(|t| t.trace()).map(|h| {
                    let name = std::thread::current()
                        .name()
                        .unwrap_or("ioring")
                        .to_string();
                    h.thread(&name)
                });
            }
            recorder.as_ref().map(|rec| {
                rec.begin_with(
                    "io_job",
                    "io",
                    Some(ctx),
                    vec![
                        ("job", id as i64),
                        ("tag", tag as i64),
                        (
                            "queue_delay",
                            start_nanos.saturating_sub(submit_nanos) as i64,
                        ),
                    ],
                )
            })
        });
        let outcome = match catch_unwind(AssertUnwindSafe(|| job(&vfs))) {
            Ok(Ok(payload)) => IoOutcome::Ok(payload),
            Ok(Err(e)) => IoOutcome::Err(e),
            Err(payload) => IoOutcome::Panicked(payload),
        };
        let done_nanos = shared.epoch.elapsed().as_nanos() as u64;
        if let (Some(span), Some(rec)) = (span, recorder.as_ref()) {
            rec.end_with(
                span,
                "io_job",
                "io",
                vec![("ok", matches!(outcome, IoOutcome::Ok(_)) as i64)],
            );
        }
        if let Some(h) = &queue_delay {
            h.record(start_nanos.saturating_sub(submit_nanos));
        }
        let mut st = shared.state.lock().expect("ioring lock");
        st.in_flight -= 1;
        let completion = Completion {
            id,
            tag,
            outcome,
            submit_nanos,
            start_nanos,
            done_nanos,
        };
        match st.shuffle {
            Some(ref mut seed) => {
                // SplitMix64 step, mirroring vfs::FaultPlan's generator, so
                // reorder tests are reproducible from a single seed.
                *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let pos = (z as usize) % (st.completions.len() + 1);
                st.completions.insert(pos, completion);
            }
            None => st.completions.push(completion),
        }
        drop(st);
        shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::StdVfs;

    fn ring(threads: usize) -> IoRing {
        IoRing::new(StdVfs::shared(), threads)
    }

    #[test]
    fn submit_and_drain_by_tag() {
        let r = ring(2);
        for i in 0..4u64 {
            r.submit(i % 2, Box::new(move |_vfs| Ok(Box::new(i) as _)));
        }
        let mut even: Vec<u64> = Vec::new();
        while even.len() < 2 {
            for c in r.drain_tag(0) {
                even.push(*c.into_result().unwrap().downcast::<u64>().unwrap());
            }
        }
        even.sort_unstable();
        assert_eq!(even, vec![0, 2]);
        let odd = r.quiesce();
        assert!(odd.iter().all(|c| c.tag == 1));
        assert_eq!(odd.len(), 2);
    }

    #[test]
    fn wait_blocks_for_specific_id() {
        let r = ring(1);
        let slow = r.submit(
            7,
            Box::new(|_vfs| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                Ok(Box::new("slow".to_string()) as _)
            }),
        );
        let fast = r.submit(7, Box::new(|_vfs| Ok(Box::new("fast".to_string()) as _)));
        let c = r.wait(fast);
        assert_eq!(
            *c.into_result().unwrap().downcast::<String>().unwrap(),
            "fast"
        );
        let c = r.wait(slow);
        assert_eq!(
            *c.into_result().unwrap().downcast::<String>().unwrap(),
            "slow"
        );
    }

    #[test]
    fn panics_are_captured_and_re_raised() {
        let r = ring(1);
        let id = r.submit(0, Box::new(|_vfs| panic!("flowkv-fault: injected crash")));
        let c = r.wait(id);
        assert!(matches!(c.outcome, IoOutcome::Panicked(_)));
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = c.into_result();
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "flowkv-fault: injected crash");
    }

    #[test]
    fn io_errors_surface_as_err() {
        let r = ring(1);
        let id = r.submit(
            0,
            Box::new(|vfs| {
                vfs.read(std::path::Path::new("/definitely/not/here.aurd"))?;
                Ok(Box::new(()) as _)
            }),
        );
        let c = r.wait(id);
        assert!(c.into_result().is_err());
    }

    #[test]
    fn shuffled_completion_order_is_deterministic() {
        let order = |seed: u64| -> Vec<u64> {
            let r = IoRing::with_shuffle_seed(StdVfs::shared(), 1, seed);
            for i in 0..8u64 {
                r.submit(0, Box::new(move |_vfs| Ok(Box::new(i) as _)));
            }
            r.quiesce()
                .into_iter()
                .map(|c| *c.into_result().unwrap().downcast::<u64>().unwrap())
                .collect()
        };
        // One pool thread finishes jobs in submission order, so any
        // deviation below comes from the seeded insert position.
        assert_eq!(order(42), order(42));
        assert_ne!(order(42), order(43));
    }

    #[test]
    fn completions_carry_lifecycle_timestamps() {
        let telemetry = crate::telemetry::Telemetry::new_shared();
        let r = IoRing::with_telemetry(StdVfs::shared(), 1, None, Some(Arc::clone(&telemetry)));
        // One slow job holds the single pool thread so the second job
        // accrues measurable queue delay.
        r.submit(
            0,
            Box::new(|_vfs| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                Ok(Box::new(()) as _)
            }),
        );
        let id = r.submit(0, Box::new(|_vfs| Ok(Box::new(()) as _)));
        let c = r.wait(id);
        assert!(c.submit_nanos <= c.start_nanos);
        assert!(c.start_nanos <= c.done_nanos);
        assert!(c.queue_delay_nanos() >= 5_000_000, "second job waited");
        let snap = telemetry
            .registry()
            .histogram("prefetch_queue_delay_nanos")
            .snapshot();
        assert!(snap.count >= 2);
    }

    #[test]
    fn traced_submission_records_io_span() {
        let telemetry = crate::telemetry::Telemetry::new_shared();
        let tracer = crate::trace::Tracer::new();
        telemetry.set_trace(crate::trace::TraceHandle {
            tracer: Arc::clone(&tracer),
            pid: 0,
        });
        let r = IoRing::with_telemetry(StdVfs::shared(), 1, None, Some(Arc::clone(&telemetry)));
        let rec = tracer.thread(0, "submitter");
        let id = {
            let _scope = crate::trace::enter(
                &rec,
                crate::trace::TraceCtx {
                    trace: 9,
                    span: 4,
                    born: 0,
                },
            );
            r.submit(1, Box::new(|_vfs| Ok(Box::new(()) as _)))
        };
        let _ = r.wait(id);
        let threads = tracer.snapshot();
        let io = threads
            .iter()
            .flat_map(|t| &t.events)
            .find(|e| e.name == "io_job")
            .expect("io span recorded");
        assert_eq!(io.trace, 9);
        assert_eq!(io.parent, 4);
        // Untraced submissions stay silent.
        let before: usize = tracer.snapshot().iter().map(|t| t.events.len()).sum();
        let id = r.submit(1, Box::new(|_vfs| Ok(Box::new(()) as _)));
        let _ = r.wait(id);
        let after: usize = tracer.snapshot().iter().map(|t| t.events.len()).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn quiesce_waits_for_running_jobs() {
        let r = ring(2);
        for _ in 0..6 {
            r.submit(
                3,
                Box::new(|_vfs| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    Ok(Box::new(()) as _)
                }),
            );
        }
        let all = r.quiesce();
        assert_eq!(all.len(), 6);
        assert_eq!(r.pending(), 0);
    }
}
