//! Core vocabulary: timestamps, windows, and timestamped key-value tuples.
//!
//! Streaming applications process infinite streams of timestamped
//! key-value tuples `e = (k, v, t)` (paper §2.1). Window operations group
//! tuples into finite windows, each described by a half-open event-time
//! interval `[start, end)`.

use std::fmt;

use crate::codec::{self, Decoder};
use crate::error::Result;

/// Event-time instant in milliseconds since the epoch of the stream.
pub type Timestamp = i64;

/// Sentinel timestamp greater than every real timestamp.
///
/// Used as the watermark value that closes all remaining windows when a
/// bounded stream ends, mirroring Flink's `Watermark.MAX_WATERMARK`.
pub const MAX_TIMESTAMP: Timestamp = i64::MAX;

/// Sentinel timestamp smaller than every real timestamp.
pub const MIN_TIMESTAMP: Timestamp = i64::MIN;

/// A window identifier: the half-open event-time interval `[start, end)`.
///
/// Windows are the unit of state organization in every store of this
/// workspace. The FlowKV paper defines a window by its start and end time
/// boundaries (§2.1); tuples assigned to several windows are replicated by
/// the engine, one copy per window.
///
/// # Examples
///
/// ```
/// use flowkv_common::types::WindowId;
///
/// let w = WindowId::new(0, 100_000);
/// assert_eq!(w.length(), 100_000);
/// assert!(w.contains(99_999));
/// assert!(!w.contains(100_000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId {
    /// Inclusive start of the window in event time.
    pub start: Timestamp,
    /// Exclusive end of the window in event time.
    pub end: Timestamp,
}

impl WindowId {
    /// Encoded size of a window identifier in bytes.
    pub const ENCODED_LEN: usize = 16;

    /// Creates a window for the half-open interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`; a window must be a valid interval.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start <= end, "window start {start} exceeds end {end}");
        WindowId { start, end }
    }

    /// The window covering all of event time (global windows, paper Q12).
    pub fn global() -> Self {
        WindowId {
            start: MIN_TIMESTAMP,
            end: MAX_TIMESTAMP,
        }
    }

    /// Length of the window in event-time milliseconds.
    ///
    /// Saturates for the global window.
    pub fn length(&self) -> i64 {
        self.end.saturating_sub(self.start)
    }

    /// Returns `true` if `ts` falls inside the half-open interval.
    pub fn contains(&self, ts: Timestamp) -> bool {
        self.start <= ts && ts < self.end
    }

    /// Returns `true` if the two windows overlap in event time.
    pub fn intersects(&self, other: &WindowId) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Returns the smallest window covering both `self` and `other`.
    pub fn cover(&self, other: &WindowId) -> WindowId {
        WindowId {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Appends the fixed-width encoding of the window to `buf`.
    pub fn encode_to(&self, buf: &mut Vec<u8>) {
        codec::put_i64(buf, self.start);
        codec::put_i64(buf, self.end);
    }

    /// Decodes a window previously written by [`WindowId::encode_to`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Self> {
        let start = dec.get_i64()?;
        let end = dec.get_i64()?;
        Ok(WindowId { start, end })
    }

    /// Encodes the window into a big-endian byte key that sorts the same
    /// way the window orders by `(start, end)`.
    ///
    /// Baseline stores use this as the window portion of their composite
    /// keys so that range scans over a window prefix are contiguous.
    pub fn to_ordered_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&order_preserving(self.start));
        out[8..].copy_from_slice(&order_preserving(self.end));
        out
    }

    /// Decodes a window from the encoding of [`WindowId::to_ordered_bytes`].
    pub fn from_ordered_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 16 {
            return Err(crate::error::StoreError::UnexpectedEof { what: "WindowId" });
        }
        let start = from_order_preserving(&bytes[..8]);
        let end = from_order_preserving(&bytes[8..16]);
        Ok(WindowId { start, end })
    }
}

impl fmt::Debug for WindowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl fmt::Display for WindowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Maps an `i64` to big-endian bytes whose lexicographic order matches the
/// numeric order (sign bit flipped).
fn order_preserving(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Inverse of [`order_preserving`].
fn from_order_preserving(bytes: &[u8]) -> i64 {
    let mut arr = [0u8; 8];
    arr.copy_from_slice(&bytes[..8]);
    (u64::from_be_bytes(arr) ^ (1u64 << 63)) as i64
}

/// A timestamped key-value tuple `e = (k, v, t)` flowing through the engine.
///
/// # Examples
///
/// ```
/// use flowkv_common::types::Tuple;
///
/// let t = Tuple::new(b"user-7".to_vec(), b"bid:42".to_vec(), 1_000);
/// assert_eq!(t.key, b"user-7");
/// assert_eq!(t.timestamp, 1_000);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tuple {
    /// Partitioning key of the tuple.
    pub key: Vec<u8>,
    /// Opaque serialized value.
    pub value: Vec<u8>,
    /// Event-time timestamp.
    pub timestamp: Timestamp,
}

impl Tuple {
    /// Creates a tuple from its three components.
    pub fn new(key: Vec<u8>, value: Vec<u8>, timestamp: Timestamp) -> Self {
        Tuple {
            key,
            value,
            timestamp,
        }
    }

    /// Approximate in-memory footprint of the tuple in bytes.
    pub fn memory_size(&self) -> usize {
        self.key.len() + self.value.len() + std::mem::size_of::<Timestamp>()
    }

    /// Appends a length-prefixed encoding of the tuple to `buf`.
    pub fn encode_to(&self, buf: &mut Vec<u8>) {
        codec::put_len_prefixed(buf, &self.key);
        codec::put_len_prefixed(buf, &self.value);
        codec::put_varint_i64(buf, self.timestamp);
    }

    /// Decodes a tuple previously written by [`Tuple::encode_to`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Self> {
        let key = dec.get_len_prefixed()?.to_vec();
        let value = dec.get_len_prefixed()?.to_vec();
        let timestamp = dec.get_varint_i64()?;
        Ok(Tuple {
            key,
            value,
            timestamp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_half_open() {
        let w = WindowId::new(10, 20);
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(!w.contains(9));
    }

    #[test]
    fn window_intersection() {
        let a = WindowId::new(0, 10);
        let b = WindowId::new(9, 15);
        let c = WindowId::new(10, 15);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn window_cover_is_union_hull() {
        let a = WindowId::new(0, 10);
        let b = WindowId::new(5, 30);
        assert_eq!(a.cover(&b), WindowId::new(0, 30));
    }

    #[test]
    fn global_window_contains_everything() {
        let g = WindowId::global();
        assert!(g.contains(0));
        assert!(g.contains(MAX_TIMESTAMP - 1));
        assert!(g.contains(MIN_TIMESTAMP));
    }

    #[test]
    #[should_panic(expected = "exceeds end")]
    fn inverted_window_panics() {
        let _ = WindowId::new(5, 4);
    }

    #[test]
    fn window_roundtrip_codec() {
        let w = WindowId::new(-77, 1_000_000);
        let mut buf = Vec::new();
        w.encode_to(&mut buf);
        assert_eq!(buf.len(), WindowId::ENCODED_LEN);
        let mut dec = Decoder::new(&buf);
        assert_eq!(WindowId::decode_from(&mut dec).unwrap(), w);
    }

    #[test]
    fn ordered_bytes_preserve_ordering() {
        let windows = [
            WindowId::new(MIN_TIMESTAMP, -5),
            WindowId::new(-100, 0),
            WindowId::new(-100, 50),
            WindowId::new(0, 1),
            WindowId::new(7, 20),
            WindowId::new(7, MAX_TIMESTAMP),
        ];
        for pair in windows.windows(2) {
            let a = pair[0].to_ordered_bytes();
            let b = pair[1].to_ordered_bytes();
            assert!(a < b, "{:?} !< {:?}", pair[0], pair[1]);
        }
        for w in windows {
            assert_eq!(
                WindowId::from_ordered_bytes(&w.to_ordered_bytes()).unwrap(),
                w
            );
        }
    }

    #[test]
    fn tuple_roundtrip_codec() {
        let t = Tuple::new(b"k".to_vec(), vec![0u8; 300], -42);
        let mut buf = Vec::new();
        t.encode_to(&mut buf);
        let mut dec = Decoder::new(&buf);
        assert_eq!(Tuple::decode_from(&mut dec).unwrap(), t);
        assert!(dec.is_empty());
    }

    #[test]
    fn tuple_memory_size_counts_payload() {
        let t = Tuple::new(vec![0; 4], vec![0; 10], 0);
        assert_eq!(t.memory_size(), 4 + 10 + 8);
    }
}
