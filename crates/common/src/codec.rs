//! Byte-level encoding primitives: varints, fixed-width integers,
//! length-prefixed slices, and CRC32.
//!
//! Every on-disk structure in the workspace is built from these
//! primitives, so the encoding is deliberately small and allocation-free
//! on the read path (the [`Decoder`] borrows its input).

use crate::error::{Result, StoreError};

/// Maximum encoded size of a 64-bit varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `v` to `buf` as a LEB128 varint.
pub fn put_varint_u64(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Appends `v` to `buf` as a zigzag-encoded varint.
pub fn put_varint_i64(buf: &mut Vec<u8>, v: i64) {
    put_varint_u64(buf, zigzag_encode(v));
}

/// Appends `v` to `buf` as a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` to `buf` as a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` to `buf` as a little-endian `i64`.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a varint length followed by the bytes of `data`.
pub fn put_len_prefixed(buf: &mut Vec<u8>, data: &[u8]) {
    put_varint_u64(buf, data.len() as u64);
    buf.extend_from_slice(data);
}

/// Maps a signed integer to an unsigned one so small magnitudes stay small.
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A zero-copy cursor over an encoded byte slice.
///
/// # Examples
///
/// ```
/// use flowkv_common::codec::{put_varint_u64, Decoder};
///
/// let mut buf = Vec::new();
/// put_varint_u64(&mut buf, 300);
/// let mut dec = Decoder::new(&buf);
/// assert_eq!(dec.get_varint_u64().unwrap(), 300);
/// assert!(dec.is_empty());
/// ```
#[derive(Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Returns `true` once all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads a LEB128 varint.
    pub fn get_varint_u64(&mut self) -> Result<u64> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            if shift >= 70 {
                return Err(StoreError::VarintOverflow);
            }
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or(StoreError::UnexpectedEof { what: "varint" })?;
            self.pos += 1;
            result |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-encoded varint.
    pub fn get_varint_i64(&mut self) -> Result<i64> {
        Ok(zigzag_decode(self.get_varint_u64()?))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let bytes = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(
            bytes.try_into().expect("length checked"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let bytes = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(
            bytes.try_into().expect("length checked"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        let bytes = self.take(8, "i64")?;
        Ok(i64::from_le_bytes(
            bytes.try_into().expect("length checked"),
        ))
    }

    /// Reads a varint length followed by that many bytes.
    pub fn get_len_prefixed(&mut self) -> Result<&'a [u8]> {
        let len = self.get_varint_u64()? as usize;
        self.take(len, "length-prefixed bytes")
    }

    /// Consumes exactly `n` bytes, failing with [`StoreError::UnexpectedEof`]
    /// when fewer remain.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::UnexpectedEof { what });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected) over `data`.
///
/// Slicing-by-8: eight compile-time tables let each iteration fold eight
/// input bytes into the running CRC with eight independent lookups,
/// instead of the classic one-byte-per-iteration loop. Every log record
/// written or verified in the workspace pays this checksum, so the wide
/// kernel is on the hot path of all three pattern stores and both
/// baselines.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLES: [[u32; 256]; 8] = crc32_tables();
    let mut crc: u32 = 0xffff_ffff;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("chunk is 8 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("chunk is 8 bytes"));
        crc = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        let idx = ((crc ^ u32::from(byte)) & 0xff) as usize;
        crc = (crc >> 8) ^ TABLES[0][idx];
    }
    !crc
}

/// The reference byte-at-a-time implementation the sliced kernel must
/// agree with bit-for-bit (kept for the equivalence property test).
#[cfg(test)]
fn crc32_scalar(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc: u32 = 0xffff_ffff;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xff) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

/// Builds the reflected CRC32 lookup table at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Builds the eight slicing tables: `TABLES[0]` is the classic table, and
/// `TABLES[k][i]` advances the CRC of byte `i` through `k` extra zero
/// bytes, so eight lookups fold one aligned 8-byte word.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let base = crc32_table();
    let mut tables = [[0u32; 256]; 8];
    tables[0] = base;
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ base[(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint_u64(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_LEN);
            let mut dec = Decoder::new(&buf);
            assert_eq!(dec.get_varint_u64().unwrap(), v);
            assert!(dec.is_empty());
        }
    }

    #[test]
    fn signed_varint_roundtrip() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            let mut buf = Vec::new();
            put_varint_i64(&mut buf, v);
            let mut dec = Decoder::new(&buf);
            assert_eq!(dec.get_varint_i64().unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }

    #[test]
    fn truncated_varint_is_eof() {
        let buf = [0x80u8, 0x80];
        let mut dec = Decoder::new(&buf);
        assert!(matches!(
            dec.get_varint_u64(),
            Err(StoreError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn oversized_varint_is_overflow() {
        let buf = [0xffu8; 11];
        let mut dec = Decoder::new(&buf);
        assert!(matches!(
            dec.get_varint_u64(),
            Err(StoreError::VarintOverflow)
        ));
    }

    #[test]
    fn fixed_width_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, 0x0123_4567_89ab_cdef);
        put_i64(&mut buf, -12345);
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(dec.get_i64().unwrap(), -12345);
    }

    #[test]
    fn len_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_len_prefixed(&mut buf, b"hello");
        put_len_prefixed(&mut buf, b"");
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.get_len_prefixed().unwrap(), b"hello");
        assert_eq!(dec.get_len_prefixed().unwrap(), b"");
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sliced_crc_matches_scalar_at_every_alignment() {
        // Lengths straddling the 8-byte kernel boundary, including the
        // remainder-only and exact-multiple cases.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), crc32_scalar(&data[..len]), "len {len}");
        }
    }

    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn sliced_crc_equals_scalar(data in prop::collection::vec(any::<u8>(), 0..4096)) {
                prop_assert_eq!(crc32(&data), crc32_scalar(&data));
            }
        }
    }

    #[test]
    fn crc32_detects_bit_flip() {
        let a = crc32(b"stream processing");
        let b = crc32(b"strean processing");
        assert_ne!(a, b);
    }
}
