//! Queryable-state registry: snapshot views of live operator state.
//!
//! The paper's stores are single-writer — every [`StateBackend`] method
//! takes `&mut self` and each store instance is owned by exactly one
//! worker thread (§2.1). To serve external reads without perturbing that
//! contract, the serving layer uses **epoch-pinned published views**:
//!
//! 1. At watermark boundaries, the owning worker calls
//!    [`StateBackend::read_view`], which builds an immutable, owned
//!    [`StateView`] — a point-in-time snapshot of the store's live
//!    `(key, window)` entries (write buffers plus un-consumed on-disk
//!    state).
//! 2. The worker publishes the view into the process-wide
//!    [`StateRegistry`] under its [`StateKey`].
//! 3. Server threads resolve a `StateKey` to an `Arc<StateView>` and
//!    answer point lookups and window-range scans against it, entirely
//!    lock-free after the registry read.
//!
//! Readers therefore always observe a consistent snapshot aligned to a
//! watermark (never a half-applied update), at the cost of staleness
//! bounded by the watermark interval. This mirrors Flink's queryable
//! state, which likewise reads a consistent copy rather than the live
//! RocksDB instance.
//!
//! [`StateBackend`]: crate::backend::StateBackend
//! [`StateBackend::read_view`]: crate::backend::StateBackend::read_view

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::Bound;
use std::sync::{Arc, RwLock};

use crate::metrics::MetricsSnapshot;
use crate::types::{Timestamp, WindowId, MIN_TIMESTAMP};

/// Identifies one operator partition's published state within a process.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateKey {
    /// Name of the job the operator runs in.
    pub job: String,
    /// Name of the logical operator.
    pub operator: String,
    /// Physical partition index.
    pub partition: usize,
}

impl StateKey {
    /// Convenience constructor.
    pub fn new(job: impl Into<String>, operator: impl Into<String>, partition: usize) -> Self {
        StateKey {
            job: job.into(),
            operator: operator.into(),
            partition,
        }
    }
}

impl fmt::Display for StateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/p{}", self.job, self.operator, self.partition)
    }
}

/// The access pattern of the store a view was taken from (paper §3.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StatePattern {
    /// Append & Aligned Read.
    Aar,
    /// Append & Unaligned Read.
    Aur,
    /// Read-Modify-Write.
    Rmw,
    /// Pattern unknown (e.g. a baseline store).
    #[default]
    Unknown,
}

impl StatePattern {
    /// Stable single-byte encoding for the wire protocol.
    pub fn as_u8(self) -> u8 {
        match self {
            StatePattern::Aar => 0,
            StatePattern::Aur => 1,
            StatePattern::Rmw => 2,
            StatePattern::Unknown => 3,
        }
    }

    /// Inverse of [`as_u8`](Self::as_u8); unknown bytes map to
    /// [`StatePattern::Unknown`].
    pub fn from_u8(b: u8) -> Self {
        match b {
            0 => StatePattern::Aar,
            1 => StatePattern::Aur,
            2 => StatePattern::Rmw,
            _ => StatePattern::Unknown,
        }
    }

    /// Short lowercase name for logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            StatePattern::Aar => "aar",
            StatePattern::Aur => "aur",
            StatePattern::Rmw => "rmw",
            StatePattern::Unknown => "unknown",
        }
    }
}

/// The state of one `(key, window)` pair inside a view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewValue {
    /// An RMW intermediate aggregate.
    Aggregate(Vec<u8>),
    /// The appended value list of an AAR/AUR entry.
    Values(Vec<Vec<u8>>),
}

impl ViewValue {
    /// Approximate heap footprint, for registry accounting.
    pub fn memory_size(&self) -> usize {
        match self {
            ViewValue::Aggregate(a) => a.len(),
            ViewValue::Values(vs) => vs.iter().map(|v| v.len() + 24).sum(),
        }
    }
}

/// An immutable point-in-time snapshot of one store's live state.
///
/// Entries are keyed `(key, window)` so point lookups — with or without
/// an explicit window — are a `BTreeMap` range probe; window-range scans
/// walk the map filtering on the window bounds.
#[derive(Clone, Debug, Default)]
pub struct StateView {
    /// Pattern of the source store.
    pub pattern: StatePattern,
    /// Monotonic snapshot counter; increments per published view.
    pub epoch: u64,
    /// Event-time watermark the snapshot is aligned to.
    pub watermark: Timestamp,
    /// All live `(key, window)` entries at snapshot time.
    pub entries: BTreeMap<(Vec<u8>, WindowId), ViewValue>,
    /// Store metrics at snapshot time.
    pub metrics: MetricsSnapshot,
    /// Advisory retention of an entry in event-time milliseconds: how
    /// long after its window closes the entry stays queryable before
    /// the engine drains it. Publishers derive it from the operator's
    /// window semantics (size for fixed/sliding windows, gap for
    /// sessions); `None` means state never expires on its own (global
    /// windows) or the publisher offered no hint.
    pub ttl_ms: Option<u64>,
}

impl StateView {
    /// An empty view, useful as a published placeholder before the first
    /// watermark.
    pub fn empty(pattern: StatePattern) -> Self {
        StateView {
            pattern,
            epoch: 0,
            watermark: MIN_TIMESTAMP,
            entries: BTreeMap::new(),
            metrics: MetricsSnapshot::default(),
            ttl_ms: None,
        }
    }

    /// Looks up `key` in an exact `window`.
    pub fn get(&self, key: &[u8], window: WindowId) -> Option<&ViewValue> {
        self.entries.get(&(key.to_vec(), window))
    }

    /// Looks up `key` in its latest (greatest-ordered) live window.
    ///
    /// This is the natural point query for RMW state, where an external
    /// reader wants "the current aggregate for this key" without knowing
    /// window boundaries.
    pub fn get_latest(&self, key: &[u8]) -> Option<(WindowId, &ViewValue)> {
        let lo = (key.to_vec(), WindowId::ordered_min());
        let hi = (key.to_vec(), WindowId::ordered_max());
        self.entries
            .range((Bound::Included(lo), Bound::Included(hi)))
            .next_back()
            .map(|((_, w), v)| (*w, v))
    }

    /// Returns up to `limit` entries whose window overlaps
    /// `[range_start, range_end]` (event-time milliseconds), in key
    /// order.
    pub fn scan_windows(
        &self,
        range_start: Timestamp,
        range_end: Timestamp,
        limit: usize,
    ) -> Vec<(&[u8], WindowId, &ViewValue)> {
        self.entries
            .iter()
            .filter(|((_, w), _)| w.start <= range_end && w.end >= range_start)
            .take(limit)
            .map(|((k, w), v)| (k.as_slice(), *w, v))
            .collect()
    }

    /// Returns up to `limit` entries whose key starts with `prefix` and
    /// whose window overlaps `[range_start, range_end]`, in key order.
    ///
    /// Keys sort lexicographically, so all keys sharing `prefix` form
    /// one contiguous run: the scan seeks to the first candidate and
    /// stops at the first key past the prefix instead of walking the
    /// whole view.
    pub fn scan_filtered(
        &self,
        prefix: &[u8],
        range_start: Timestamp,
        range_end: Timestamp,
        limit: usize,
    ) -> Vec<(&[u8], WindowId, &ViewValue)> {
        let lo = (prefix.to_vec(), WindowId::ordered_min());
        self.entries
            .range((Bound::Included(lo), Bound::Unbounded))
            .take_while(|((k, _), _)| k.starts_with(prefix))
            .filter(|((_, w), _)| w.start <= range_end && w.end >= range_start)
            .take(limit)
            .map(|((k, w), v)| (k.as_slice(), *w, v))
            .collect()
    }

    /// Number of live `(key, window)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint of the view.
    pub fn memory_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|((k, _), v)| k.len() + 16 + v.memory_size())
            .sum()
    }
}

impl WindowId {
    /// The smallest window in `(start, end)` order; a range probe's
    /// lower bound.
    fn ordered_min() -> WindowId {
        WindowId {
            start: crate::types::MIN_TIMESTAMP,
            end: crate::types::MIN_TIMESTAMP,
        }
    }

    /// The greatest window in `(start, end)` order; a range probe's
    /// upper bound.
    fn ordered_max() -> WindowId {
        WindowId {
            start: crate::types::MAX_TIMESTAMP,
            end: crate::types::MAX_TIMESTAMP,
        }
    }
}

/// Summary of one published view, for state listings.
#[derive(Clone, Debug)]
pub struct StateDescriptor {
    /// The registry key the view is published under.
    pub key: StateKey,
    /// Pattern of the source store.
    pub pattern: StatePattern,
    /// Epoch of the most recent published view.
    pub epoch: u64,
    /// Watermark the view is aligned to.
    pub watermark: Timestamp,
    /// Number of live entries in the view.
    pub entries: u64,
    /// Advisory entry retention in milliseconds (see
    /// [`StateView::ttl_ms`]).
    pub ttl_ms: Option<u64>,
}

/// Process-wide directory of published state views.
///
/// Workers publish; server threads read. The lock is held only to swap
/// or clone an `Arc`, never while building or reading a view, and
/// poisoning is deliberately swallowed: a panicking publisher must not
/// take the serving path down with it.
#[derive(Default)]
pub struct StateRegistry {
    views: RwLock<HashMap<StateKey, Arc<StateView>>>,
}

impl StateRegistry {
    /// Creates an empty registry behind an `Arc`, ready to share between
    /// the executor and a server.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(StateRegistry::default())
    }

    /// Publishes `view` under `key`, replacing any previous view.
    pub fn publish(&self, key: StateKey, view: StateView) {
        let view = Arc::new(view);
        self.views
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, view);
    }

    /// Resolves the most recently published view for `key`.
    pub fn get(&self, key: &StateKey) -> Option<Arc<StateView>> {
        self.views
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    /// Removes the view published under `key`.
    pub fn remove(&self, key: &StateKey) {
        self.views
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key);
    }

    /// Resolves every partition's view of one operator under a single
    /// lock acquisition, sorted by partition index.
    ///
    /// This is the server's per-lookup path, so it clones only the
    /// `Arc`s — no descriptor strings — and touches the lock once.
    pub fn operator_views(&self, job: &str, operator: &str) -> Vec<(usize, Arc<StateView>)> {
        let guard = self.views.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(usize, Arc<StateView>)> = guard
            .iter()
            .filter(|(k, _)| k.job == job && k.operator == operator)
            .map(|(k, v)| (k.partition, Arc::clone(v)))
            .collect();
        out.sort_unstable_by_key(|(p, _)| *p);
        out
    }

    /// Describes every published view, sorted by key.
    pub fn list(&self) -> Vec<StateDescriptor> {
        let mut out: Vec<StateDescriptor> = self
            .views
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(key, view)| StateDescriptor {
                key: key.clone(),
                pattern: view.pattern,
                epoch: view.epoch,
                watermark: view.watermark,
                entries: view.len() as u64,
                ttl_ms: view.ttl_ms,
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// Number of published views.
    pub fn len(&self) -> usize {
        self.views.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(start: i64, end: i64) -> WindowId {
        WindowId { start, end }
    }

    fn view_with(entries: Vec<(&[u8], WindowId, ViewValue)>) -> StateView {
        let mut v = StateView::empty(StatePattern::Rmw);
        for (k, win, val) in entries {
            v.entries.insert((k.to_vec(), win), val);
        }
        v
    }

    #[test]
    fn point_lookup_exact_and_latest() {
        let view = view_with(vec![
            (b"a", w(0, 10), ViewValue::Aggregate(vec![1])),
            (b"a", w(10, 20), ViewValue::Aggregate(vec![2])),
            (b"b", w(0, 10), ViewValue::Aggregate(vec![3])),
        ]);
        assert_eq!(
            view.get(b"a", w(0, 10)),
            Some(&ViewValue::Aggregate(vec![1]))
        );
        let (win, val) = view.get_latest(b"a").unwrap();
        assert_eq!(win, w(10, 20));
        assert_eq!(val, &ViewValue::Aggregate(vec![2]));
        assert!(view.get_latest(b"c").is_none());
        assert!(view.get(b"b", w(10, 20)).is_none());
    }

    #[test]
    fn window_scan_overlap_and_limit() {
        let view = view_with(vec![
            (b"a", w(0, 10), ViewValue::Values(vec![vec![1]])),
            (b"b", w(5, 15), ViewValue::Values(vec![vec![2]])),
            (b"c", w(20, 30), ViewValue::Values(vec![vec![3]])),
        ]);
        let hits = view.scan_windows(0, 12, 100);
        assert_eq!(hits.len(), 2);
        let hits = view.scan_windows(0, 100, 2);
        assert_eq!(hits.len(), 2);
        let hits = view.scan_windows(31, 40, 100);
        assert!(hits.is_empty());
    }

    #[test]
    fn registry_publish_get_list() {
        let reg = StateRegistry::new_shared();
        let key = StateKey::new("job", "op", 0);
        assert!(reg.get(&key).is_none());
        let mut v = StateView::empty(StatePattern::Aar);
        v.epoch = 7;
        reg.publish(key.clone(), v);
        let got = reg.get(&key).unwrap();
        assert_eq!(got.epoch, 7);
        let listing = reg.list();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].key, key);
        assert_eq!(listing[0].epoch, 7);
        reg.remove(&key);
        assert!(reg.is_empty());
    }

    #[test]
    fn registry_survives_poisoned_publisher() {
        let reg = StateRegistry::new_shared();
        let key = StateKey::new("job", "op", 0);
        reg.publish(key.clone(), StateView::empty(StatePattern::Rmw));
        let reg2 = Arc::clone(&reg);
        // Panic while holding the write lock to poison it.
        let _ = std::thread::spawn(move || {
            let _guard = reg2.views.write().unwrap();
            panic!("publisher dies mid-publish");
        })
        .join();
        // Readers and later publishers still work.
        assert!(reg.get(&key).is_some());
        reg.publish(
            StateKey::new("job", "op", 1),
            StateView::empty(StatePattern::Aur),
        );
        assert_eq!(reg.len(), 2);
    }
}
