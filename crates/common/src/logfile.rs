//! Checksummed append-only log files.
//!
//! Every persistent structure in the workspace — FlowKV's per-window log
//! files, its global data and index logs, the LSM write-ahead log, and the
//! hash store's hybrid log — is built on the record format implemented
//! here:
//!
//! ```text
//! record := len:u32-le  crc:u32-le  payload:[u8; len]
//! ```
//!
//! `crc` covers the payload only; `len` is implicitly validated by the
//! checksum (a corrupted length either fails to frame or fails the CRC).
//! Readers tolerate a torn write at the tail of a log — the normal result
//! of a crash mid-append — by stopping there; corruption anywhere else is
//! reported as [`StoreError::Corruption`].
//!
//! All file access goes through the [`crate::vfs`] seam: the plain
//! constructors use the passthrough [`StdVfs`], and the `_in` variants
//! accept any [`Vfs`] — in particular a fault-injecting
//! [`crate::vfs::FaultVfs`] — so every store built on these logs can be
//! crash-tested without touching its code.

use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::codec::crc32;
use crate::error::{Result, StoreError};
use crate::vfs::{StdVfs, Vfs, VfsFile};

/// Size of the per-record header (`len` + `crc`).
pub const RECORD_HEADER_LEN: u64 = 8;

/// The location of a record inside a log file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordLocation {
    /// Byte offset of the record header from the start of the file.
    pub offset: u64,
    /// Length of the payload in bytes (header excluded).
    pub len: u32,
}

impl RecordLocation {
    /// Total on-disk footprint of the record, header included.
    pub fn disk_len(&self) -> u64 {
        RECORD_HEADER_LEN + u64::from(self.len)
    }

    /// Offset of the first byte past the record.
    pub fn end_offset(&self) -> u64 {
        self.offset + self.disk_len()
    }
}

/// Buffered writer appending checksummed records to a log file.
///
/// # Examples
///
/// ```
/// use flowkv_common::logfile::{LogReader, LogWriter};
/// use flowkv_common::scratch::ScratchDir;
///
/// # fn main() -> flowkv_common::error::Result<()> {
/// let dir = ScratchDir::new("logfile-doc")?;
/// let path = dir.path().join("example.log");
/// let mut w = LogWriter::create(&path)?;
/// w.append(b"hello")?;
/// w.flush()?;
///
/// let mut r = LogReader::open(&path)?;
/// assert_eq!(r.next_record()?.unwrap().1, b"hello");
/// assert!(r.next_record()?.is_none());
/// # Ok(())
/// # }
/// ```
pub struct LogWriter {
    file: BufWriter<Box<dyn VfsFile>>,
    path: PathBuf,
    offset: u64,
}

impl LogWriter {
    /// Creates a new log file, truncating any existing file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        Self::create_in(&StdVfs::shared(), path)
    }

    /// [`LogWriter::create`] through an explicit [`Vfs`].
    pub fn create_in(vfs: &Arc<dyn Vfs>, path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = vfs
            .create(&path)
            .map_err(|e| StoreError::io_at("log create", &path, e))?;
        Ok(LogWriter {
            file: BufWriter::new(file),
            path,
            offset: 0,
        })
    }

    /// Opens an existing log for appending after the last intact record.
    ///
    /// The file is scanned to find the recovery point; a torn record at
    /// the tail is truncated away so new appends are contiguous.
    pub fn open_append(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_append_in(&StdVfs::shared(), path)
    }

    /// [`LogWriter::open_append`] through an explicit [`Vfs`].
    pub fn open_append_in(vfs: &Arc<dyn Vfs>, path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let valid_len = recover_valid_length_in(vfs, &path)?;
        let file = vfs
            .open_append(&path)
            .map_err(|e| StoreError::io_at("log open", &path, e))?;
        file.set_len(valid_len)
            .map_err(|e| StoreError::io_at("log truncate", &path, e))?;
        let mut file = BufWriter::new(file);
        file.seek(SeekFrom::Start(valid_len))
            .map_err(|e| StoreError::io_at("log seek", &path, e))?;
        Ok(LogWriter {
            file,
            path,
            offset: valid_len,
        })
    }

    /// Appends one record and returns its location.
    pub fn append(&mut self, payload: &[u8]) -> Result<RecordLocation> {
        let len = u32::try_from(payload.len()).map_err(|_| StoreError::InvalidConfig {
            param: "record",
            detail: format!("payload of {} bytes exceeds u32::MAX", payload.len()),
        })?;
        let loc = RecordLocation {
            offset: self.offset,
            len,
        };
        // One buffered write for the whole 8-byte header instead of two:
        // append is the hot path of every store flush.
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&len.to_le_bytes());
        header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        self.file
            .write_all(&header)
            .and_then(|_| self.file.write_all(payload))
            .map_err(|e| StoreError::io_at("log append", &self.path, e))?;
        self.offset = loc.end_offset();
        Ok(loc)
    }

    /// Flushes buffered records to the operating system.
    pub fn flush(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| StoreError::io_at("log flush", &self.path, e))
    }

    /// Flushes and then fsyncs the file to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.file
            .get_mut()
            .sync_data()
            .map_err(|e| StoreError::io_at("log sync", &self.path, e))
    }

    /// Offset at which the next record will be written.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Splits a record header into `(len, crc)` without any fallible
/// conversion: the header is a fixed 8-byte array, so indexing cannot
/// fail and no `expect` is needed on the parse path.
fn split_header(header: &[u8; 8]) -> (u32, u32) {
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    (len, crc)
}

/// Scans `path` and returns the length of its longest intact prefix.
fn recover_valid_length_in(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<u64> {
    let mut reader = LogReader::open_in(vfs, path)?;
    let mut valid = 0u64;
    loop {
        match reader.next_record() {
            Ok(Some((loc, _))) => valid = loc.end_offset(),
            Ok(None) => return Ok(valid),
            // A torn tail is expected after a crash; everything before it
            // is intact.
            Err(StoreError::Corruption { offset, .. }) if offset >= valid => return Ok(valid),
            Err(e) => return Err(e),
        }
    }
}

/// Sequential reader over the records of a log file.
pub struct LogReader {
    file: BufReader<Box<dyn VfsFile>>,
    path: PathBuf,
    offset: u64,
    file_len: u64,
}

impl LogReader {
    /// Opens `path` for sequential record iteration.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_at(path, 0)
    }

    /// [`LogReader::open`] through an explicit [`Vfs`].
    pub fn open_in(vfs: &Arc<dyn Vfs>, path: impl AsRef<Path>) -> Result<Self> {
        Self::open_at_in(vfs, path, 0)
    }

    /// Opens `path` positioned at `offset`, which must be a record
    /// boundary previously returned by this reader or a writer.
    pub fn open_at(path: impl AsRef<Path>, offset: u64) -> Result<Self> {
        Self::open_at_in(&StdVfs::shared(), path, offset)
    }

    /// [`LogReader::open_at`] through an explicit [`Vfs`].
    pub fn open_at_in(vfs: &Arc<dyn Vfs>, path: impl AsRef<Path>, offset: u64) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = vfs
            .open_read(&path)
            .map_err(|e| StoreError::io_at("log open", &path, e))?;
        let file_len = file
            .len()
            .map_err(|e| StoreError::io_at("log stat", &path, e))?;
        if offset > file_len {
            return Err(StoreError::corruption(
                &path,
                offset,
                "start offset past end of log",
            ));
        }
        let mut reader = BufReader::new(file);
        reader
            .seek(SeekFrom::Start(offset))
            .map_err(|e| StoreError::io_at("log seek", &path, e))?;
        Ok(LogReader {
            file: reader,
            path,
            offset,
            file_len,
        })
    }

    /// Reads the next record, or `Ok(None)` at a clean end of file.
    ///
    /// A record that extends past the end of the file (torn write) or
    /// fails its checksum yields [`StoreError::Corruption`] carrying the
    /// record's offset; callers recovering a log treat a corruption at the
    /// tail as the recovery point.
    pub fn next_record(&mut self) -> Result<Option<(RecordLocation, Vec<u8>)>> {
        if self.offset == self.file_len {
            return Ok(None);
        }
        if self.file_len - self.offset < RECORD_HEADER_LEN {
            return Err(self.corruption("torn record header"));
        }
        let mut header = [0u8; 8];
        self.file
            .read_exact(&mut header)
            .map_err(|e| StoreError::io_at("log read header", &self.path, e))?;
        let (len, crc) = split_header(&header);
        let body_end = self.offset + RECORD_HEADER_LEN + u64::from(len);
        if body_end > self.file_len {
            return Err(self.corruption("torn record body"));
        }
        let mut payload = vec![0u8; len as usize];
        self.file
            .read_exact(&mut payload)
            .map_err(|e| StoreError::io_at("log read body", &self.path, e))?;
        if crc32(&payload) != crc {
            return Err(self.corruption("checksum mismatch"));
        }
        let loc = RecordLocation {
            offset: self.offset,
            len,
        };
        self.offset = body_end;
        Ok(Some((loc, payload)))
    }

    /// Offset of the next record to be read.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn corruption(&self, detail: &str) -> StoreError {
        StoreError::corruption(&self.path, self.offset, detail)
    }
}

/// Random-access reads of individual records.
pub struct RandomAccessLog {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    file_len: u64,
}

impl RandomAccessLog {
    /// Opens `path` for positioned record reads.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_in(&StdVfs::shared(), path)
    }

    /// [`RandomAccessLog::open`] through an explicit [`Vfs`].
    pub fn open_in(vfs: &Arc<dyn Vfs>, path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = vfs
            .open_read(&path)
            .map_err(|e| StoreError::io_at("log open", &path, e))?;
        let file_len = file
            .len()
            .map_err(|e| StoreError::io_at("log stat", &path, e))?;
        Ok(RandomAccessLog {
            file,
            path,
            file_len,
        })
    }

    /// Returns whether the file covers bytes up to `end`, re-statting
    /// once if the cached length is too small — the underlying log may
    /// have grown since open (AUR keeps one reader across appends).
    fn covers(&mut self, end: u64) -> Result<bool> {
        if end <= self.file_len {
            return Ok(true);
        }
        self.file_len = self
            .file
            .len()
            .map_err(|e| StoreError::io_at("log stat", &self.path, e))?;
        Ok(end <= self.file_len)
    }

    /// Reads and verifies the record starting at `offset`.
    pub fn read_record_at(&mut self, offset: u64) -> Result<Vec<u8>> {
        if !self.covers(offset + RECORD_HEADER_LEN)? {
            return Err(StoreError::corruption(
                &self.path,
                offset,
                "record offset past end of log",
            ));
        }
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| StoreError::io_at("log seek", &self.path, e))?;
        let mut header = [0u8; 8];
        self.file
            .read_exact(&mut header)
            .map_err(|e| StoreError::io_at("log read header", &self.path, e))?;
        let (len, crc) = split_header(&header);
        // Validate the length against the file before trusting it with an
        // allocation: a corrupt header must surface as an error, not as a
        // multi-gigabyte buffer.
        if !self.covers(offset + RECORD_HEADER_LEN + u64::from(len))? {
            return Err(StoreError::corruption(
                &self.path,
                offset,
                "record length runs past end of log",
            ));
        }
        let mut payload = vec![0u8; len as usize];
        self.file
            .read_exact(&mut payload)
            .map_err(|e| StoreError::io_at("log read body", &self.path, e))?;
        if crc32(&payload) != crc {
            return Err(StoreError::corruption(
                &self.path,
                offset,
                "checksum mismatch",
            ));
        }
        Ok(payload)
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Copies `len` bytes starting at `offset` from `src` into `dst`.
///
/// This is the reproduction of the paper's zero-copy byte transfer (§5):
/// AUR compaction relocates whole byte ranges of a data log — identified
/// by scanning the index log — without decoding the values in between.
/// `std::io::copy` specializes to `copy_file_range`/`sendfile` on Linux
/// when both ends are real files.
pub fn copy_range<S: Read + Seek>(
    src: &mut S,
    dst: &mut impl Write,
    offset: u64,
    len: u64,
) -> Result<u64> {
    src.seek(SeekFrom::Start(offset))
        .map_err(|e| StoreError::io("range seek", e))?;
    let mut limited = src.take(len);
    let copied = std::io::copy(&mut limited, dst).map_err(|e| StoreError::io("range copy", e))?;
    if copied != len {
        return Err(StoreError::invalid_state(format!(
            "range copy truncated: wanted {len} bytes, copied {copied}"
        )));
    }
    Ok(copied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use std::fs::{File, OpenOptions};

    fn scratch(name: &str) -> ScratchDir {
        ScratchDir::new(name).expect("scratch dir")
    }

    #[test]
    fn roundtrip_multiple_records() {
        let dir = scratch("log-roundtrip");
        let path = dir.path().join("a.log");
        let mut w = LogWriter::create(&path).unwrap();
        let payloads: Vec<Vec<u8>> = (0..50).map(|i| vec![i as u8; i * 7]).collect();
        let mut locs = Vec::new();
        for p in &payloads {
            locs.push(w.append(p).unwrap());
        }
        w.flush().unwrap();

        let mut r = LogReader::open(&path).unwrap();
        for (expected_loc, expected_payload) in locs.iter().zip(&payloads) {
            let (loc, payload) = r.next_record().unwrap().unwrap();
            assert_eq!(loc, *expected_loc);
            assert_eq!(&payload, expected_payload);
        }
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn random_access_read() {
        let dir = scratch("log-random");
        let path = dir.path().join("a.log");
        let mut w = LogWriter::create(&path).unwrap();
        let l1 = w.append(b"first").unwrap();
        let l2 = w.append(b"second").unwrap();
        w.flush().unwrap();

        let mut ra = RandomAccessLog::open(&path).unwrap();
        assert_eq!(ra.read_record_at(l2.offset).unwrap(), b"second");
        assert_eq!(ra.read_record_at(l1.offset).unwrap(), b"first");
    }

    #[test]
    fn torn_tail_is_detected_and_recovered() {
        let dir = scratch("log-torn");
        let path = dir.path().join("a.log");
        let mut w = LogWriter::create(&path).unwrap();
        w.append(b"intact").unwrap();
        let torn = w.append(b"will be torn").unwrap();
        w.flush().unwrap();
        drop(w);

        // Chop the last record in half, simulating a crash mid-write.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(torn.offset + torn.disk_len() / 2).unwrap();
        drop(f);

        let mut r = LogReader::open(&path).unwrap();
        assert_eq!(r.next_record().unwrap().unwrap().1, b"intact");
        assert!(r.next_record().unwrap_err().is_corruption());

        // Recovery truncates to the intact prefix and appends after it.
        let mut w = LogWriter::open_append(&path).unwrap();
        assert_eq!(w.offset(), torn.offset);
        w.append(b"recovered").unwrap();
        w.flush().unwrap();

        let mut r = LogReader::open(&path).unwrap();
        assert_eq!(r.next_record().unwrap().unwrap().1, b"intact");
        assert_eq!(r.next_record().unwrap().unwrap().1, b"recovered");
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn bitflip_is_corruption() {
        let dir = scratch("log-bitflip");
        let path = dir.path().join("a.log");
        let mut w = LogWriter::create(&path).unwrap();
        let loc = w.append(b"payload-bytes").unwrap();
        w.append(b"second").unwrap();
        w.flush().unwrap();
        drop(w);

        // Flip one payload byte of the first record.
        let mut data = std::fs::read(&path).unwrap();
        let idx = (loc.offset + RECORD_HEADER_LEN) as usize;
        data[idx] ^= 0x01;
        std::fs::write(&path, &data).unwrap();

        let mut r = LogReader::open(&path).unwrap();
        let err = r.next_record().unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn random_access_rejects_bad_offsets_and_lengths() {
        let dir = scratch("log-random-bad");
        let path = dir.path().join("a.log");
        let mut w = LogWriter::create(&path).unwrap();
        let loc = w.append(b"only record").unwrap();
        w.flush().unwrap();
        drop(w);

        let mut ra = RandomAccessLog::open(&path).unwrap();
        // Offset past the end of the file.
        assert!(ra
            .read_record_at(loc.end_offset() + 100)
            .unwrap_err()
            .is_corruption());

        // A corrupt header length that runs past the end of the file must
        // be rejected before any allocation, not misread.
        let mut data = std::fs::read(&path).unwrap();
        data[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let mut ra = RandomAccessLog::open(&path).unwrap();
        assert!(ra.read_record_at(0).unwrap_err().is_corruption());
    }

    #[test]
    fn random_access_sees_records_appended_after_open() {
        let dir = scratch("log-random-grow");
        let path = dir.path().join("a.log");
        let mut w = LogWriter::create(&path).unwrap();
        w.append(b"first").unwrap();
        w.flush().unwrap();

        // Open the reader, then keep appending: the reader must follow
        // the growing file (AUR holds one reader across appends).
        let mut ra = RandomAccessLog::open(&path).unwrap();
        let l2 = w.append(b"second, after open").unwrap();
        w.flush().unwrap();
        assert_eq!(ra.read_record_at(l2.offset).unwrap(), b"second, after open");
    }

    #[test]
    fn empty_log_reads_cleanly() {
        let dir = scratch("log-empty");
        let path = dir.path().join("a.log");
        LogWriter::create(&path).unwrap().flush().unwrap();
        let mut r = LogReader::open(&path).unwrap();
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn copy_range_moves_exact_bytes() {
        let dir = scratch("log-copyrange");
        let src_path = dir.path().join("src.log");
        let mut w = LogWriter::create(&src_path).unwrap();
        w.append(b"aaaa").unwrap();
        let keep = w.append(b"keep these bytes").unwrap();
        w.append(b"zzzz").unwrap();
        w.flush().unwrap();

        let dst_path = dir.path().join("dst.log");
        let mut src = File::open(&src_path).unwrap();
        let mut dst = File::create(&dst_path).unwrap();
        copy_range(&mut src, &mut dst, keep.offset, keep.disk_len()).unwrap();
        dst.sync_all().unwrap();

        let mut r = LogReader::open(&dst_path).unwrap();
        assert_eq!(r.next_record().unwrap().unwrap().1, b"keep these bytes");
    }

    #[test]
    fn open_append_on_clean_log() {
        let dir = scratch("log-append");
        let path = dir.path().join("a.log");
        {
            let mut w = LogWriter::create(&path).unwrap();
            w.append(b"one").unwrap();
            w.flush().unwrap();
        }
        let mut w = LogWriter::open_append(&path).unwrap();
        w.append(b"two").unwrap();
        w.flush().unwrap();
        let mut r = LogReader::open(&path).unwrap();
        assert_eq!(r.next_record().unwrap().unwrap().1, b"one");
        assert_eq!(r.next_record().unwrap().unwrap().1, b"two");
        assert!(r.next_record().unwrap().is_none());
    }
}
