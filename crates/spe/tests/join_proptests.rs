//! Property tests for the interval-join operator: arbitrary two-sided
//! streams, bounds, and bucket widths must match a brute-force join.

use std::sync::Arc;

use flowkv_common::types::{Tuple, MAX_TIMESTAMP};
use flowkv_spe::join::{tag_left, tag_right, IntervalJoinOperator, IntervalJoinSpec};
use flowkv_spe::memstore::InMemoryBackend;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Row {
    left: bool,
    key: u8,
    ts_step: u8,
}

fn rows() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (any::<bool>(), 0u8..4, any::<u8>()).prop_map(|(left, key, ts_step)| Row {
            left,
            key,
            ts_step,
        }),
        1..80,
    )
}

/// Materializes rows as an in-order stream (timestamps are the running
/// sum of small steps, so disorder never occurs).
fn stream(rows: &[Row]) -> Vec<Tuple> {
    let mut ts = 0i64;
    rows.iter()
        .enumerate()
        .map(|(i, r)| {
            ts += i64::from(r.ts_step % 16);
            let payload = format!("{}{}", if r.left { "L" } else { "R" }, i);
            let value = if r.left {
                tag_left(payload.as_bytes())
            } else {
                tag_right(payload.as_bytes())
            };
            Tuple::new(vec![r.key], value, ts)
        })
        .collect()
}

fn brute_force(tuples: &[Tuple], lower: i64, upper: i64) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for l in tuples.iter().filter(|t| t.value[0] == 0) {
        for r in tuples.iter().filter(|t| t.value[0] == 1) {
            if l.key == r.key
                && r.timestamp >= l.timestamp + lower
                && r.timestamp <= l.timestamp + upper
            {
                let mut v = l.value[1..].to_vec();
                v.push(b'|');
                v.extend_from_slice(&r.value[1..]);
                out.push(v);
            }
        }
    }
    out.sort();
    out
}

fn run_operator(
    tuples: &[Tuple],
    lower: i64,
    upper: i64,
    bucket_ms: i64,
    watermark_every: usize,
) -> Vec<Vec<u8>> {
    let spec = IntervalJoinSpec {
        name: "prop".into(),
        lower,
        upper,
        bucket_ms,
        join: Arc::new(|_k, l: &[u8], r: &[u8]| {
            let mut v = l.to_vec();
            v.push(b'|');
            v.extend_from_slice(r);
            Some(v)
        }),
    };
    let mut op = IntervalJoinOperator::new(spec, Box::new(InMemoryBackend::new(1 << 20, 8)));
    let mut out = Vec::new();
    for (i, t) in tuples.iter().enumerate() {
        op.on_element(t, &mut out).unwrap();
        if (i + 1) % watermark_every.max(1) == 0 {
            // In-order stream: the watermark equals the last timestamp,
            // which never makes future tuples late but does purge.
            op.on_watermark(t.timestamp, &mut out).unwrap();
        }
    }
    op.on_watermark(MAX_TIMESTAMP, &mut out).unwrap();
    let mut values: Vec<Vec<u8>> = out.into_iter().map(|t| t.value).collect();
    values.sort();
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn operator_matches_brute_force(
        rows in rows(),
        bound_a in -64i64..64,
        bound_b in -64i64..64,
        bucket in 1i64..64,
        wm_every in 1usize..20,
    ) {
        let (lower, upper) = (bound_a.min(bound_b), bound_a.max(bound_b));
        let tuples = stream(&rows);
        let expected = brute_force(&tuples, lower, upper);
        let got = run_operator(&tuples, lower, upper, bucket, wm_every);
        prop_assert_eq!(got, expected);
    }

    /// Purging never affects results: with or without intermediate
    /// watermarks, an in-order stream joins identically.
    #[test]
    fn purging_is_transparent(rows in rows(), bucket in 1i64..32) {
        let tuples = stream(&rows);
        let with_purges = run_operator(&tuples, -20, 20, bucket, 3);
        let without = run_operator(&tuples, -20, 20, bucket, usize::MAX);
        prop_assert_eq!(with_purges, without);
    }
}
