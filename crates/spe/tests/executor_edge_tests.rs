//! Edge-case tests for the executor: degenerate streams, stateless-only
//! pipelines, watermark propagation through deep pipelines, and
//! backpressure.

use std::sync::Arc;

use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::Tuple;
use flowkv_spe::functions::{decode_u64, CountAggregate, FnProcess};
use flowkv_spe::job::{AggregateSpec, JobBuilder};
use flowkv_spe::window::WindowAssigner;
use flowkv_spe::{run_job, BackendChoice, FactoryOptions, RunOptions};

fn flowkv() -> BackendChoice {
    BackendChoice::all_small_for_tests().remove(1)
}

fn tuple(key: &str, v: u64, ts: i64) -> Tuple {
    Tuple::new(key.into(), v.to_le_bytes().to_vec(), ts)
}

#[test]
fn empty_source_completes_with_no_output() {
    let dir = ScratchDir::new("edge-empty").unwrap();
    let job = JobBuilder::new("empty")
        .parallelism(2)
        .window(
            "w",
            WindowAssigner::Fixed { size: 100 },
            AggregateSpec::Incremental(Arc::new(CountAggregate)),
        )
        .build();
    let result = run_job(
        &job,
        std::iter::empty(),
        flowkv().build(FactoryOptions::new()),
        &RunOptions::new(dir.path()),
    )
    .unwrap();
    assert_eq!(result.input_count, 0);
    assert_eq!(result.output_count, 0);
}

#[test]
fn single_tuple_stream() {
    let dir = ScratchDir::new("edge-single").unwrap();
    let job = JobBuilder::new("single")
        .parallelism(3)
        .window(
            "w",
            WindowAssigner::Fixed { size: 100 },
            AggregateSpec::Incremental(Arc::new(CountAggregate)),
        )
        .build();
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    let result = run_job(
        &job,
        std::iter::once(tuple("k", 1, 42)),
        flowkv().build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    assert_eq!(result.output_count, 1);
    assert_eq!(decode_u64(&result.outputs[0].value), 1);
}

#[test]
fn stateless_only_pipeline_passes_everything() {
    let dir = ScratchDir::new("edge-stateless").unwrap();
    let job = JobBuilder::new("stateless")
        .parallelism(2)
        .stateless("double", |t, out| {
            out.push(t.clone());
            out.push(t.clone());
        })
        .stateless("drop-odd-values", |t, out| {
            if decode_u64(&t.value).is_multiple_of(2) {
                out.push(t.clone());
            }
        })
        .build();
    let input: Vec<Tuple> = (0..100)
        .map(|i| tuple(&format!("k{i}"), i, i as i64))
        .collect();
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    let result = run_job(
        &job,
        input.into_iter(),
        flowkv().build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    // 100 inputs doubled, half have even values.
    assert_eq!(result.output_count, 100);
}

#[test]
fn deep_pipeline_propagates_watermarks() {
    // Three stateless stages in front of a window: watermarks must still
    // reach and trigger the operator.
    let dir = ScratchDir::new("edge-deep").unwrap();
    let mut builder = JobBuilder::new("deep").parallelism(2);
    for i in 0..3 {
        builder = builder.stateless(format!("pass{i}"), |t, out| out.push(t.clone()));
    }
    let job = builder
        .window(
            "w",
            WindowAssigner::Fixed { size: 100 },
            AggregateSpec::Incremental(Arc::new(CountAggregate)),
        )
        .build();
    let input: Vec<Tuple> = (0..1000)
        .map(|i| tuple(&format!("k{}", i % 5), 1, i))
        .collect();
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    opts.watermark_interval = 50;
    let result = run_job(
        &job,
        input.into_iter(),
        flowkv().build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    // 10 windows × 5 keys.
    assert_eq!(result.output_count, 50);
    let total: u64 = result.outputs.iter().map(|t| decode_u64(&t.value)).sum();
    assert_eq!(total, 1000);
}

#[test]
fn tiny_channels_still_complete() {
    // Capacity-1 channels force constant backpressure; the run must not
    // deadlock or lose data.
    let dir = ScratchDir::new("edge-backpressure").unwrap();
    let job = JobBuilder::new("bp")
        .parallelism(2)
        .stateless("fanout", |t, out| {
            for _ in 0..4 {
                out.push(t.clone());
            }
        })
        .window(
            "w",
            WindowAssigner::Fixed { size: 1_000 },
            AggregateSpec::Incremental(Arc::new(CountAggregate)),
        )
        .build();
    let input: Vec<Tuple> = (0..500)
        .map(|i| tuple(&format!("k{}", i % 3), 1, i))
        .collect();
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    opts.channel_capacity = 1;
    opts.watermark_interval = 10;
    let result = run_job(
        &job,
        input.into_iter(),
        flowkv().build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    let total: u64 = result.outputs.iter().map(|t| decode_u64(&t.value)).sum();
    assert_eq!(total, 2_000);
}

#[test]
fn identical_timestamps_all_land_in_one_window() {
    let dir = ScratchDir::new("edge-samets").unwrap();
    let job = JobBuilder::new("same-ts")
        .parallelism(2)
        .window(
            "w",
            WindowAssigner::Fixed { size: 100 },
            AggregateSpec::FullList(Arc::new(FnProcess::new(|_k, _w, vals| {
                vec![(vals.len() as u64).to_le_bytes().to_vec()]
            }))),
        )
        .build();
    let input: Vec<Tuple> = (0..200).map(|_| tuple("k", 1, 50)).collect();
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    let result = run_job(
        &job,
        input.into_iter(),
        flowkv().build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    assert_eq!(result.output_count, 1);
    assert_eq!(decode_u64(&result.outputs[0].value), 200);
}

#[test]
fn negative_timestamps_are_legal_event_time() {
    let dir = ScratchDir::new("edge-negts").unwrap();
    let job = JobBuilder::new("neg-ts")
        .parallelism(1)
        .window(
            "w",
            WindowAssigner::Fixed { size: 100 },
            AggregateSpec::Incremental(Arc::new(CountAggregate)),
        )
        .build();
    let input: Vec<Tuple> = (-300..-100).map(|i| tuple("k", 1, i)).collect();
    let mut opts = RunOptions::new(dir.path());
    opts.collect_outputs = true;
    let result = run_job(
        &job,
        input.into_iter(),
        flowkv().build(FactoryOptions::new()),
        &opts,
    )
    .unwrap();
    // Windows [-300,-200) and [-200,-100).
    assert_eq!(result.output_count, 2);
    let total: u64 = result.outputs.iter().map(|t| decode_u64(&t.value)).sum();
    assert_eq!(total, 200);
}
