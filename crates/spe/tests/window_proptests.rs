//! Property tests for window assignment and the latency summary.

use flowkv_common::telemetry::Histogram;
use flowkv_spe::latency::{percentile, LatencySummary};
use flowkv_spe::window::WindowAssigner;
use proptest::prelude::*;

proptest! {
    /// Every assigned fixed window contains its tuple, and exactly one
    /// window is assigned.
    #[test]
    fn fixed_windows_partition_time(ts in -1_000_000i64..1_000_000, size in 1i64..10_000) {
        let a = WindowAssigner::Fixed { size };
        let windows = a.assign(ts);
        prop_assert_eq!(windows.len(), 1);
        prop_assert!(windows[0].contains(ts));
        prop_assert_eq!(windows[0].length(), size);
        // Window boundaries are aligned to multiples of the size.
        prop_assert_eq!(windows[0].start.rem_euclid(size), 0);
    }

    /// Sliding windows: a tuple lands in exactly ceil(size/slide) windows
    /// when slide divides size, every one of which contains it, and
    /// consecutive windows differ by the slide.
    #[test]
    fn sliding_windows_cover_timestamp(
        ts in 0i64..1_000_000,
        slide in 1i64..1_000,
        multiple in 1i64..6,
    ) {
        let size = slide * multiple;
        let a = WindowAssigner::Sliding { size, slide };
        let windows = a.assign(ts);
        prop_assert_eq!(windows.len() as i64, multiple);
        for w in &windows {
            prop_assert!(w.contains(ts));
            prop_assert_eq!(w.length(), size);
            prop_assert_eq!(w.start.rem_euclid(slide), 0);
        }
        for pair in windows.windows(2) {
            prop_assert_eq!(pair[1].start - pair[0].start, slide);
        }
    }

    /// Two timestamps in the same fixed window get the same window; two
    /// in different periods get different windows.
    #[test]
    fn fixed_assignment_is_consistent(a in 0i64..100_000, b in 0i64..100_000, size in 1i64..5_000) {
        let assigner = WindowAssigner::Fixed { size };
        let wa = assigner.assign(a)[0];
        let wb = assigner.assign(b)[0];
        prop_assert_eq!(wa == wb, a.div_euclid(size) == b.div_euclid(size));
    }

    /// Session proto windows span exactly the gap.
    #[test]
    fn session_proto_spans_gap(ts in -1_000_000i64..1_000_000, gap in 1i64..100_000) {
        let a = WindowAssigner::Session { gap };
        let w = a.assign(ts)[0];
        prop_assert_eq!(w.start, ts);
        prop_assert_eq!(w.length(), gap);
    }

    /// The percentile function is monotone in p and bounded by min/max.
    /// (Samples bounded so 200 of them cannot wrap the histogram's exact
    /// u64 sum.)
    #[test]
    fn percentile_is_monotone(samples in prop::collection::vec(0u64..(1 << 48), 1..200)) {
        let lo = percentile(&mut samples.clone(), 0.1).unwrap();
        let mid = percentile(&mut samples.clone(), 0.5).unwrap();
        let hi = percentile(&mut samples.clone(), 0.9).unwrap();
        prop_assert!(lo <= mid && mid <= hi);
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        prop_assert!(lo >= min && hi <= max);
        // The histogram-backed summary preserves the same ordering and
        // stays inside the observed range.
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let s = LatencySummary::from_histogram(&h.snapshot());
        prop_assert_eq!(s.count, samples.len() as u64);
        prop_assert_eq!(s.max, max);
        prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        prop_assert!(s.p50 >= min);
        prop_assert!(s.mean >= min as f64 && s.mean <= max as f64);
    }
}
