//! Supervised execution: restart-on-failure with checkpoint recovery.
//!
//! The paper's fault-tolerance model (§8) pairs aligned checkpoints with
//! a rewindable source: on failure, the engine restores every operator
//! from the last completed checkpoint and replays the source from the
//! checkpointed offset. [`run_supervised`] implements the supervisor
//! half of that contract over [`run_job`]'s single attempts:
//!
//! 1. Run the job. On success, return its outputs (prefixed by any
//!    outputs already committed by a crashed attempt's checkpoint).
//! 2. On failure, tear the attempt's state directory down, wait out an
//!    exponential backoff, and re-run — restored from the checkpoint
//!    (with the source rewound to the offset recorded beside it) when
//!    one completed, from scratch otherwise.
//! 3. Give up after [`RunOptions::max_restarts`] restarts, surfacing the
//!    final attempt's error.
//!
//! Exactly-once accounting: when an attempt crashes *after* its aligned
//! checkpoint completed, the outputs the sink observed ahead of every
//! barrier are treated as committed (a transactional sink would have
//! published them when the checkpoint closed). The recovery attempt
//! restores state as of the barrier and replays only post-checkpoint
//! input, so `committed ++ recovered outputs` equals the output of an
//! undisturbed run. The queryable-state registry is deliberately *not*
//! torn down between attempts: the serving layer keeps answering from
//! the last published epoch-pinned snapshot while the job recovers.
//!
//! With a telemetry hub attached, the supervisor records
//! `recovery_restarts_total` (restarts performed),
//! `recovery_replayed_tuples_total` (source tuples consumed by recovery
//! attempts), and `recovery_restore_nanos` (teardown-plus-rewind time
//! per restart, excluding backoff sleep).

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use flowkv_common::backend::StateBackendFactory;
use flowkv_common::types::Tuple;

use crate::executor::{run_job_inner, JobError, JobResult, RunOptions, SOURCE_OFFSET_FILE};
use crate::job::Job;
use crate::source::LogSource;

/// The outcome of a supervised run.
#[derive(Debug)]
pub struct SupervisedResult {
    /// The final successful attempt's result. Its `outputs` cover only
    /// what that attempt produced; prepend [`SupervisedResult::committed`]
    /// for the full exactly-once output set.
    pub result: JobResult,
    /// Outputs committed by a crashed attempt's completed checkpoint
    /// (empty when no attempt crashed after checkpointing).
    pub committed: Vec<Tuple>,
    /// Restarts performed before the run succeeded.
    pub restarts: u32,
    /// Source tuples consumed by recovery attempts (replayed input).
    pub replayed_tuples: u64,
}

impl SupervisedResult {
    /// The committed prefix plus the final attempt's outputs — the
    /// exactly-once output of the whole supervised run.
    pub fn all_outputs(&self) -> Vec<Tuple> {
        let mut all = self.committed.clone();
        all.extend(self.result.outputs.iter().cloned());
        all
    }
}

/// Reads the source offset recorded beside a completed checkpoint.
fn read_source_offset(dir: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(dir.join(SOURCE_OFFSET_FILE)).ok()?;
    text.trim().parse().ok()
}

/// Runs `job` over the tuple log at `source_path` under supervision:
/// failed attempts are retried up to [`RunOptions::max_restarts`] times,
/// restoring from the last completed checkpoint and rewinding the source
/// to its recorded offset.
///
/// Requires a replayable [`crate::source::TupleLog`] file rather than a
/// plain iterator because recovery must re-read input from an earlier
/// offset — the rewindable-source contract of the paper's §8.
pub fn run_supervised(
    job: &Job,
    source_path: &Path,
    factory: Arc<dyn StateBackendFactory>,
    options: &RunOptions,
) -> Result<SupervisedResult, JobError> {
    let recovery = options.telemetry.as_ref().map(|t| {
        (
            t.registry().counter("recovery_restarts_total"),
            t.registry().counter("recovery_replayed_tuples_total"),
            t.registry().histogram("recovery_restore_nanos"),
        )
    });
    // Recovery lifecycle spans land on a dedicated supervisor lane when
    // the caller passed a tracer in.
    let sup_rec = options
        .trace
        .as_ref()
        .map(|t| t.thread(options.trace_pid, "supervisor"));

    let backoff_seed = crate::backoff::fault_seed();
    let mut committed: Vec<Tuple> = Vec::new();
    let mut committed_count = 0u64;
    let mut checkpoint_committed = false;
    let mut restarts = 0u32;
    let mut replayed_tuples = 0u64;

    loop {
        // Decide where this attempt starts: after the checkpointed
        // offset with a state restore when a checkpoint completed, from
        // the beginning otherwise.
        let restore_dir = if checkpoint_committed {
            options.checkpoint_dir.clone()
        } else {
            None
        };
        let resume_offset = restore_dir
            .as_deref()
            .and_then(read_source_offset)
            .unwrap_or(0);

        let mut attempt_opts = options.clone();
        if let Some(dir) = restore_dir {
            attempt_opts.restore_from = Some(dir);
            // The barrier already ran and its outputs are committed;
            // re-injecting it mid-replay would split outputs twice.
            attempt_opts.checkpoint_after_tuples = None;
        }

        if restarts > 0 {
            if let Some(rec) = &sup_rec {
                rec.instant(
                    "recovery_replay",
                    "recovery",
                    None,
                    vec![
                        ("restart", restarts as i64),
                        ("resume_offset", resume_offset as i64),
                    ],
                );
            }
        }
        let source = LogSource::open_at(source_path, resume_offset).map_err(JobError::Store)?;
        let (result, salvage) = run_job_inner(
            job,
            source.map(crate::executor::SourceItem::Tuple),
            Arc::clone(&factory),
            &attempt_opts,
        );

        match result {
            Ok(mut result) => {
                if restarts > 0 {
                    replayed_tuples += result.input_count;
                    if let Some((_, replayed, _)) = &recovery {
                        replayed.add(result.input_count);
                    }
                }
                result.output_count += committed_count;
                return Ok(SupervisedResult {
                    result,
                    committed,
                    restarts,
                    replayed_tuples,
                });
            }
            Err(err) => {
                // Post-mortem before anything is torn down: the flight
                // recorder's last events and every span still open at
                // the moment of death go to stderr as JSONL.
                if matches!(err, JobError::Panic(_)) {
                    if let Some(t) = &options.telemetry {
                        flowkv_common::trace::dump_crash_context(t);
                    }
                }
                if restarts >= options.max_restarts {
                    return Err(err);
                }
                // A completed checkpoint commits the outputs the sink
                // saw ahead of every barrier; later attempts replay only
                // post-checkpoint input, so commit exactly once.
                if salvage.checkpoint_complete && !checkpoint_committed {
                    committed = salvage.outputs_pre;
                    committed_count = salvage.pre_count;
                    checkpoint_committed = true;
                }
                restarts += 1;
                let restore_started = Instant::now();
                let restore_span = sup_rec.as_ref().map(|rec| {
                    rec.begin_with(
                        "recovery_restore",
                        "recovery",
                        None,
                        vec![
                            ("restart", restarts as i64),
                            ("rewind_offset", resume_offset as i64),
                            ("from_checkpoint", checkpoint_committed as i64),
                        ],
                    )
                });
                // Tear the failed attempt's stores down completely; the
                // recovery attempt re-creates them from the checkpoint
                // (or from scratch). Registry snapshots are left alone.
                let _ = std::fs::remove_dir_all(options.data_dir.join(&job.name));
                if let Some((restarted, _, restore_nanos)) = &recovery {
                    restarted.inc();
                    restore_nanos.record(restore_started.elapsed().as_nanos() as u64);
                }
                if let (Some(rec), Some(span)) = (&sup_rec, restore_span) {
                    rec.end(span, "recovery_restore", "recovery");
                }
                // Deterministic jitter: the schedule replays exactly
                // under the same FLOWKV_FAULT_SEED (see crate::backoff).
                std::thread::sleep(crate::backoff::jittered_backoff(
                    options.restart_backoff,
                    restarts,
                    backoff_seed,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::BackendChoice;
    use crate::functions::CountAggregate;
    use crate::job::{AggregateSpec, JobBuilder};
    use crate::source::TupleLog;
    use crate::window::WindowAssigner;
    use flowkv_common::scratch::ScratchDir;
    use flowkv_common::telemetry::Telemetry;
    use flowkv_common::types::Tuple;
    use flowkv_common::vfs::{FaultKind, FaultPlan, FaultVfs, StdVfs};

    fn tuples(n: u64, keys: u64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(
                    format!("key-{}", i % keys).into_bytes(),
                    1u64.to_le_bytes().to_vec(),
                    i as i64,
                )
            })
            .collect()
    }

    fn count_job() -> crate::job::Job {
        JobBuilder::new("sup-count")
            .parallelism(2)
            .window(
                "counts",
                WindowAssigner::Fixed { size: 1000 },
                AggregateSpec::Incremental(std::sync::Arc::new(CountAggregate)),
            )
            .build()
    }

    fn sorted_pairs(tuples: &[Tuple]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut v: Vec<(Vec<u8>, Vec<u8>)> = tuples
            .iter()
            .map(|t| (t.key.clone(), t.value.clone()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn healthy_run_passes_through_unchanged() {
        let dir = ScratchDir::new("sup-healthy").unwrap();
        let log = dir.path().join("stream.log");
        TupleLog::record(&log, tuples(3000, 10).into_iter()).unwrap();
        let opts = RunOptions::builder(dir.path().join("data"))
            .collect_outputs(true)
            .watermark_interval(50)
            .max_restarts(2)
            .build();
        let sup = run_supervised(
            &count_job(),
            &log,
            BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
            &opts,
        )
        .unwrap();
        assert_eq!(sup.restarts, 0);
        assert_eq!(sup.replayed_tuples, 0);
        assert!(sup.committed.is_empty());
        assert_eq!(sup.result.output_count, 30);
    }

    #[test]
    fn crash_after_checkpoint_recovers_exactly_once() {
        let dir = ScratchDir::new("sup-crash").unwrap();
        let log = dir.path().join("stream.log");
        TupleLog::record(&log, tuples(3000, 10).into_iter()).unwrap();

        // Reference: the same job, no faults.
        let ref_opts = RunOptions::builder(dir.path().join("ref"))
            .collect_outputs(true)
            .watermark_interval(50)
            .build();
        let reference = crate::executor::run_job(
            &count_job(),
            LogSource::open(&log).unwrap(),
            BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
            &ref_opts,
        )
        .unwrap();

        // Count the store's file operations so the crash can be planted
        // well past the checkpoint.
        let counter = FaultVfs::counting(StdVfs::shared());
        let ckpt = dir.path().join("ckpt");
        let counted_opts = RunOptions::builder(dir.path().join("count"))
            .watermark_interval(50)
            .checkpoint(1500, &ckpt)
            .build();
        run_supervised(
            &count_job(),
            &log,
            BackendChoice::all_small_for_tests()[1]
                .build(FactoryOptions::new().vfs(counter.clone())),
            &counted_opts,
        )
        .unwrap();
        let total_ops = counter.ops();
        assert!(total_ops > 0, "store never touched the vfs");

        // Crash in the back half of the run, after the checkpoint.
        let telemetry = Telemetry::new_shared();
        let faulty = FaultVfs::new(StdVfs::shared(), FaultPlan::crash_at(total_ops * 9 / 10));
        let ckpt2 = dir.path().join("ckpt2");
        let opts = RunOptions::builder(dir.path().join("data"))
            .collect_outputs(true)
            .watermark_interval(50)
            .checkpoint(1500, &ckpt2)
            .max_restarts(2)
            .restart_backoff(std::time::Duration::from_millis(1))
            .telemetry(std::sync::Arc::clone(&telemetry))
            .build();
        let sup = run_supervised(
            &count_job(),
            &log,
            BackendChoice::all_small_for_tests()[1]
                .build(FactoryOptions::new().vfs(faulty.clone())),
            &opts,
        )
        .unwrap();
        assert!(!faulty.fired().is_empty(), "crash fault never fired");
        assert!(sup.restarts >= 1);
        assert_eq!(
            sorted_pairs(&sup.all_outputs()),
            sorted_pairs(&reference.outputs),
            "recovered output diverged from the undisturbed run"
        );
        let samples = telemetry.registry().snapshot();
        let restarts_metric = samples
            .iter()
            .find(|s| s.name == "recovery_restarts_total")
            .expect("recovery_restarts_total missing");
        match restarts_metric.value {
            flowkv_common::telemetry::SampleValue::Counter(v) => {
                assert_eq!(v, u64::from(sup.restarts))
            }
            _ => panic!("recovery_restarts_total is not a counter"),
        }
    }

    #[test]
    fn restarts_are_bounded() {
        let dir = ScratchDir::new("sup-bounded").unwrap();
        let log = dir.path().join("stream.log");
        TupleLog::record(&log, tuples(2000, 10).into_iter()).unwrap();
        // Every attempt crashes almost immediately: the op counter is
        // global across attempts, so a dense crash plan guarantees the
        // initial attempt and both allowed restarts all hit one.
        let plan = (1..=500).fold(FaultPlan::new(), |p, op| p.with_fault(op, FaultKind::Crash));
        let faulty = FaultVfs::new(StdVfs::shared(), plan);
        let opts = RunOptions::builder(dir.path().join("data"))
            .watermark_interval(50)
            .max_restarts(2)
            .restart_backoff(std::time::Duration::from_millis(1))
            .build();
        let err = run_supervised(
            &count_job(),
            &log,
            BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new().vfs(faulty)),
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, JobError::Panic(_)), "{err}");
    }
}
