//! Window assigners: splitting unbounded streams into bounded windows
//! (paper §2.1, "Window Functions").

use std::sync::Arc;

use flowkv_common::backend::WindowKind;
use flowkv_common::types::{Timestamp, WindowId};

/// A user-defined window function (paper §8, "Custom Window
/// Operations"): maps a timestamp to the windows the tuple belongs to.
///
/// The store cannot see inside this function, so FlowKV classifies such
/// operators as unaligned-read and relies on an optional user-supplied
/// trigger-time predictor ([`flowkv::config::CustomEttFn`]) for
/// predictive batch reads.
pub type CustomAssignFn = Arc<dyn Fn(Timestamp) -> Vec<WindowId> + Send + Sync>;

/// Assigns tuples to windows by timestamp (and, for session and count
/// windows, per-key state kept by the operator).
#[derive(Clone)]
pub enum WindowAssigner {
    /// Tumbling windows of `size` milliseconds.
    Fixed {
        /// Window length.
        size: i64,
    },
    /// Overlapping windows of `size` every `slide` milliseconds.
    Sliding {
        /// Window length.
        size: i64,
        /// Sliding interval; tuples land in `size / slide` windows.
        slide: i64,
    },
    /// Per-key sessions delimited by `gap` of inactivity.
    Session {
        /// Session gap.
        gap: i64,
    },
    /// One window over all of event time.
    Global,
    /// Per-key windows of `size` tuples.
    Count {
        /// Tuples per window.
        size: u64,
    },
    /// A user-defined window function with deterministic, timestamp-
    /// derived boundaries (paper §8).
    Custom {
        /// The assignment function.
        assign: CustomAssignFn,
    },
}

impl std::fmt::Debug for WindowAssigner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowAssigner::Fixed { size } => write!(f, "Fixed({size})"),
            WindowAssigner::Sliding { size, slide } => write!(f, "Sliding({size}, {slide})"),
            WindowAssigner::Session { gap } => write!(f, "Session({gap})"),
            WindowAssigner::Global => f.write_str("Global"),
            WindowAssigner::Count { size } => write!(f, "Count({size})"),
            WindowAssigner::Custom { .. } => f.write_str("Custom(..)"),
        }
    }
}

impl WindowAssigner {
    /// The launch-time window-function signature seen by the store.
    pub fn kind(&self) -> WindowKind {
        match self {
            WindowAssigner::Fixed { size } => WindowKind::Fixed { size: *size },
            WindowAssigner::Sliding { size, slide } => WindowKind::Sliding {
                size: *size,
                slide: *slide,
            },
            WindowAssigner::Session { gap } => WindowKind::Session { gap: *gap },
            WindowAssigner::Global => WindowKind::Global,
            WindowAssigner::Count { size } => WindowKind::Count { size: *size },
            WindowAssigner::Custom { .. } => WindowKind::Custom,
        }
    }

    /// Windows assigned to a tuple with timestamp `ts`.
    ///
    /// Session windows return their *proto window* `[ts, ts + gap)`,
    /// which the operator merges with overlapping open sessions; count
    /// windows return nothing here because assignment depends on per-key
    /// arrival counts.
    pub fn assign(&self, ts: Timestamp) -> Vec<WindowId> {
        match *self {
            WindowAssigner::Custom { ref assign } => assign(ts),
            WindowAssigner::Fixed { size } => {
                let start = floor_to(ts, size);
                vec![WindowId::new(start, start + size)]
            }
            WindowAssigner::Sliding { size, slide } => {
                // The last window starting at or before ts.
                let last_start = floor_to(ts, slide);
                let mut windows = Vec::new();
                let mut start = last_start;
                while start + size > ts {
                    windows.push(WindowId::new(start, start + size));
                    match start.checked_sub(slide) {
                        Some(s) => start = s,
                        None => break,
                    }
                }
                windows.reverse();
                windows
            }
            WindowAssigner::Session { gap } => vec![WindowId::new(ts, ts.saturating_add(gap))],
            WindowAssigner::Global => vec![WindowId::global()],
            WindowAssigner::Count { .. } => Vec::new(),
        }
    }
}

/// Rounds `ts` down to a multiple of `unit` (correct for negatives).
fn floor_to(ts: Timestamp, unit: i64) -> Timestamp {
    ts - ts.rem_euclid(unit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_assignment() {
        let a = WindowAssigner::Fixed { size: 100 };
        assert_eq!(a.assign(0), vec![WindowId::new(0, 100)]);
        assert_eq!(a.assign(99), vec![WindowId::new(0, 100)]);
        assert_eq!(a.assign(100), vec![WindowId::new(100, 200)]);
        assert_eq!(a.assign(-1), vec![WindowId::new(-100, 0)]);
    }

    #[test]
    fn sliding_assignment_covers_timestamp() {
        let a = WindowAssigner::Sliding {
            size: 100,
            slide: 50,
        };
        // A timestamp belongs to size/slide = 2 windows.
        let windows = a.assign(120);
        assert_eq!(
            windows,
            vec![WindowId::new(50, 150), WindowId::new(100, 200)]
        );
        for w in windows {
            assert!(w.contains(120));
        }
    }

    #[test]
    fn sliding_with_equal_slide_is_fixed() {
        let a = WindowAssigner::Sliding {
            size: 100,
            slide: 100,
        };
        assert_eq!(a.assign(150), vec![WindowId::new(100, 200)]);
    }

    #[test]
    fn session_proto_window() {
        let a = WindowAssigner::Session { gap: 30 };
        assert_eq!(a.assign(70), vec![WindowId::new(70, 100)]);
    }

    #[test]
    fn global_and_count() {
        assert_eq!(WindowAssigner::Global.assign(5), vec![WindowId::global()]);
        assert!(WindowAssigner::Count { size: 10 }.assign(5).is_empty());
    }

    #[test]
    fn custom_assignment_and_kind() {
        // A tumbling window offset by 37 ms: boundaries the built-in
        // assigners cannot express.
        let a = WindowAssigner::Custom {
            assign: Arc::new(|ts| {
                let start = (ts - 37).div_euclid(100) * 100 + 37;
                vec![WindowId::new(start, start + 100)]
            }),
        };
        assert_eq!(a.kind(), WindowKind::Custom);
        let w = a.assign(40)[0];
        assert_eq!(w, WindowId::new(37, 137));
        assert!(w.contains(40));
        assert_eq!(a.assign(36)[0], WindowId::new(-63, 37));
    }

    #[test]
    fn kind_mapping() {
        assert_eq!(
            WindowAssigner::Fixed { size: 5 }.kind(),
            WindowKind::Fixed { size: 5 }
        );
        assert_eq!(
            WindowAssigner::Session { gap: 9 }.kind(),
            WindowKind::Session { gap: 9 }
        );
        assert_eq!(
            WindowAssigner::Count { size: 3 }.kind(),
            WindowKind::Count { size: 3 }
        );
    }
}
