//! Latency aggregation for the tail-latency experiments (paper §6.2),
//! and the [`Stamped`] tuple carrying its per-tuple origin timestamp
//! through the micro-batched exchange.

use flowkv_common::types::Tuple;

/// A tuple stamped with the wall-clock nanosecond at which it left the
/// source.
///
/// The stamp travels *per tuple*, never per batch: micro-batching the
/// exchange amortizes channel synchronization, but each tuple keeps its
/// own departure time so the sink's [`LatencySummary`] samples true
/// end-to-end latency regardless of how tuples were grouped in flight.
#[derive(Clone, Debug)]
pub struct Stamped {
    /// The data tuple.
    pub tuple: Tuple,
    /// Wall-clock nanoseconds (from the run's epoch) at source departure.
    pub origin: u64,
}

/// Returns the `p`-quantile (0.0–1.0) of `samples` by nearest-rank, or
/// `None` when empty.
pub fn percentile(samples: &mut [u64], p: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_unstable();
    let rank = ((p.clamp(0.0, 1.0)) * (samples.len() - 1) as f64).round() as usize;
    Some(samples[rank])
}

/// Summary statistics of a latency distribution (nanoseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Median latency.
    pub p50: u64,
    /// 95th-percentile latency — the paper's headline metric.
    pub p95: u64,
    /// 99th-percentile latency.
    pub p99: u64,
    /// Maximum latency.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencySummary {
    /// Computes the summary, sorting `samples` in place.
    pub fn compute(samples: &mut [u64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let idx =
            |p: f64| ((p * (samples.len() - 1) as f64).round() as usize).min(samples.len() - 1);
        LatencySummary {
            count: samples.len() as u64,
            p50: samples[idx(0.50)],
            p95: samples[idx(0.95)],
            p99: samples[idx(0.99)],
            max: *samples.last().expect("non-empty"),
            mean: samples.iter().map(|&v| v as u128).sum::<u128>() as f64 / samples.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&mut v, 0.95), Some(95));
        assert_eq!(percentile(&mut v, 0.0), Some(1));
        assert_eq!(percentile(&mut v, 1.0), Some(100));
        let mut empty: Vec<u64> = vec![];
        assert_eq!(percentile(&mut empty, 0.5), None);
    }

    #[test]
    fn summary_fields() {
        let mut v: Vec<u64> = (1..=1000).rev().collect();
        let s = LatencySummary::compute(&mut v);
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, 501);
        assert_eq!(s.p95, 950);
        assert_eq!(s.p99, 990);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = LatencySummary::compute(&mut []);
        assert_eq!(s, LatencySummary::default());
    }
}
