//! Latency aggregation for the tail-latency experiments (paper §6.2),
//! and the [`Stamped`] tuple carrying its per-tuple origin timestamp
//! through the micro-batched exchange.
//!
//! The sink records every end-to-end sample into a streaming
//! [`Histogram`](flowkv_common::telemetry::Histogram) and summarizes the
//! resulting [`HistogramSnapshot`] — memory stays O(buckets) instead of
//! O(samples), and quantiles carry the histogram's bounded relative
//! error (≤ 1/32). The exact sort-based summary survives under
//! `#[cfg(test)]` as the oracle for that error bound.

use flowkv_common::telemetry::HistogramSnapshot;
use flowkv_common::types::Tuple;

/// A tuple stamped with the wall-clock nanosecond at which it left the
/// source.
///
/// The stamp travels *per tuple*, never per batch: micro-batching the
/// exchange amortizes channel synchronization, but each tuple keeps its
/// own departure time so the sink's [`LatencySummary`] samples true
/// end-to-end latency regardless of how tuples were grouped in flight.
#[derive(Clone, Debug)]
pub struct Stamped {
    /// The data tuple.
    pub tuple: Tuple,
    /// Wall-clock nanoseconds (from the run's epoch) at source departure.
    pub origin: u64,
}

/// Returns the `p`-quantile (0.0–1.0) of `samples` by nearest-rank, or
/// `None` when empty.
pub fn percentile(samples: &mut [u64], p: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_unstable();
    let rank = ((p.clamp(0.0, 1.0)) * (samples.len() - 1) as f64).round() as usize;
    Some(samples[rank])
}

/// Summary statistics of a latency distribution (nanoseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Median latency.
    pub p50: u64,
    /// 95th-percentile latency — the paper's headline metric.
    pub p95: u64,
    /// 99th-percentile latency.
    pub p99: u64,
    /// 99.9th-percentile latency — the prefetch experiments' metric:
    /// synchronous cold reads land exactly in this tail.
    pub p999: u64,
    /// Maximum latency.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencySummary {
    /// Summarizes a streaming latency histogram.
    ///
    /// `count`, `max`, and `mean` are exact (the histogram tracks them
    /// alongside the buckets); the quantiles inherit the histogram's
    /// bounded relative error.
    pub fn from_histogram(h: &HistogramSnapshot) -> LatencySummary {
        if h.is_empty() {
            return LatencySummary::default();
        }
        LatencySummary {
            count: h.count,
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            max: h.max,
            mean: h.mean(),
        }
    }

    /// Computes the exact summary, sorting `samples` in place.
    ///
    /// Test-only oracle: production paths summarize via
    /// [`from_histogram`](Self::from_histogram) so the sink never buffers
    /// the full sample vector.
    #[cfg(test)]
    pub fn compute(samples: &mut [u64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let idx =
            |p: f64| ((p * (samples.len() - 1) as f64).round() as usize).min(samples.len() - 1);
        LatencySummary {
            count: samples.len() as u64,
            p50: samples[idx(0.50)],
            p95: samples[idx(0.95)],
            p99: samples[idx(0.99)],
            p999: samples[idx(0.999)],
            max: *samples.last().expect("non-empty"),
            mean: samples.iter().map(|&v| v as u128).sum::<u128>() as f64 / samples.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&mut v, 0.95), Some(95));
        assert_eq!(percentile(&mut v, 0.0), Some(1));
        assert_eq!(percentile(&mut v, 1.0), Some(100));
        let mut empty: Vec<u64> = vec![];
        assert_eq!(percentile(&mut empty, 0.5), None);
    }

    #[test]
    fn summary_fields() {
        let mut v: Vec<u64> = (1..=1000).rev().collect();
        let s = LatencySummary::compute(&mut v);
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, 501);
        assert_eq!(s.p95, 950);
        assert_eq!(s.p99, 990);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = LatencySummary::compute(&mut []);
        assert_eq!(s, LatencySummary::default());
        let h = flowkv_common::telemetry::Histogram::new();
        assert_eq!(LatencySummary::from_histogram(&h.snapshot()), s);
    }

    #[test]
    fn histogram_summary_tracks_exact_summary() {
        let h = flowkv_common::telemetry::Histogram::new();
        let mut samples: Vec<u64> = (1..=1000).map(|i| i * 37 % 90_000 + 1).collect();
        for &v in &samples {
            h.record(v);
        }
        let approx = LatencySummary::from_histogram(&h.snapshot());
        let exact = LatencySummary::compute(&mut samples);
        assert_eq!(approx.count, exact.count);
        assert_eq!(approx.max, exact.max);
        assert!((approx.mean - exact.mean).abs() < 1e-6);
        for (a, e) in [
            (approx.p50, exact.p50),
            (approx.p95, exact.p95),
            (approx.p99, exact.p99),
        ] {
            let err = a.abs_diff(e) as f64;
            assert!(err <= e as f64 / 32.0 + 1.0, "approx {a} vs exact {e}");
        }
    }

    /// Exact nearest-rank percentile under the same rank rule the
    /// histogram uses (`ceil(q·n)`, 1-indexed).
    fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest::proptest! {
        /// The histogram-backed quantiles stay within the histogram's
        /// relative error bound (1/32, plus one unit of integer slack) of
        /// the exact nearest-rank percentiles, and the summary's exact
        /// fields (count, max, mean) match the sort-based oracle.
        #[test]
        fn histogram_quantile_error_is_bounded(
            samples in proptest::collection::vec(0u64..5_000_000, 1..400),
        ) {
            let h = flowkv_common::telemetry::Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            let snap = h.snapshot();
            let mut sorted = samples.clone();
            let exact = LatencySummary::compute(&mut sorted);
            let approx = LatencySummary::from_histogram(&snap);
            proptest::prop_assert_eq!(approx.count, exact.count);
            proptest::prop_assert_eq!(approx.max, exact.max);
            proptest::prop_assert!((approx.mean - exact.mean).abs() < 1e-6);
            for q in [0.50, 0.95, 0.99] {
                let e = exact_nearest_rank(&sorted, q);
                let a = snap.quantile(q);
                let tol = e as f64 / 32.0 + 1.0;
                proptest::prop_assert!(
                    (a.abs_diff(e)) as f64 <= tol,
                    "q{}: approx {} vs exact {} (tol {})", q, a, e, tol
                );
            }
        }
    }
}
