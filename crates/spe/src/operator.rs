//! The window operator: assignment, state access, and triggering.
//!
//! One operator instance runs per physical partition and owns its state
//! backend exclusively (paper §2.1). The operator translates arriving
//! tuples and watermarks into the store calls of the pattern chosen at
//! launch:
//!
//! | pattern | on element | on trigger |
//! |---|---|---|
//! | append + aligned | `append` | drain `get_window_chunk` |
//! | append + unaligned | `append` | `take_values` per session initial |
//! | read-modify-write | `take_aggregate` + `put_aggregate` | `take_aggregate` |
//!
//! Session windows merge engine-side: the operator tracks each key's open
//! sessions and the *initial window boundaries* under which their tuples
//! were stored — FlowKV's AUR store keys state by those initial
//! boundaries because session extents move (paper §4.2).

use std::collections::{BTreeSet, HashMap, HashSet};

use flowkv_common::backend::StateBackend;
use flowkv_common::error::Result;
use flowkv_common::types::{Timestamp, Tuple, WindowId, MAX_TIMESTAMP};

use crate::job::{AggregateSpec, WindowSpec};
use crate::latency::Stamped;
use crate::window::WindowAssigner;

/// Returns `true` when two session extents overlap or touch.
fn merges_with(a: &WindowId, b: &WindowId) -> bool {
    a.start <= b.end && b.start <= a.end
}

/// An open session of one key.
#[derive(Clone, Debug)]
struct Session {
    /// Current extent (grows as tuples arrive).
    cover: WindowId,
    /// Store windows holding this session's tuples, sorted by start.
    initials: Vec<WindowId>,
}

/// Per-key count-window progress.
#[derive(Clone, Copy, Debug, Default)]
struct CountState {
    seq: u64,
    in_window: u64,
}

/// One key's open sessions in transit: `(cover, initials)` pairs, the
/// raw fields of the private [`Session`] struct.
pub(crate) type SessionRows = Vec<(WindowId, Vec<WindowId>)>;

/// One migration target's slice of an operator's engine-side state,
/// produced by [`WindowOperator::export_engine_shards`] and folded back
/// in by [`WindowOperator::absorb_engine_shard`]. Sessions and counts
/// travel as raw tuples (`(cover, initials)` / `(key, seq, in_window)`)
/// so the private engine structs stay private.
pub(crate) struct EngineShard {
    pub(crate) watermark: Timestamp,
    pub(crate) dropped_late: u64,
    pub(crate) aligned_timers: BTreeSet<(Timestamp, WindowId)>,
    pub(crate) trigger_keys: HashMap<WindowId, HashSet<Vec<u8>>>,
    pub(crate) sessions: Vec<(Vec<u8>, SessionRows)>,
    pub(crate) session_timers: BTreeSet<(Timestamp, Vec<u8>)>,
    pub(crate) counts: Vec<(Vec<u8>, u64, u64)>,
}

/// A window operator bound to one state-backend partition.
pub struct WindowOperator {
    spec: WindowSpec,
    backend: Box<dyn StateBackend>,
    /// Aligned windows awaiting their trigger.
    aligned_timers: BTreeSet<(Timestamp, WindowId)>,
    /// Keys needing per-key firing per window: the RMW trigger set for
    /// aligned windows, and every pattern's trigger set for custom
    /// windows (whose store is per-key unaligned).
    trigger_keys: HashMap<WindowId, HashSet<Vec<u8>>>,
    /// Open sessions per key.
    sessions: HashMap<Vec<u8>, Vec<Session>>,
    /// Candidate session trigger times (stale entries are no-ops).
    session_timers: BTreeSet<(Timestamp, Vec<u8>)>,
    /// Count-window progress per key.
    counts: HashMap<Vec<u8>, CountState>,
    watermark: Timestamp,
    dropped_late: u64,
    /// When set, dropped late tuples are retained for the side output.
    collect_late: bool,
    late: Vec<Tuple>,
    /// Reused per-element output buffer for [`WindowOperator::on_batch`].
    batch_scratch: Vec<Tuple>,
}

impl WindowOperator {
    /// Creates an operator for `spec` over `backend`.
    pub fn new(spec: WindowSpec, backend: Box<dyn StateBackend>) -> Self {
        WindowOperator {
            spec,
            backend,
            aligned_timers: BTreeSet::new(),
            trigger_keys: HashMap::new(),
            sessions: HashMap::new(),
            session_timers: BTreeSet::new(),
            counts: HashMap::new(),
            watermark: Timestamp::MIN,
            dropped_late: 0,
            collect_late: false,
            late: Vec::new(),
            batch_scratch: Vec::new(),
        }
    }

    /// Retains dropped late tuples for [`WindowOperator::take_late`]
    /// (Flink's late-data side output).
    pub fn set_collect_late(&mut self, collect: bool) {
        self.collect_late = collect;
    }

    /// Drains the tuples dropped as late since the last call.
    pub fn take_late(&mut self) -> Vec<Tuple> {
        std::mem::take(&mut self.late)
    }

    /// Processes one tuple, emitting any count-window results into `out`.
    pub fn on_element(&mut self, tuple: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        if tuple.timestamp < self.watermark {
            self.dropped_late += 1;
            if self.collect_late {
                self.late.push(tuple.clone());
            }
            return Ok(());
        }
        match self.spec.assigner {
            WindowAssigner::Fixed { .. }
            | WindowAssigner::Sliding { .. }
            | WindowAssigner::Global => self.on_aligned_element(tuple),
            WindowAssigner::Session { gap } => self.on_session_element(tuple, gap),
            WindowAssigner::Count { size } => self.on_count_element(tuple, size, out),
            WindowAssigner::Custom { .. } => self.on_custom_element(tuple),
        }
    }

    /// Processes one exchange micro-batch, emitting any per-element
    /// results (count windows) into `out` with each input's own origin
    /// stamp.
    ///
    /// The batch is first stably sorted by key so same-key store
    /// operations run back to back (one bucket / hash-slot touch per key
    /// group instead of one per tuple), and one output buffer is reused
    /// across the whole batch instead of reallocating per element.
    /// Stability keeps per-key arrival order, and the watermark cannot
    /// move inside a batch (batches flush before watermarks), so the
    /// reordering is invisible to window assignment, session merging,
    /// late-drops, and per-key value order.
    pub fn on_batch(&mut self, batch: &mut [Stamped], out: &mut Vec<Stamped>) -> Result<()> {
        if batch.len() > 1 {
            batch.sort_by(|a, b| a.tuple.key.cmp(&b.tuple.key));
        }
        self.warm_hint(batch)?;
        let mut scratch = std::mem::take(&mut self.batch_scratch);
        for stamped in batch.iter() {
            scratch.clear();
            self.on_element(&stamped.tuple, &mut scratch)?;
            let origin = stamped.origin;
            out.extend(scratch.drain(..).map(|tuple| Stamped { tuple, origin }));
        }
        self.batch_scratch = scratch;
        Ok(())
    }

    /// Tells the backend which `(key, window)` aggregates this batch is
    /// about to read-modify-write, so block-oriented stores can warm
    /// their caches while the batch's earlier elements are processed.
    /// Only aligned assigners have a pure assignment the hint can
    /// anticipate; the hint is advisory and never changes results.
    fn warm_hint(&mut self, batch: &[Stamped]) -> Result<()> {
        if !self.backend.wants_warm()
            || !matches!(self.spec.aggregate, AggregateSpec::Incremental(_))
            || !matches!(
                self.spec.assigner,
                WindowAssigner::Fixed { .. } | WindowAssigner::Sliding { .. }
            )
        {
            return Ok(());
        }
        let mut pairs: Vec<(&[u8], WindowId)> = Vec::new();
        for stamped in batch {
            let tuple = &stamped.tuple;
            if tuple.timestamp < self.watermark {
                continue; // Dropped as late; never read.
            }
            for window in self.spec.assigner.assign(tuple.timestamp) {
                let pair = (tuple.key.as_slice(), window);
                // The batch is key-sorted, so duplicates are adjacent.
                if pairs.last() != Some(&pair) {
                    pairs.push(pair);
                }
            }
        }
        if pairs.is_empty() {
            return Ok(());
        }
        self.backend.warm(&pairs)
    }

    /// Advances event time, firing every eligible window into `out`.
    pub fn on_watermark(&mut self, watermark: Timestamp, out: &mut Vec<Tuple>) -> Result<()> {
        self.watermark = watermark;
        self.fire_aligned(watermark, out)?;
        self.fire_sessions(watermark, out)
    }

    /// Tuples dropped for arriving behind the watermark.
    pub fn dropped_late(&self) -> u64 {
        self.dropped_late
    }

    /// Checkpoints the operator — engine-side timer/session state *and*
    /// the state backend — into `dir`.
    ///
    /// Called when an aligned checkpoint barrier has arrived on every
    /// input (paper §8: engine-coordinated snapshots, not store WALs).
    pub fn checkpoint(&mut self, dir: &std::path::Path) -> Result<()> {
        std::fs::create_dir_all(dir)
            .map_err(|e| flowkv_common::StoreError::io("operator checkpoint dir", e))?;
        self.backend.checkpoint(dir)?;
        self.save_engine_state(dir)
    }

    /// Restores the operator from a checkpoint written by
    /// [`WindowOperator::checkpoint`].
    pub fn restore(&mut self, dir: &std::path::Path) -> Result<()> {
        self.backend.restore(dir)?;
        self.load_engine_state(dir)
    }

    /// Serializes timers, sessions, count progress, and the RMW trigger
    /// sets — everything the engine holds outside the store.
    fn save_engine_state(&self, dir: &std::path::Path) -> Result<()> {
        use flowkv_common::codec::{put_len_prefixed, put_varint_i64, put_varint_u64};
        let mut buf = Vec::new();
        put_varint_i64(&mut buf, self.watermark);
        put_varint_u64(&mut buf, self.dropped_late);
        put_varint_u64(&mut buf, self.aligned_timers.len() as u64);
        for (ts, w) in &self.aligned_timers {
            put_varint_i64(&mut buf, *ts);
            w.encode_to(&mut buf);
        }
        put_varint_u64(&mut buf, self.trigger_keys.len() as u64);
        for (w, keys) in &self.trigger_keys {
            w.encode_to(&mut buf);
            put_varint_u64(&mut buf, keys.len() as u64);
            for k in keys {
                put_len_prefixed(&mut buf, k);
            }
        }
        put_varint_u64(&mut buf, self.sessions.len() as u64);
        for (key, sessions) in &self.sessions {
            put_len_prefixed(&mut buf, key);
            put_varint_u64(&mut buf, sessions.len() as u64);
            for s in sessions {
                s.cover.encode_to(&mut buf);
                put_varint_u64(&mut buf, s.initials.len() as u64);
                for w in &s.initials {
                    w.encode_to(&mut buf);
                }
            }
        }
        put_varint_u64(&mut buf, self.session_timers.len() as u64);
        for (ts, key) in &self.session_timers {
            put_varint_i64(&mut buf, *ts);
            put_len_prefixed(&mut buf, key);
        }
        put_varint_u64(&mut buf, self.counts.len() as u64);
        for (key, c) in &self.counts {
            put_len_prefixed(&mut buf, key);
            put_varint_u64(&mut buf, c.seq);
            put_varint_u64(&mut buf, c.in_window);
        }
        let mut writer = flowkv_common::logfile::LogWriter::create(dir.join("OPSTATE"))?;
        writer.append(&buf)?;
        writer.sync()
    }

    /// Inverse of [`WindowOperator::save_engine_state`].
    fn load_engine_state(&mut self, dir: &std::path::Path) -> Result<()> {
        use flowkv_common::codec::Decoder;
        let mut reader = flowkv_common::logfile::LogReader::open(dir.join("OPSTATE"))?;
        let (_, payload) = reader.next_record()?.ok_or_else(|| {
            flowkv_common::StoreError::invalid_state("empty operator checkpoint".to_string())
        })?;
        let mut dec = Decoder::new(&payload);
        self.watermark = dec.get_varint_i64()?;
        self.dropped_late = dec.get_varint_u64()?;
        self.aligned_timers.clear();
        for _ in 0..dec.get_varint_u64()? {
            let ts = dec.get_varint_i64()?;
            let w = WindowId::decode_from(&mut dec)?;
            self.aligned_timers.insert((ts, w));
        }
        self.trigger_keys.clear();
        for _ in 0..dec.get_varint_u64()? {
            let w = WindowId::decode_from(&mut dec)?;
            let n = dec.get_varint_u64()? as usize;
            let mut keys = HashSet::with_capacity(n);
            for _ in 0..n {
                keys.insert(dec.get_len_prefixed()?.to_vec());
            }
            self.trigger_keys.insert(w, keys);
        }
        self.sessions.clear();
        for _ in 0..dec.get_varint_u64()? {
            let key = dec.get_len_prefixed()?.to_vec();
            let n = dec.get_varint_u64()? as usize;
            let mut sessions = Vec::with_capacity(n);
            for _ in 0..n {
                let cover = WindowId::decode_from(&mut dec)?;
                let m = dec.get_varint_u64()? as usize;
                let mut initials = Vec::with_capacity(m);
                for _ in 0..m {
                    initials.push(WindowId::decode_from(&mut dec)?);
                }
                sessions.push(Session { cover, initials });
            }
            self.sessions.insert(key, sessions);
        }
        self.session_timers.clear();
        for _ in 0..dec.get_varint_u64()? {
            let ts = dec.get_varint_i64()?;
            let key = dec.get_len_prefixed()?.to_vec();
            self.session_timers.insert((ts, key));
        }
        self.counts.clear();
        for _ in 0..dec.get_varint_u64()? {
            let key = dec.get_len_prefixed()?.to_vec();
            let seq = dec.get_varint_u64()?;
            let in_window = dec.get_varint_u64()?;
            self.counts.insert(key, CountState { seq, in_window });
        }
        Ok(())
    }

    /// The operator's state backend (for flushing and metrics).
    pub fn backend_mut(&mut self) -> &mut dyn StateBackend {
        self.backend.as_mut()
    }

    /// Splits the engine-side state (timers, sessions, count progress,
    /// trigger sets) into `n` migration shards, routing every per-key
    /// structure through `route`.
    ///
    /// Aligned timers are window-level, not key-level, so each shard
    /// gets the full set: firing a window a shard holds no state for
    /// emits nothing, while a missing timer would silently drop a
    /// window. `dropped_late` is a job-level counter and goes to shard 0
    /// alone so a later merge does not multiply it.
    pub(crate) fn export_engine_shards(
        &self,
        n: usize,
        route: &dyn Fn(&[u8]) -> usize,
    ) -> Vec<EngineShard> {
        let mut shards: Vec<EngineShard> = (0..n)
            .map(|i| EngineShard {
                watermark: self.watermark,
                dropped_late: if i == 0 { self.dropped_late } else { 0 },
                aligned_timers: self.aligned_timers.clone(),
                trigger_keys: HashMap::new(),
                sessions: Vec::new(),
                session_timers: BTreeSet::new(),
                counts: Vec::new(),
            })
            .collect();
        for (window, keys) in &self.trigger_keys {
            for key in keys {
                shards[route(key)]
                    .trigger_keys
                    .entry(*window)
                    .or_default()
                    .insert(key.clone());
            }
        }
        for (key, sessions) in &self.sessions {
            shards[route(key)].sessions.push((
                key.clone(),
                sessions
                    .iter()
                    .map(|s| (s.cover, s.initials.clone()))
                    .collect(),
            ));
        }
        for (ts, key) in &self.session_timers {
            shards[route(key)].session_timers.insert((*ts, key.clone()));
        }
        for (key, c) in &self.counts {
            shards[route(key)]
                .counts
                .push((key.clone(), c.seq, c.in_window));
        }
        shards
    }

    /// Folds one migration shard into this operator; the inverse of
    /// [`WindowOperator::export_engine_shards`]. Sources checkpointed at
    /// the same aligned barrier agree on the watermark; per-key state is
    /// disjoint across sources (each key lived on exactly one old
    /// worker), so absorption is a plain union.
    pub(crate) fn absorb_engine_shard(&mut self, shard: EngineShard) {
        self.watermark = self.watermark.max(shard.watermark);
        self.dropped_late += shard.dropped_late;
        self.aligned_timers.extend(shard.aligned_timers);
        for (window, keys) in shard.trigger_keys {
            self.trigger_keys.entry(window).or_default().extend(keys);
        }
        for (key, sessions) in shard.sessions {
            self.sessions.entry(key).or_default().extend(
                sessions
                    .into_iter()
                    .map(|(cover, initials)| Session { cover, initials }),
            );
        }
        self.session_timers.extend(shard.session_timers);
        for (key, seq, in_window) in shard.counts {
            self.counts.insert(key, CountState { seq, in_window });
        }
    }

    fn on_aligned_element(&mut self, tuple: &Tuple) -> Result<()> {
        let windows = self.spec.assigner.assign(tuple.timestamp);
        for window in windows {
            match &self.spec.aggregate {
                AggregateSpec::FullList(_) => {
                    self.backend
                        .append(&tuple.key, window, &tuple.value, tuple.timestamp)?;
                }
                AggregateSpec::Incremental(agg) => {
                    let acc = self
                        .backend
                        .take_aggregate(&tuple.key, window)?
                        .unwrap_or_else(|| agg.create());
                    let acc = agg.add(&acc, &tuple.value);
                    self.backend.put_aggregate(&tuple.key, window, &acc)?;
                    self.trigger_keys
                        .entry(window)
                        .or_default()
                        .insert(tuple.key.clone());
                }
            }
            self.aligned_timers.insert((window.end, window));
        }
        Ok(())
    }

    /// Custom windows: deterministic boundaries from the user function,
    /// but per-key state in the store (classified unaligned, paper §8),
    /// so triggering tracks keys per window and fires them individually.
    fn on_custom_element(&mut self, tuple: &Tuple) -> Result<()> {
        let windows = self.spec.assigner.assign(tuple.timestamp);
        for window in windows {
            match &self.spec.aggregate {
                AggregateSpec::FullList(_) => {
                    self.backend
                        .append(&tuple.key, window, &tuple.value, tuple.timestamp)?;
                }
                AggregateSpec::Incremental(agg) => {
                    let acc = self
                        .backend
                        .take_aggregate(&tuple.key, window)?
                        .unwrap_or_else(|| agg.create());
                    let acc = agg.add(&acc, &tuple.value);
                    self.backend.put_aggregate(&tuple.key, window, &acc)?;
                }
            }
            self.trigger_keys
                .entry(window)
                .or_default()
                .insert(tuple.key.clone());
            self.aligned_timers.insert((window.end, window));
        }
        Ok(())
    }

    fn on_session_element(&mut self, tuple: &Tuple, gap: i64) -> Result<()> {
        let proto = WindowId::new(tuple.timestamp, tuple.timestamp.saturating_add(gap));
        let sessions = self.sessions.entry(tuple.key.clone()).or_default();
        // Split off the sessions the new tuple bridges. Touching windows
        // merge too (two events exactly `gap` apart share a session, as
        // in Flink's session merging).
        let (mut merged, kept): (Vec<Session>, Vec<Session>) = std::mem::take(sessions)
            .into_iter()
            .partition(|s| merges_with(&s.cover, &proto));
        let mut cover = proto;
        let mut initials: Vec<WindowId> = Vec::new();
        for s in &merged {
            cover = cover.cover(&s.cover);
            initials.extend(s.initials.iter().copied());
        }
        initials.sort_unstable();
        let session = match &self.spec.aggregate {
            AggregateSpec::FullList(_) => {
                // New tuples are stored under the session's first initial
                // boundary; a brand-new session stores under its proto.
                let store_window = initials.first().copied().unwrap_or(proto);
                if initials.is_empty() {
                    initials.push(proto);
                }
                self.backend
                    .append(&tuple.key, store_window, &tuple.value, tuple.timestamp)?;
                Session { cover, initials }
            }
            AggregateSpec::Incremental(agg) => {
                // Merge the accumulators of bridged sessions (each RMW
                // session keeps exactly one initial).
                let mut acc: Option<Vec<u8>> = None;
                for s in &merged {
                    let initial = s.initials[0];
                    if let Some(prev) = self.backend.take_aggregate(&tuple.key, initial)? {
                        acc = Some(match acc {
                            None => prev,
                            Some(a) => agg.merge(&a, &prev),
                        });
                    }
                }
                let acc = acc.unwrap_or_else(|| agg.create());
                let acc = agg.add(&acc, &tuple.value);
                let store_window = initials.first().copied().unwrap_or(proto);
                self.backend.put_aggregate(&tuple.key, store_window, &acc)?;
                Session {
                    cover,
                    initials: vec![store_window],
                }
            }
        };
        merged.clear();
        let trigger_at = session.cover.end;
        let mut rebuilt = kept;
        rebuilt.push(session);
        *sessions = rebuilt;
        self.session_timers.insert((trigger_at, tuple.key.clone()));
        Ok(())
    }

    fn on_count_element(&mut self, tuple: &Tuple, size: u64, out: &mut Vec<Tuple>) -> Result<()> {
        let state = self.counts.entry(tuple.key.clone()).or_default();
        let window = WindowId::new((state.seq * size) as i64, ((state.seq + 1) * size) as i64);
        match &self.spec.aggregate {
            AggregateSpec::FullList(_) => {
                self.backend
                    .append(&tuple.key, window, &tuple.value, tuple.timestamp)?;
            }
            AggregateSpec::Incremental(agg) => {
                let acc = self
                    .backend
                    .take_aggregate(&tuple.key, window)?
                    .unwrap_or_else(|| agg.create());
                let acc = agg.add(&acc, &tuple.value);
                self.backend.put_aggregate(&tuple.key, window, &acc)?;
            }
        }
        state.in_window += 1;
        if state.in_window >= size {
            state.seq += 1;
            state.in_window = 0;
            let key = tuple.key.clone();
            self.fire_key_window(&key, &[window], tuple.timestamp, out)?;
        }
        Ok(())
    }

    /// Fires aligned windows whose end time the watermark passed.
    fn fire_aligned(&mut self, watermark: Timestamp, out: &mut Vec<Tuple>) -> Result<()> {
        loop {
            let Some(&(end, window)) = self.aligned_timers.iter().next() else {
                return Ok(());
            };
            if end > watermark {
                return Ok(());
            }
            self.aligned_timers.remove(&(end, window));
            let out_ts = window.end.saturating_sub(1);
            let custom = matches!(self.spec.assigner, WindowAssigner::Custom { .. });
            match self.spec.aggregate.clone() {
                AggregateSpec::FullList(f) if custom => {
                    // Custom windows live in a per-key (unaligned) store:
                    // fire each tracked key individually.
                    let mut keys: Vec<Vec<u8>> = self
                        .trigger_keys
                        .remove(&window)
                        .unwrap_or_default()
                        .into_iter()
                        .collect();
                    keys.sort();
                    for key in keys {
                        let values = self.backend.take_values(&key, window)?;
                        if values.is_empty() {
                            continue;
                        }
                        for output in f.process(&key, window, &values) {
                            out.push(Tuple::new(key.clone(), output, out_ts));
                        }
                    }
                }
                AggregateSpec::FullList(f) => {
                    // Gradual loading: accumulate per-key lists chunk by
                    // chunk, then process each complete key.
                    let mut per_key: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
                    while let Some(chunk) = self.backend.get_window_chunk(window)? {
                        for (key, values) in chunk {
                            per_key.entry(key).or_default().extend(values);
                        }
                    }
                    for (key, values) in per_key {
                        for output in f.process(&key, window, &values) {
                            out.push(Tuple::new(key.clone(), output, out_ts));
                        }
                    }
                }
                AggregateSpec::Incremental(agg) => {
                    let keys = self.trigger_keys.remove(&window).unwrap_or_default();
                    for key in keys {
                        if let Some(acc) = self.backend.take_aggregate(&key, window)? {
                            out.push(Tuple::new(key, agg.result(&acc), out_ts));
                        }
                    }
                }
            }
        }
    }

    /// Fires sessions whose gap the watermark passed.
    fn fire_sessions(&mut self, watermark: Timestamp, out: &mut Vec<Tuple>) -> Result<()> {
        loop {
            let Some((end, key)) = self.session_timers.iter().next().cloned() else {
                return Ok(());
            };
            if end > watermark {
                return Ok(());
            }
            self.session_timers.remove(&(end, key.clone()));
            let Some(sessions) = self.sessions.get_mut(&key) else {
                continue;
            };
            let (expired, open): (Vec<Session>, Vec<Session>) = std::mem::take(sessions)
                .into_iter()
                .partition(|s| s.cover.end <= watermark);
            if open.is_empty() {
                self.sessions.remove(&key);
            } else {
                *sessions = open;
            }
            for session in expired {
                let out_ts = session.cover.end.saturating_sub(1);
                self.fire_key_window_at(&key, &session.initials, session.cover, out_ts, out)?;
            }
        }
    }

    /// Fires one key's window over the given store windows (count path).
    fn fire_key_window(
        &mut self,
        key: &[u8],
        store_windows: &[WindowId],
        out_ts: Timestamp,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        let logical = store_windows[0];
        self.fire_key_window_at(key, store_windows, logical, out_ts, out)
    }

    /// Reads, aggregates, and emits one key's window state.
    fn fire_key_window_at(
        &mut self,
        key: &[u8],
        store_windows: &[WindowId],
        logical: WindowId,
        out_ts: Timestamp,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        match self.spec.aggregate.clone() {
            AggregateSpec::FullList(f) => {
                let mut values = Vec::new();
                for w in store_windows {
                    values.extend(self.backend.take_values(key, *w)?);
                }
                if values.is_empty() {
                    return Ok(());
                }
                for output in f.process(key, logical, &values) {
                    out.push(Tuple::new(key.to_vec(), output, out_ts));
                }
            }
            AggregateSpec::Incremental(agg) => {
                let mut acc: Option<Vec<u8>> = None;
                for w in store_windows {
                    if let Some(a) = self.backend.take_aggregate(key, *w)? {
                        acc = Some(match acc {
                            None => a,
                            Some(prev) => agg.merge(&prev, &a),
                        });
                    }
                }
                if let Some(acc) = acc {
                    out.push(Tuple::new(key.to_vec(), agg.result(&acc), out_ts));
                }
            }
        }
        Ok(())
    }

    /// Flushes pending count windows at end of stream.
    ///
    /// Count windows fire on arrivals, so a bounded stream may end with
    /// partially filled windows; Flink discards those, and so do we —
    /// this hook only exists for the final [`MAX_TIMESTAMP`] watermark to
    /// fire aligned and session windows, which [`Self::on_watermark`]
    /// already handles.
    pub fn finish(&mut self, out: &mut Vec<Tuple>) -> Result<()> {
        self.on_watermark(MAX_TIMESTAMP, out)?;
        self.backend.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{CountAggregate, FnProcess, MedianProcess, SumAggregate};
    use crate::memstore::InMemoryBackend;
    use std::sync::Arc;

    fn op(assigner: WindowAssigner, aggregate: AggregateSpec) -> WindowOperator {
        WindowOperator::new(
            WindowSpec {
                name: "test".into(),
                assigner,
                aggregate,
            },
            Box::new(InMemoryBackend::new(1 << 20, 8)),
        )
    }

    fn t(key: &str, value: u64, ts: i64) -> Tuple {
        Tuple::new(key.into(), value.to_le_bytes().to_vec(), ts)
    }

    fn u64_of(bytes: &[u8]) -> u64 {
        crate::functions::decode_u64(bytes)
    }

    #[test]
    fn fixed_rmw_counts_per_key() {
        let mut o = op(
            WindowAssigner::Fixed { size: 100 },
            AggregateSpec::Incremental(Arc::new(CountAggregate)),
        );
        let mut out = Vec::new();
        for i in 0..10 {
            o.on_element(&t("a", i, 10 + i as i64), &mut out).unwrap();
        }
        o.on_element(&t("b", 1, 50), &mut out).unwrap();
        // Nothing fires before the watermark passes the window end.
        o.on_watermark(99, &mut out).unwrap();
        assert!(out.is_empty());
        o.on_watermark(100, &mut out).unwrap();
        let mut results: Vec<(Vec<u8>, u64)> = out
            .iter()
            .map(|t| (t.key.clone(), u64_of(&t.value)))
            .collect();
        results.sort();
        assert_eq!(results, vec![(b"a".to_vec(), 10), (b"b".to_vec(), 1)]);
        // Windows fire once.
        out.clear();
        o.on_watermark(200, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn sliding_append_assigns_to_two_windows() {
        let mut o = op(
            WindowAssigner::Sliding {
                size: 100,
                slide: 50,
            },
            AggregateSpec::FullList(Arc::new(FnProcess::new(|_k, _w, vals| {
                vec![(vals.len() as u64).to_le_bytes().to_vec()]
            }))),
        );
        let mut out = Vec::new();
        o.on_element(&t("k", 1, 75), &mut out).unwrap();
        o.on_watermark(MAX_TIMESTAMP, &mut out).unwrap();
        // The tuple lives in [0,100) and [50,150): two firings of count 1.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|t| u64_of(&t.value) == 1));
    }

    #[test]
    fn session_windows_merge_and_fire_per_key() {
        let mut o = op(
            WindowAssigner::Session { gap: 50 },
            AggregateSpec::FullList(Arc::new(MedianProcess)),
        );
        let mut out = Vec::new();
        // Key `a`: two bursts separated by more than the gap.
        o.on_element(&t("a", 10, 0), &mut out).unwrap();
        o.on_element(&t("a", 20, 30), &mut out).unwrap();
        o.on_element(&t("a", 90, 200), &mut out).unwrap();
        // Key `b`: one burst.
        o.on_element(&t("b", 5, 40), &mut out).unwrap();
        o.on_watermark(150, &mut out).unwrap();
        // Session a[0,80) (median 15) and b[40,90) (median 5) fired.
        let mut fired: Vec<(Vec<u8>, u64)> = out
            .iter()
            .map(|t| (t.key.clone(), u64_of(&t.value)))
            .collect();
        fired.sort();
        assert_eq!(fired, vec![(b"a".to_vec(), 15), (b"b".to_vec(), 5)]);
        out.clear();
        o.on_watermark(MAX_TIMESTAMP, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(u64_of(&out[0].value), 90);
    }

    #[test]
    fn session_merge_bridges_two_sessions() {
        let mut o = op(
            WindowAssigner::Session { gap: 20 },
            AggregateSpec::FullList(Arc::new(FnProcess::new(|_k, _w, vals| {
                vec![(vals.len() as u64).to_le_bytes().to_vec()]
            }))),
        );
        let mut out = Vec::new();
        // Two sessions [0,20) and [40,60), bridged by ts=20 whose proto
        // [20,40) touches both.
        o.on_element(&t("k", 1, 0), &mut out).unwrap();
        o.on_element(&t("k", 2, 40), &mut out).unwrap();
        o.on_element(&t("k", 3, 20), &mut out).unwrap();
        o.on_watermark(MAX_TIMESTAMP, &mut out).unwrap();
        assert_eq!(out.len(), 1, "bridged sessions must fire once: {out:?}");
        assert_eq!(u64_of(&out[0].value), 3);
    }

    #[test]
    fn session_rmw_merges_accumulators() {
        let mut o = op(
            WindowAssigner::Session { gap: 20 },
            AggregateSpec::Incremental(Arc::new(SumAggregate)),
        );
        let mut out = Vec::new();
        o.on_element(&t("k", 10, 0), &mut out).unwrap();
        o.on_element(&t("k", 20, 40), &mut out).unwrap();
        o.on_element(&t("k", 30, 20), &mut out).unwrap();
        o.on_watermark(MAX_TIMESTAMP, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(u64_of(&out[0].value), 60);
    }

    #[test]
    fn count_windows_fire_on_size() {
        let mut o = op(
            WindowAssigner::Count { size: 3 },
            AggregateSpec::Incremental(Arc::new(SumAggregate)),
        );
        let mut out = Vec::new();
        for i in 1..=7u64 {
            o.on_element(&t("k", i, i as i64), &mut out).unwrap();
        }
        // Two full windows fired: 1+2+3 and 4+5+6.
        assert_eq!(out.len(), 2);
        assert_eq!(u64_of(&out[0].value), 6);
        assert_eq!(u64_of(&out[1].value), 15);
    }

    #[test]
    fn late_tuples_can_be_collected_as_side_output() {
        let mut o = op(
            WindowAssigner::Fixed { size: 100 },
            AggregateSpec::Incremental(Arc::new(CountAggregate)),
        );
        o.set_collect_late(true);
        let mut out = Vec::new();
        o.on_watermark(100, &mut out).unwrap();
        o.on_element(&t("k", 7, 50), &mut out).unwrap();
        let late = o.take_late();
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].timestamp, 50);
        assert!(o.take_late().is_empty());
    }

    #[test]
    fn late_tuples_are_dropped() {
        let mut o = op(
            WindowAssigner::Fixed { size: 100 },
            AggregateSpec::Incremental(Arc::new(CountAggregate)),
        );
        let mut out = Vec::new();
        o.on_element(&t("k", 1, 10), &mut out).unwrap();
        o.on_watermark(100, &mut out).unwrap();
        out.clear();
        o.on_element(&t("k", 1, 50), &mut out).unwrap();
        assert_eq!(o.dropped_late(), 1);
        o.on_watermark(MAX_TIMESTAMP, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn checkpoint_restores_engine_and_store_state() {
        use flowkv_common::scratch::ScratchDir;
        let ckpt = ScratchDir::new("op-ckpt").unwrap();
        let make = || {
            op(
                WindowAssigner::Session { gap: 50 },
                AggregateSpec::FullList(Arc::new(MedianProcess)),
            )
        };
        let mut a = make();
        let mut out = Vec::new();
        // First half of the stream: open sessions for three keys.
        for (key, v, ts) in [("a", 10, 0), ("a", 20, 30), ("b", 5, 40), ("c", 7, 45)] {
            a.on_element(&t(key, v, ts), &mut out).unwrap();
        }
        a.checkpoint(ckpt.path()).unwrap();

        // Continue on the original operator for reference outputs.
        let mut ref_out = Vec::new();
        a.on_element(&t("a", 30, 60), &mut ref_out).unwrap();
        a.on_watermark(MAX_TIMESTAMP, &mut ref_out).unwrap();

        // Restore into a fresh operator and replay the same remainder.
        let mut b = make();
        b.restore(ckpt.path()).unwrap();
        let mut res_out = Vec::new();
        b.on_element(&t("a", 30, 60), &mut res_out).unwrap();
        b.on_watermark(MAX_TIMESTAMP, &mut res_out).unwrap();

        let sorted = |mut v: Vec<Tuple>| {
            v.sort_by(|x, y| (&x.key, &x.value).cmp(&(&y.key, &y.value)));
            v
        };
        assert_eq!(sorted(res_out), sorted(ref_out));
    }

    #[test]
    fn checkpoint_restores_count_window_progress() {
        use flowkv_common::scratch::ScratchDir;
        let ckpt = ScratchDir::new("op-count-ckpt").unwrap();
        let make = || {
            op(
                WindowAssigner::Count { size: 3 },
                AggregateSpec::Incremental(Arc::new(SumAggregate)),
            )
        };
        let mut a = make();
        let mut out = Vec::new();
        a.on_element(&t("k", 1, 1), &mut out).unwrap();
        a.on_element(&t("k", 2, 2), &mut out).unwrap();
        a.checkpoint(ckpt.path()).unwrap();

        let mut b = make();
        b.restore(ckpt.path()).unwrap();
        let mut out = Vec::new();
        // The third element completes the restored window: 1 + 2 + 3.
        b.on_element(&t("k", 3, 3), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(u64_of(&out[0].value), 6);
    }

    #[test]
    fn global_window_fires_at_end_of_stream() {
        let mut o = op(
            WindowAssigner::Global,
            AggregateSpec::Incremental(Arc::new(CountAggregate)),
        );
        let mut out = Vec::new();
        for i in 0..5 {
            o.on_element(&t("k", i, i as i64), &mut out).unwrap();
        }
        o.on_watermark(1_000_000, &mut out).unwrap();
        assert!(out.is_empty(), "global window fired early");
        o.finish(&mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(u64_of(&out[0].value), 5);
    }
}
