//! The dataflow job model: logical pipelines of stateless and window
//! stages (paper §2.1, Figure 1(a)).
//!
//! A [`Job`] is a linear pipeline; each stage boundary repartitions
//! tuples by key hash, so every stage runs as `parallelism` independent
//! workers over disjoint key ranges (Figure 1(b)). Two-input operations
//! (windowed joins, side inputs) are expressed by merging the input
//! streams before a window stage and tagging values, which is how the
//! NEXMark queries in `flowkv-nexmark` build Q7 and Q8.

use std::sync::Arc;

use flowkv_common::backend::{AggregateKind, OperatorSemantics};
use flowkv_common::types::Tuple;

use crate::functions::{AggregateFunction, ProcessWindowFunction};
use crate::join::{IntervalJoinSpec, JoinFn};
use crate::window::WindowAssigner;

/// How a window stage aggregates (determines the store pattern).
#[derive(Clone)]
pub enum AggregateSpec {
    /// Incremental aggregation: the read-modify-write pattern.
    Incremental(Arc<dyn AggregateFunction>),
    /// Full-list aggregation: the append pattern.
    FullList(Arc<dyn ProcessWindowFunction>),
}

impl AggregateSpec {
    /// The launch-time aggregate-function signature seen by the store.
    pub fn kind(&self) -> AggregateKind {
        match self {
            AggregateSpec::Incremental(_) => AggregateKind::Incremental,
            AggregateSpec::FullList(_) => AggregateKind::FullList,
        }
    }
}

/// A stateless flat-map: reads one tuple, emits zero or more.
pub type StatelessFn = Arc<dyn Fn(&Tuple, &mut Vec<Tuple>) + Send + Sync>;

/// Configuration of one window stage.
#[derive(Clone)]
pub struct WindowSpec {
    /// Operator name, unique within the job (used for store directories).
    pub name: String,
    /// The window function.
    pub assigner: WindowAssigner,
    /// The aggregate function.
    pub aggregate: AggregateSpec,
}

impl WindowSpec {
    /// The operator semantics handed to the state-backend factory.
    pub fn semantics(&self) -> OperatorSemantics {
        OperatorSemantics::new(self.aggregate.kind(), self.assigner.kind())
    }
}

/// One stage of a pipeline.
#[derive(Clone)]
pub enum Stage {
    /// A stateless transformation.
    Stateless {
        /// Stage name (diagnostics only).
        name: String,
        /// The flat-map function.
        f: StatelessFn,
    },
    /// A stateful window operation.
    Window(WindowSpec),
    /// A two-stream interval join over tagged inputs (paper §8).
    IntervalJoin(IntervalJoinSpec),
}

impl Stage {
    /// The stage's name.
    pub fn name(&self) -> &str {
        match self {
            Stage::Stateless { name, .. } => name,
            Stage::Window(spec) => &spec.name,
            Stage::IntervalJoin(spec) => &spec.name,
        }
    }
}

/// A runnable dataflow job.
#[derive(Clone)]
pub struct Job {
    /// Job name (diagnostics and data directories).
    pub name: String,
    /// Degree of parallelism `n` for every stage.
    pub parallelism: usize,
    /// The pipeline stages in order.
    pub stages: Vec<Stage>,
}

impl Job {
    /// Number of window stages in the pipeline.
    pub fn window_stage_count(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| matches!(s, Stage::Window(_)))
            .count()
    }
}

/// Fluent builder for [`Job`].
///
/// # Examples
///
/// ```
/// use flowkv_spe::functions::CountAggregate;
/// use flowkv_spe::job::{AggregateSpec, JobBuilder};
/// use flowkv_spe::window::WindowAssigner;
/// use std::sync::Arc;
///
/// let job = JobBuilder::new("counts")
///     .parallelism(2)
///     .stateless("pass", |t, out| out.push(t.clone()))
///     .window(
///         "count-per-key",
///         WindowAssigner::Fixed { size: 1_000 },
///         AggregateSpec::Incremental(Arc::new(CountAggregate)),
///     )
///     .build();
/// assert_eq!(job.stages.len(), 2);
/// ```
pub struct JobBuilder {
    name: String,
    parallelism: usize,
    stages: Vec<Stage>,
}

impl JobBuilder {
    /// Starts a job named `name` with parallelism 1.
    pub fn new(name: impl Into<String>) -> Self {
        JobBuilder {
            name: name.into(),
            parallelism: 1,
            stages: Vec::new(),
        }
    }

    /// Sets the degree of parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn parallelism(mut self, n: usize) -> Self {
        assert!(n > 0, "parallelism must be positive");
        self.parallelism = n;
        self
    }

    /// Appends a stateless flat-map stage.
    pub fn stateless(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&Tuple, &mut Vec<Tuple>) + Send + Sync + 'static,
    ) -> Self {
        self.stages.push(Stage::Stateless {
            name: name.into(),
            f: Arc::new(f),
        });
        self
    }

    /// Appends a window stage.
    pub fn window(
        mut self,
        name: impl Into<String>,
        assigner: WindowAssigner,
        aggregate: AggregateSpec,
    ) -> Self {
        self.stages.push(Stage::Window(WindowSpec {
            name: name.into(),
            assigner,
            aggregate,
        }));
        self
    }

    /// Appends an interval-join stage over tagged inputs (see
    /// [`crate::join::tag_left`] / [`crate::join::tag_right`]): rows join
    /// when `right.ts ∈ [left.ts + lower, left.ts + upper]`.
    pub fn interval_join(
        mut self,
        name: impl Into<String>,
        lower: i64,
        upper: i64,
        bucket_ms: i64,
        join: JoinFn,
    ) -> Self {
        self.stages.push(Stage::IntervalJoin(IntervalJoinSpec {
            name: name.into(),
            lower,
            upper,
            bucket_ms,
            join,
        }));
        self
    }

    /// Finishes the job.
    pub fn build(self) -> Job {
        Job {
            name: self.name,
            parallelism: self.parallelism,
            stages: self.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{CountAggregate, MedianProcess};
    use flowkv_common::backend::WindowKind;

    #[test]
    fn builder_assembles_stages() {
        let job = JobBuilder::new("j")
            .parallelism(3)
            .stateless("a", |t, out| out.push(t.clone()))
            .window(
                "w",
                WindowAssigner::Session { gap: 10 },
                AggregateSpec::FullList(Arc::new(MedianProcess)),
            )
            .build();
        assert_eq!(job.parallelism, 3);
        assert_eq!(job.stages.len(), 2);
        assert_eq!(job.stages[0].name(), "a");
        assert_eq!(job.stages[1].name(), "w");
        assert_eq!(job.window_stage_count(), 1);
    }

    #[test]
    fn window_spec_semantics() {
        let spec = WindowSpec {
            name: "w".into(),
            assigner: WindowAssigner::Fixed { size: 7 },
            aggregate: AggregateSpec::Incremental(Arc::new(CountAggregate)),
        };
        let sem = spec.semantics();
        assert_eq!(sem.aggregate, AggregateKind::Incremental);
        assert_eq!(sem.window, WindowKind::Fixed { size: 7 });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_parallelism_panics() {
        let _ = JobBuilder::new("j").parallelism(0);
    }
}
