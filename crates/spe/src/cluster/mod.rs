//! Sharded multi-worker execution with live rescaling.
//!
//! A cluster run executes one job across `N` key-range shards
//! ([`flowkv::KeyRangePartitioner`]), each shard a *full* executor
//! instance — its own store backends, exchange, and telemetry registry —
//! fed by a coordinator that routes source tuples by key range and
//! injects the global watermark/barrier schedule into every shard
//! ([`router`]). Outputs merge into one deterministic global order, so
//! the sharded run is byte-identical to the `N = 1` run.
//!
//! Live rescaling is recovery at a different parallelism: the
//! coordinator takes an aligned checkpoint at a chosen source offset,
//! halts the old shards *without* firing their open windows, repartitions
//! every store's persisted state along key boundaries ([`migrate`]), and
//! resumes the remainder of the stream at the new worker count with the
//! watermark schedule carrying over — still byte-identical to a run that
//! never rescaled.

mod migrate;
mod router;

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use flowkv::KeyRangePartitioner;
use flowkv_common::backend::StateBackendFactory;
use flowkv_common::error::StoreError;
use flowkv_common::metrics::MetricsSnapshot;
use flowkv_common::telemetry::Telemetry;
use flowkv_common::trace::{self as ftrace, Tracer};
use flowkv_common::types::Tuple;

use crate::executor::{run_job_items, JobError, JobResult, RunOptions, SourceItem};
use crate::job::{Job, Stage};

/// The outcome of a cluster run.
#[derive(Debug, Default)]
pub struct ClusterResult {
    /// All committed output tuples, in the canonical global order
    /// (sorted by key, then timestamp, then value) — the order used for
    /// byte-identity comparisons across parallelisms.
    pub outputs: Vec<Tuple>,
    /// Number of output tuples.
    pub output_count: u64,
    /// Number of source tuples.
    pub input_count: u64,
    /// Wall-clock duration of the whole run (routing, all phases, and
    /// any migration).
    pub elapsed: Duration,
    /// Parallelism at the end of the run (the rescale target when one
    /// was requested).
    pub workers: usize,
    /// How long the stream was paused for state migration (rescale runs
    /// only): from the moment every old shard halted to the moment the
    /// new shards could start.
    pub rescale_pause: Option<Duration>,
    /// Store metrics merged across every worker of every phase.
    pub store_metrics: MetricsSnapshot,
    /// Tuples dropped for arriving behind the watermark.
    pub dropped_late: u64,
}

impl ClusterResult {
    /// Source throughput in tuples per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.input_count as f64 / secs
        }
    }
}

/// Sorts outputs into the canonical global order every parallelism
/// agrees on.
fn canonical_sort(outputs: &mut [Tuple]) {
    outputs.sort_by(|a, b| (&a.key, a.timestamp, &a.value).cmp(&(&b.key, b.timestamp, &b.value)));
}

fn invalid(msg: &str) -> JobError {
    JobError::Store(StoreError::invalid_state(msg.to_string()))
}

/// Runs `job` across [`RunOptions::workers`] key-range shards, rescaling
/// mid-stream to [`RunOptions::rescale_to`] when set.
///
/// Sharding supports jobs with exactly one stateful (window) stage: any
/// leading stateless stages run inside the coordinator's router (so
/// routing sees the keys the window groups by), and trailing stateless
/// stages run inside each shard. A rescale additionally requires
/// [`RunOptions::checkpoint_after_tuples`] (the source offset of the
/// coordinated barrier) and [`RunOptions::checkpoint_dir`] (where the
/// old and repartitioned checkpoints live).
pub fn run_cluster(
    job: &Job,
    source: impl Iterator<Item = Tuple>,
    factory: Arc<dyn StateBackendFactory>,
    options: &RunOptions,
) -> Result<ClusterResult, JobError> {
    // Tier here, once: `migrate::repartition` drives the factory
    // directly (outside any executor), and an unwrapped migration store
    // could not read a tiered shard's checkpoint. The name guard inside
    // keeps the per-shard executors from wrapping a second time.
    let factory = crate::executor::maybe_tier_factory(factory, options);
    let started = Instant::now();
    let n = options.workers.max(1);

    // One tracer shared by every shard of every phase: phase-1 shard `i`
    // traces as pid `i`, rescaled shard `i` as pid `n + i`, and the
    // coordinator's own lane (migration spans) as `pid::MAX`. Shards
    // never write trace files themselves — the coordinator drains the
    // shared tracer once, after both phases.
    let trace_sample = if options.trace_sample > 0 {
        options.trace_sample
    } else if options.trace.is_some() || options.trace_out.is_some() {
        1
    } else {
        0
    };
    let tracer: Option<Arc<Tracer>> =
        (trace_sample > 0).then(|| options.trace.clone().unwrap_or_else(Tracer::new));
    let coord_rec = tracer.as_ref().map(|t| t.thread(u32::MAX, "coordinator"));

    let stateful: Vec<usize> = job
        .stages
        .iter()
        .enumerate()
        .filter(|(_, s)| !matches!(s, Stage::Stateless { .. }))
        .map(|(i, _)| i)
        .collect();
    let [split] = stateful[..] else {
        return Err(invalid("cluster jobs need exactly one stateful stage"));
    };
    if matches!(job.stages[split], Stage::IntervalJoin(_)) {
        return Err(invalid("interval joins are not shardable"));
    }
    if job.stages[..split]
        .iter()
        .any(|s| !matches!(s, Stage::Stateless { .. }))
    {
        return Err(invalid("only stateless stages may precede the window"));
    }
    let prefix = &job.stages[..split];
    let worker_job = Job {
        name: job.name.clone(),
        parallelism: job.parallelism,
        stages: job.stages[split..].to_vec(),
    };

    let partitioner = KeyRangePartitioner::new(n);
    let rescale_part = match options.rescale_to {
        Some(0) => return Err(invalid("cannot rescale to zero workers")),
        Some(m) => Some(KeyRangePartitioner::new(m)),
        None => None,
    };
    let (barrier_at, ckpt_root) = if rescale_part.is_some() {
        let Some(b) = options.checkpoint_after_tuples else {
            return Err(invalid(
                "rescale requires a barrier offset (RunOptions::checkpoint)",
            ));
        };
        let Some(dir) = options.checkpoint_dir.clone() else {
            return Err(invalid(
                "rescale requires a checkpoint directory (RunOptions::checkpoint)",
            ));
        };
        (Some(b), Some(dir))
    } else {
        (None, None)
    };

    let plan = router::route(
        source,
        prefix,
        &partitioner,
        rescale_part
            .as_ref()
            .map(|p| (p, barrier_at.expect("validated above"))),
        options.watermark_interval as u64,
        options.watermark_slack,
    );
    if rescale_part.is_some() && !plan.barrier_taken {
        return Err(invalid("rescale barrier offset lies beyond the stream end"));
    }

    let old_ckpt = ckpt_root.as_ref().map(|d| d.join("old"));
    let phase1 = run_phase(
        &worker_job,
        plan.phase1,
        &factory,
        options,
        &PhaseConfig {
            label: "",
            data_root: options.data_dir.clone(),
            checkpoint_root: old_ckpt.clone(),
            restore_root: None,
            tracer: tracer.clone(),
            trace_sample,
            pid_base: 0,
        },
    )?;

    let mut outputs: Vec<Tuple> = Vec::new();
    let mut store_metrics = MetricsSnapshot::default();
    for r in &phase1 {
        store_metrics = store_metrics.merged(&r.store_metrics);
    }
    for r in &phase1 {
        outputs.extend(r.outputs.iter().cloned());
    }
    let mut dropped_late: u64 = phase1.iter().map(|r| r.dropped_late).sum();
    let mut workers = n;
    let mut rescale_pause = None;

    if let (Some(phase2_items), Some(new_part)) = (plan.phase2, &rescale_part) {
        let m = new_part.shards();
        let ckpt_root = ckpt_root.expect("validated above");
        let new_ckpt = ckpt_root.join("new");
        let pause_start = Instant::now();
        let mig_span = coord_rec.as_ref().map(|rec| {
            rec.begin_with(
                "rescale_migrate",
                "migrate",
                None,
                vec![("from", n as i64), ("to", m as i64)],
            )
        });
        migrate::repartition(
            &worker_job,
            &factory,
            &old_ckpt.expect("rescale writes old checkpoints"),
            n,
            &new_ckpt,
            m,
            &options.data_dir.join("migrate"),
            coord_rec.as_deref(),
        )
        .map_err(JobError::Store)?;
        if let (Some(rec), Some(span)) = (&coord_rec, mig_span) {
            rec.end(span, "rescale_migrate", "migrate");
        }
        rescale_pause = Some(pause_start.elapsed());
        let phase2 = run_phase(
            &worker_job,
            phase2_items,
            &factory,
            options,
            &PhaseConfig {
                label: "r",
                data_root: options.data_dir.clone(),
                checkpoint_root: None,
                restore_root: Some(new_ckpt),
                tracer: tracer.clone(),
                trace_sample,
                pid_base: n as u32,
            },
        )?;
        for r in &phase2 {
            store_metrics = store_metrics.merged(&r.store_metrics);
            outputs.extend(r.outputs.iter().cloned());
        }
        // Phase-1 drops were checkpointed into the operators' engine
        // state and restored into phase 2, so phase 2 already carries
        // the full count.
        dropped_late = phase2.iter().map(|r| r.dropped_late).sum();
        workers = m;
    }

    if let (Some(tracer), Some(path)) = (&tracer, &options.trace_out) {
        let json = ftrace::chrome_trace_json(&tracer.drain());
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("trace export failed ({}): {e}", path.display());
        }
    }

    canonical_sort(&mut outputs);
    Ok(ClusterResult {
        output_count: outputs.len() as u64,
        outputs,
        input_count: plan.input_count,
        elapsed: started.elapsed(),
        workers,
        rescale_pause,
        store_metrics,
        dropped_late,
    })
}

/// Where one phase's workers keep their stores and checkpoints.
struct PhaseConfig {
    /// Worker-directory prefix: phase-1 workers are `w0..`, rescaled
    /// workers `rw0..` (also the telemetry `worker` label).
    label: &'static str,
    data_root: PathBuf,
    checkpoint_root: Option<PathBuf>,
    restore_root: Option<PathBuf>,
    /// Shared cluster tracer (when tracing): every shard of the phase
    /// records into it under pid `pid_base + shard`.
    tracer: Option<Arc<Tracer>>,
    trace_sample: u64,
    pid_base: u32,
}

/// Runs one shard set to completion: every shard a full executor
/// instance on its own thread, with bounded deterministic-backoff
/// retries, per-worker telemetry registries folded into the job-level
/// hub under `worker=<i>` labels.
fn run_phase(
    worker_job: &Job,
    shards: Vec<Vec<SourceItem>>,
    factory: &Arc<dyn StateBackendFactory>,
    options: &RunOptions,
    phase: &PhaseConfig,
) -> Result<Vec<JobResult>, JobError> {
    let seed = crate::backoff::fault_seed();
    let mut handles = Vec::with_capacity(shards.len());
    let mut hubs: Vec<Option<Arc<Telemetry>>> = Vec::with_capacity(shards.len());
    for (i, items) in shards.into_iter().enumerate() {
        let hub = options.telemetry.as_ref().map(|_| Telemetry::new_shared());
        hubs.push(hub.clone());
        let job = worker_job.clone();
        let factory = Arc::clone(factory);
        let data_dir = phase.data_root.join(format!("{}w{i}", phase.label));
        let mut wopts = RunOptions::new(&data_dir);
        // The coordinator injects the global schedule; shard-local
        // automatic watermarks would lag it and change firing decisions.
        wopts.watermark_interval = usize::MAX;
        wopts.collect_outputs = true;
        wopts.record_latency = options.record_latency;
        wopts.timeout = options.timeout;
        wopts.channel_capacity = options.channel_capacity;
        wopts.batch_size = options.batch_size;
        wopts.batch_linger = options.batch_linger;
        wopts.checkpoint_dir = phase
            .checkpoint_root
            .as_ref()
            .map(|d| migrate::cluster_ckpt_dir(d, i));
        wopts.restore_from = phase
            .restore_root
            .as_ref()
            .map(|d| migrate::cluster_ckpt_dir(d, i));
        wopts.telemetry = hub;
        if let Some(tracer) = &phase.tracer {
            wopts.trace = Some(Arc::clone(tracer));
            wopts.trace_sample = phase.trace_sample;
            wopts.trace_pid = phase.pid_base + i as u32;
        }
        let max_restarts = options.max_restarts;
        let backoff = options.restart_backoff;
        let handle = std::thread::Builder::new()
            .name(format!("cluster-{}w{i}", phase.label))
            .spawn(move || -> Result<JobResult, JobError> {
                let mut attempt = 0u32;
                loop {
                    let mut opts = wopts.clone();
                    // A fresh store root per attempt: a failed attempt's
                    // half-written files never leak into the retry.
                    opts.data_dir = data_dir.join(format!("a{attempt}"));
                    match run_job_items(
                        &job,
                        items.clone().into_iter(),
                        Arc::clone(&factory),
                        &opts,
                    ) {
                        Ok(r) => return Ok(r),
                        Err(e) => {
                            if attempt >= max_restarts {
                                return Err(e);
                            }
                            attempt += 1;
                            std::thread::sleep(crate::backoff::jittered_backoff(
                                backoff,
                                attempt,
                                seed ^ (i as u64),
                            ));
                        }
                    }
                }
            })
            .expect("spawn cluster worker");
        handles.push(handle);
    }

    let mut results = Vec::with_capacity(handles.len());
    let mut first_error: Option<JobError> = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(r)) => results.push(r),
            Ok(Err(e)) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
            Err(_) => {
                if first_error.is_none() {
                    first_error = Some(JobError::Panic("cluster worker panicked".into()));
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    if let Some(job_hub) = &options.telemetry {
        for (i, hub) in hubs.iter().enumerate() {
            if let Some(hub) = hub {
                job_hub.registry().merge(
                    &hub.registry().snapshot(),
                    "worker",
                    &format!("{}{i}", phase.label),
                );
            }
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::BackendChoice;
    use crate::functions::{CountAggregate, MedianProcess};
    use crate::job::{AggregateSpec, JobBuilder};
    use crate::window::WindowAssigner;
    use flowkv_common::scratch::ScratchDir;

    fn tuples(n: u64, keys: u64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(
                    format!("key-{}", i % keys).into_bytes(),
                    (i % 7 + 1).to_le_bytes().to_vec(),
                    i as i64,
                )
            })
            .collect()
    }

    fn count_job() -> Job {
        JobBuilder::new("cluster-counts")
            .parallelism(2)
            .stateless("pass", |t, out| out.push(t.clone()))
            .window(
                "counts",
                WindowAssigner::Fixed { size: 500 },
                AggregateSpec::Incremental(std::sync::Arc::new(CountAggregate)),
            )
            .build()
    }

    fn session_job() -> Job {
        JobBuilder::new("cluster-sessions")
            .parallelism(2)
            .window(
                "medians",
                WindowAssigner::Session { gap: 40 },
                AggregateSpec::FullList(std::sync::Arc::new(MedianProcess)),
            )
            .build()
    }

    fn triples(outputs: &[Tuple]) -> Vec<(Vec<u8>, Vec<u8>, i64)> {
        outputs
            .iter()
            .map(|t| (t.key.clone(), t.value.clone(), t.timestamp))
            .collect()
    }

    #[test]
    fn single_shard_cluster_matches_plain_run_job() {
        let job = count_job();
        let input = tuples(4_000, 13);
        let dir = ScratchDir::new("cluster-n1").unwrap();
        let mut opts = RunOptions::new(dir.path().join("cluster"));
        opts.workers = 1;
        opts.watermark_interval = 50;
        let cluster = run_cluster(
            &job,
            input.clone().into_iter(),
            BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
            &opts,
        )
        .unwrap();

        let mut plain_opts = RunOptions::new(dir.path().join("plain"));
        plain_opts.collect_outputs = true;
        plain_opts.watermark_interval = 50;
        let plain = crate::executor::run_job(
            &job,
            input.into_iter(),
            BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
            &plain_opts,
        )
        .unwrap();
        let mut plain_outputs = plain.outputs;
        canonical_sort(&mut plain_outputs);
        assert_eq!(triples(&cluster.outputs), triples(&plain_outputs));
        assert_eq!(cluster.input_count, plain.input_count);
    }

    #[test]
    fn sharded_output_is_identical_across_parallelisms() {
        for job in [count_job(), session_job()] {
            let input = tuples(4_000, 29);
            let mut reference: Option<Vec<(Vec<u8>, Vec<u8>, i64)>> = None;
            for n in [1usize, 2, 4] {
                let dir = ScratchDir::new("cluster-eq").unwrap();
                let mut opts = RunOptions::new(dir.path());
                opts.workers = n;
                opts.watermark_interval = 37;
                let result = run_cluster(
                    &job,
                    input.clone().into_iter(),
                    BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
                    &opts,
                )
                .unwrap_or_else(|e| panic!("{} N={n}: {e}", job.name));
                let got = triples(&result.outputs);
                assert!(!got.is_empty(), "{} N={n} produced nothing", job.name);
                match &reference {
                    None => reference = Some(got),
                    Some(want) => assert_eq!(&got, want, "{} N={n} diverged", job.name),
                }
            }
        }
    }

    #[test]
    fn rescale_mid_stream_matches_constant_parallelism() {
        for job in [count_job(), session_job()] {
            let input = tuples(4_000, 29);
            let dir = ScratchDir::new("cluster-rescale").unwrap();
            let mut opts = RunOptions::new(dir.path().join("flat"));
            opts.workers = 4;
            opts.watermark_interval = 37;
            let flat = run_cluster(
                &job,
                input.clone().into_iter(),
                BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
                &opts,
            )
            .unwrap();

            let mut ropts = RunOptions::new(dir.path().join("rescale"));
            ropts.workers = 2;
            ropts.rescale_to = Some(4);
            ropts.watermark_interval = 37;
            ropts.checkpoint_after_tuples = Some(2_000);
            ropts.checkpoint_dir = Some(dir.path().join("ckpt"));
            let rescaled = run_cluster(
                &job,
                input.into_iter(),
                BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
                &ropts,
            )
            .unwrap_or_else(|e| panic!("{} rescale: {e}", job.name));
            assert_eq!(rescaled.workers, 4);
            assert!(rescaled.rescale_pause.is_some());
            assert_eq!(
                triples(&rescaled.outputs),
                triples(&flat.outputs),
                "{} rescale diverged",
                job.name
            );
        }
    }

    #[test]
    fn multi_window_jobs_are_rejected() {
        let job = JobBuilder::new("two-windows")
            .window(
                "a",
                WindowAssigner::Fixed { size: 100 },
                AggregateSpec::Incremental(std::sync::Arc::new(CountAggregate)),
            )
            .window(
                "b",
                WindowAssigner::Fixed { size: 100 },
                AggregateSpec::Incremental(std::sync::Arc::new(CountAggregate)),
            )
            .build();
        let dir = ScratchDir::new("cluster-reject").unwrap();
        let mut opts = RunOptions::new(dir.path());
        opts.workers = 2;
        let err = run_cluster(
            &job,
            tuples(10, 2).into_iter(),
            BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
            &opts,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("exactly one stateful stage"),
            "{err}"
        );
    }
}
