//! The coordinator's source router: one pass over the source stream
//! that slices tuples across key-range shards while computing the
//! *global* watermark/barrier schedule every shard must observe.
//!
//! A shard that derived its own watermarks from the tuples it happens to
//! own would lag the global event clock (its max timestamp trails the
//! stream's), and a lagging watermark can flip a session-window merge
//! decision at the gap boundary — producing output that differs from the
//! N=1 run. The router therefore injects identical
//! [`SourceItem::Watermark`]s into every shard, derived from the full
//! stream exactly as the single-worker source thread would: every
//! `wm_interval` source tuples, at `max_ts - slack`.
//!
//! For a rescale the same pass splits the stream at the barrier offset:
//! tuples up to and including offset `B` go to the old shards followed
//! by a [`SourceItem::Barrier`] and a [`SourceItem::Halt`]; everything
//! after `B` — including the watermark due *at* `B`, which must not fire
//! windows the barrier just snapshotted — goes to the new shards with
//! the schedule (tuple count and max timestamp) carrying over.

use flowkv::KeyRangePartitioner;
use flowkv_common::types::{Tuple, MIN_TIMESTAMP};

use crate::executor::SourceItem;
use crate::job::Stage;

/// The routed item streams for one cluster run.
pub(crate) struct RoutePlan {
    /// Per-shard items at the initial parallelism.
    pub(crate) phase1: Vec<Vec<SourceItem>>,
    /// Per-shard items at the rescaled parallelism (rescale runs only).
    pub(crate) phase2: Option<Vec<Vec<SourceItem>>>,
    /// Source tuples consumed.
    pub(crate) input_count: u64,
    /// Whether the rescale barrier was actually reached.
    pub(crate) barrier_taken: bool,
}

/// Routes `source` into per-shard item streams.
///
/// `prefix` is the job's leading stateless stages, applied here so
/// routing sees the keys the stateful stage will group by. `rescale`
/// carries the target partitioner and the barrier offset (in source
/// tuples) at which the stream splits.
pub(crate) fn route(
    source: impl Iterator<Item = Tuple>,
    prefix: &[Stage],
    partitioner: &KeyRangePartitioner,
    rescale: Option<(&KeyRangePartitioner, u64)>,
    wm_interval: u64,
    slack: i64,
) -> RoutePlan {
    let wm_interval = wm_interval.max(1);
    let mut phase1: Vec<Vec<SourceItem>> = vec![Vec::new(); partitioner.shards()];
    let mut phase2: Option<Vec<Vec<SourceItem>>> =
        rescale.map(|(p, _)| vec![Vec::new(); p.shards()]);
    let barrier_at = rescale.map(|(_, b)| b);
    let mut barrier_taken = false;
    let mut count: u64 = 0;
    let mut max_ts = MIN_TIMESTAMP;
    let mut derived: Vec<Tuple> = Vec::new();
    let mut next: Vec<Tuple> = Vec::new();
    for tuple in source {
        count += 1;
        max_ts = max_ts.max(tuple.timestamp);
        derived.clear();
        derived.push(tuple);
        for stage in prefix {
            let Stage::Stateless { f, .. } = stage else {
                unreachable!("router prefix is stateless by construction");
            };
            next.clear();
            for t in &derived {
                f(t, &mut next);
            }
            std::mem::swap(&mut derived, &mut next);
        }
        // Tuple `B` itself is pre-barrier: the single-stream source emits
        // the tuple first, then the barrier.
        let post_barrier = barrier_at.is_some_and(|b| count > b);
        let (part, shards) = match (&mut phase2, post_barrier) {
            (Some(p2), true) => (rescale.unwrap().0, p2),
            _ => (partitioner, &mut phase1),
        };
        for t in derived.drain(..) {
            shards[part.shard_of(&t.key)].push(SourceItem::Tuple(t));
        }
        if barrier_at == Some(count) {
            for shard in &mut phase1 {
                shard.push(SourceItem::Barrier);
            }
            barrier_taken = true;
        }
        if count.is_multiple_of(wm_interval) {
            let wm = max_ts.saturating_sub(slack);
            // The watermark due at the barrier offset belongs to phase 2:
            // firing it in phase 1 would consume window state the barrier
            // just checkpointed, and the migrated state would fire the
            // same windows again.
            let at_or_past_barrier = barrier_at.is_some_and(|b| count >= b);
            let shards = match (&mut phase2, at_or_past_barrier) {
                (Some(p2), true) => p2,
                _ => &mut phase1,
            };
            for shard in shards.iter_mut() {
                shard.push(SourceItem::Watermark(wm));
            }
        }
    }
    if barrier_taken {
        for shard in &mut phase1 {
            shard.push(SourceItem::Halt);
        }
    }
    RoutePlan {
        phase1,
        phase2,
        input_count: count,
        barrier_taken,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: &str, ts: i64) -> Tuple {
        Tuple::new(key.into(), vec![1], ts)
    }

    #[test]
    fn every_shard_sees_the_same_watermark_schedule() {
        let part = KeyRangePartitioner::new(3);
        let source = (0..100i64).map(|i| t(&format!("k{i}"), i));
        let plan = route(source, &[], &part, None, 10, 2);
        assert_eq!(plan.input_count, 100);
        assert!(!plan.barrier_taken);
        let wms = |shard: &[SourceItem]| -> Vec<i64> {
            shard
                .iter()
                .filter_map(|i| match i {
                    SourceItem::Watermark(ts) => Some(*ts),
                    _ => None,
                })
                .collect()
        };
        let want: Vec<i64> = (1..=10).map(|i| i * 10 - 1 - 2).collect();
        for shard in &plan.phase1 {
            assert_eq!(wms(shard), want);
        }
        // Every tuple landed exactly once, on its key's shard.
        let total: usize = plan
            .phase1
            .iter()
            .map(|s| {
                s.iter()
                    .filter(|i| matches!(i, SourceItem::Tuple(_)))
                    .count()
            })
            .sum();
        assert_eq!(total, 100);
        for (idx, shard) in plan.phase1.iter().enumerate() {
            for item in shard {
                if let SourceItem::Tuple(t) = item {
                    assert_eq!(part.shard_of(&t.key), idx);
                }
            }
        }
    }

    #[test]
    fn rescale_splits_at_the_barrier_with_halt_and_carried_schedule() {
        let old = KeyRangePartitioner::new(2);
        let new = KeyRangePartitioner::new(4);
        let source = (0..100i64).map(|i| t(&format!("k{i}"), i));
        let plan = route(source, &[], &old, Some((&new, 50)), 10, 0);
        assert!(plan.barrier_taken);
        let phase2 = plan.phase2.as_ref().unwrap();
        for shard in &plan.phase1 {
            // Barrier then Halt close every old shard; no watermark in
            // between (the one due at offset 50 moved to phase 2).
            let tail: Vec<&SourceItem> = shard.iter().rev().take(2).collect();
            assert!(matches!(tail[0], SourceItem::Halt), "{tail:?}");
            assert!(matches!(tail[1], SourceItem::Barrier), "{tail:?}");
            assert!(shard
                .iter()
                .skip_while(|i| !matches!(i, SourceItem::Barrier))
                .all(|i| !matches!(i, SourceItem::Watermark(_))));
        }
        // Phase 2 opens with the watermark due at the barrier offset and
        // continues the global cadence.
        for shard in phase2 {
            assert!(
                matches!(shard.first(), Some(SourceItem::Watermark(49))),
                "{:?}",
                shard.first()
            );
        }
        let p1: usize = plan
            .phase1
            .iter()
            .flatten()
            .filter(|i| matches!(i, SourceItem::Tuple(_)))
            .count();
        let p2: usize = phase2
            .iter()
            .flatten()
            .filter(|i| matches!(i, SourceItem::Tuple(_)))
            .count();
        assert_eq!((p1, p2), (50, 50));
    }

    #[test]
    fn prefix_is_applied_before_routing() {
        let part = KeyRangePartitioner::new(4);
        let prefix = vec![Stage::Stateless {
            name: "rekey".into(),
            f: std::sync::Arc::new(|t: &Tuple, out: &mut Vec<Tuple>| {
                out.push(Tuple::new(b"fixed".to_vec(), t.value.clone(), t.timestamp));
            }),
        }];
        let source = (0..20i64).map(|i| t(&format!("k{i}"), i));
        let plan = route(source, &prefix, &part, None, 1000, 0);
        // All derived tuples share one key, so exactly one shard is
        // non-empty and it is that key's shard.
        let owner = part.shard_of(b"fixed");
        for (idx, shard) in plan.phase1.iter().enumerate() {
            let tuples = shard
                .iter()
                .filter(|i| matches!(i, SourceItem::Tuple(_)))
                .count();
            assert_eq!(tuples, if idx == owner { 20 } else { 0 });
        }
    }
}
