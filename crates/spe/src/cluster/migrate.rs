//! Key-range state migration: repartitioning a coordinated checkpoint
//! from N workers to M.
//!
//! Rescaling is recovery at a different parallelism (paper §8 applied
//! sideways): every store already persists per-key state keyed by
//! `(key, window)`, and the single-writer-per-partition discipline means
//! a partition's files can be opened, drained, and re-injected without
//! coordinating with anyone. Migration therefore needs no store-specific
//! file surgery — it restores each old `(worker, partition)` operator,
//! extracts its state as [`StateEntry`]s (AAR/AUR value lists and RMW
//! aggregates alike, via `StateBackend::extract_range`), routes every
//! entry by the *new* key-range partitioner, and replays it into the new
//! `(worker, partition)` operators through the same `append` /
//! `put_aggregate` calls that built it. Engine-side state (open
//! sessions, timers, count progress) splits along the same key routes
//! via [`WindowOperator::export_engine_shards`].

use std::path::Path;
use std::sync::Arc;

use flowkv::KeyRangePartitioner;
use flowkv_common::backend::{OperatorContext, StateBackendFactory, StateEntry};
use flowkv_common::error::{Result, StoreError};
use flowkv_common::hash::partition_of;
use flowkv_common::trace::SpanRecorder;

use crate::job::{Job, Stage, WindowSpec};
use crate::operator::WindowOperator;

/// Per-worker checkpoint root inside a cluster checkpoint directory.
pub(crate) fn cluster_ckpt_dir(root: &Path, worker: usize) -> std::path::PathBuf {
    root.join(format!("w{worker}"))
}

/// The checkpoint directory of one operator partition, matching the
/// layout `run_job` writes (`<worker root>/<stage>/p<partition>`).
fn partition_ckpt_dir(
    root: &Path,
    worker: usize,
    stage: &str,
    partition: usize,
) -> std::path::PathBuf {
    cluster_ckpt_dir(root, worker)
        .join(stage)
        .join(format!("p{partition}"))
}

/// Repartitions the coordinated checkpoint under `old_root` (written by
/// `old_n` workers) into a new coordinated checkpoint under `new_root`
/// for `new_n` workers. `scratch` receives the transient store
/// directories of the migration operators; the caller owns its cleanup.
/// When `rec` is set, each old `(worker, partition)` contributes
/// `migrate_extract` / `migrate_inject` spans and the final checkpoint
/// of the new shard set records as one `migrate_commit` span.
#[allow(clippy::too_many_arguments)]
pub(crate) fn repartition(
    worker_job: &Job,
    factory: &Arc<dyn StateBackendFactory>,
    old_root: &Path,
    old_n: usize,
    new_root: &Path,
    new_n: usize,
    scratch: &Path,
    rec: Option<&SpanRecorder>,
) -> Result<()> {
    let Some(Stage::Window(spec)) = worker_job.stages.first() else {
        return Err(StoreError::invalid_state(
            "cluster rescale requires a window stage".to_string(),
        ));
    };
    let p = worker_job.parallelism;
    let new_part = KeyRangePartitioner::new(new_n);
    let kind = spec.aggregate.kind();
    // Every key routes to one global target: worker `shard_of(key)` at
    // internal partition `partition_of(key, p)` — the same two hashes
    // the router and the executor's exchange will use on resume.
    let route = |key: &[u8]| -> usize { new_part.shard_of(key) * p + partition_of(key, p) };
    let targets_len = new_n * p;

    let mut targets: Vec<WindowOperator> = Vec::with_capacity(targets_len);
    for j in 0..new_n {
        for k in 0..p {
            targets.push(open_operator(
                spec,
                factory,
                k,
                &scratch.join(format!("new-w{j}-p{k}")),
            )?);
        }
    }

    for i in 0..old_n {
        for k in 0..p {
            let extract = rec.map(|r| {
                r.begin_with(
                    "migrate_extract",
                    "migrate",
                    None,
                    vec![("worker", i as i64), ("partition", k as i64)],
                )
            });
            let mut op = open_operator(spec, factory, k, &scratch.join(format!("old-w{i}-p{k}")))?;
            op.restore(&partition_ckpt_dir(old_root, i, &spec.name, k))?;
            let entries = op.backend_mut().extract_range(&|_| true, kind)?;
            let mut per_target: Vec<Vec<StateEntry>> =
                (0..targets_len).map(|_| Vec::new()).collect();
            for entry in entries {
                per_target[route(entry.key())].push(entry);
            }
            if let (Some(r), Some(span)) = (rec, extract) {
                let routed: i64 = per_target.iter().map(|b| b.len() as i64).sum();
                r.end_with(
                    span,
                    "migrate_extract",
                    "migrate",
                    vec![("entries", routed)],
                );
            }
            let inject = rec.map(|r| {
                r.begin_with(
                    "migrate_inject",
                    "migrate",
                    None,
                    vec![("worker", i as i64), ("partition", k as i64)],
                )
            });
            for (target, batch) in targets.iter_mut().zip(per_target) {
                if !batch.is_empty() {
                    target.backend_mut().inject_entries(batch)?;
                }
            }
            for (target, shard) in targets
                .iter_mut()
                .zip(op.export_engine_shards(targets_len, &route))
            {
                target.absorb_engine_shard(shard);
            }
            if let (Some(r), Some(span)) = (rec, inject) {
                r.end(span, "migrate_inject", "migrate");
            }
            op.backend_mut().close()?;
        }
    }

    let commit = rec.map(|r| {
        r.begin_with(
            "migrate_commit",
            "migrate",
            None,
            vec![("targets", targets_len as i64)],
        )
    });
    for (idx, mut target) in targets.into_iter().enumerate() {
        let (j, k) = (idx / p, idx % p);
        target.checkpoint(&partition_ckpt_dir(new_root, j, &spec.name, k))?;
        target.backend_mut().close()?;
    }
    if let (Some(r), Some(span)) = (rec, commit) {
        r.end(span, "migrate_commit", "migrate");
    }
    Ok(())
}

/// Builds a standalone window operator over a fresh backend rooted at
/// `data_dir`, used only to host state in transit.
fn open_operator(
    spec: &WindowSpec,
    factory: &Arc<dyn StateBackendFactory>,
    partition: usize,
    data_dir: &Path,
) -> Result<WindowOperator> {
    let ctx = OperatorContext {
        operator: spec.name.clone(),
        partition,
        semantics: spec.semantics(),
        data_dir: data_dir.to_path_buf(),
        telemetry: None,
        io: None,
    };
    Ok(WindowOperator::new(spec.clone(), factory.create(&ctx)?))
}
