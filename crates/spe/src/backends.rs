//! Backend selection: one switch to run the same job over FlowKV, the
//! LSM baseline, the hash baseline, or the in-memory store (paper §6,
//! "General Configuration").

use std::sync::Arc;

use flowkv::{FlowKvConfig, FlowKvFactory};
use flowkv_common::backend::StateBackendFactory;
use flowkv_common::vfs::Vfs;
use flowkv_hashkv::backend::HashBackendFactory;
use flowkv_hashkv::HashDbConfig;
use flowkv_lsm::backend::LsmBackendFactory;
use flowkv_lsm::DbConfig;

use crate::memstore::InMemoryFactory;

/// Options applied when materialising a [`BackendChoice`] into a
/// [`StateBackendFactory`] — the one place every cross-cutting seam
/// (fault-injecting VFS, two-tier layout, whatever comes next) plugs in,
/// so the choice enum stops growing `factory_*` constructor variants.
///
/// ```ignore
/// let factory = choice.build(FactoryOptions::new().vfs(vfs).tiered(tier_cfg));
/// ```
#[derive(Clone, Default)]
pub struct FactoryOptions {
    vfs: Option<Arc<dyn Vfs>>,
    tier: Option<flowkv::tier::TierConfig>,
}

impl FactoryOptions {
    /// No options: the plain factory for the chosen backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes every file operation of the backend — and of the cold
    /// log, when [`tiered`](Self::tiered) is also set — through `vfs`,
    /// the hook fault-injection tests use to reach all stores uniformly.
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = Some(vfs);
        self
    }

    /// Wraps the backend in the two-tier hot/cold layout.
    pub fn tiered(mut self, cfg: flowkv::tier::TierConfig) -> Self {
        self.tier = Some(cfg);
        self
    }
}

/// The four state backends of the paper's evaluation.
#[derive(Clone)]
pub enum BackendChoice {
    /// The budgeted in-memory store (fails with OOM on large state).
    InMemory {
        /// Byte budget per operator partition.
        budget_per_partition: usize,
    },
    /// FlowKV, the semantic-aware composite store.
    FlowKv(FlowKvConfig),
    /// The LSM-tree baseline (RocksDB analog).
    Lsm(DbConfig),
    /// The hash-store baseline (FASTER analog).
    HashKv(HashDbConfig),
}

impl BackendChoice {
    /// Short name used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            BackendChoice::InMemory { .. } => "inmemory",
            BackendChoice::FlowKv(_) => "flowkv",
            BackendChoice::Lsm(_) => "lsm",
            BackendChoice::HashKv(_) => "hashkv",
        }
    }

    /// Builds the factory the executor hands to window operators,
    /// applying every option in `opts`: the inner store is constructed
    /// first (with the VFS threaded through, when given), then wrapped
    /// in the two-tier layout (whose cold log shares the same VFS).
    pub fn build(&self, opts: FactoryOptions) -> Arc<dyn StateBackendFactory> {
        let inner: Arc<dyn StateBackendFactory> = match (self, &opts.vfs) {
            (
                BackendChoice::InMemory {
                    budget_per_partition,
                },
                None,
            ) => Arc::new(InMemoryFactory::new(*budget_per_partition)),
            (
                BackendChoice::InMemory {
                    budget_per_partition,
                },
                Some(vfs),
            ) => Arc::new(InMemoryFactory::new(*budget_per_partition).with_vfs(Arc::clone(vfs))),
            (BackendChoice::FlowKv(cfg), None) => Arc::new(FlowKvFactory::new(cfg.clone())),
            (BackendChoice::FlowKv(cfg), Some(vfs)) => {
                Arc::new(FlowKvFactory::new(cfg.clone()).with_vfs(Arc::clone(vfs)))
            }
            (BackendChoice::Lsm(cfg), None) => Arc::new(LsmBackendFactory::new(cfg.clone())),
            (BackendChoice::Lsm(cfg), Some(vfs)) => {
                Arc::new(LsmBackendFactory::new(cfg.clone()).with_vfs(Arc::clone(vfs)))
            }
            (BackendChoice::HashKv(cfg), None) => Arc::new(HashBackendFactory::new(cfg.clone())),
            (BackendChoice::HashKv(cfg), Some(vfs)) => {
                Arc::new(HashBackendFactory::new(cfg.clone()).with_vfs(Arc::clone(vfs)))
            }
        };
        match opts.tier {
            None => inner,
            Some(cfg) => {
                let tiered = flowkv::tier::TieredFactory::new(inner, cfg);
                match opts.vfs {
                    None => Arc::new(tiered),
                    Some(vfs) => Arc::new(tiered.with_vfs(vfs)),
                }
            }
        }
    }

    /// Builds the plain factory, with no options applied.
    #[deprecated(note = "use `build(FactoryOptions::new())`")]
    pub fn factory(&self) -> Arc<dyn StateBackendFactory> {
        self.build(FactoryOptions::new())
    }

    /// Builds a factory whose backends perform every file operation
    /// through `vfs`.
    #[deprecated(note = "use `build(FactoryOptions::new().vfs(vfs))`")]
    pub fn factory_with_vfs(&self, vfs: Arc<dyn Vfs>) -> Arc<dyn StateBackendFactory> {
        self.build(FactoryOptions::new().vfs(vfs))
    }

    /// Wraps this backend's factory in the two-tier hot/cold layout.
    #[deprecated(note = "use `build(FactoryOptions::new().tiered(cfg))`")]
    pub fn factory_tiered(&self, cfg: flowkv::tier::TierConfig) -> Arc<dyn StateBackendFactory> {
        self.build(FactoryOptions::new().tiered(cfg))
    }

    /// Tiered factory whose inner store *and* cold log both run through
    /// `vfs`, so fault injection covers the whole two-tier stack.
    #[deprecated(note = "use `build(FactoryOptions::new().tiered(cfg).vfs(vfs))`")]
    pub fn factory_tiered_with_vfs(
        &self,
        cfg: flowkv::tier::TierConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Arc<dyn StateBackendFactory> {
        self.build(FactoryOptions::new().tiered(cfg).vfs(vfs))
    }

    /// Scaled-down variants for tests: small buffers everywhere.
    pub fn all_small_for_tests() -> Vec<BackendChoice> {
        vec![
            BackendChoice::InMemory {
                budget_per_partition: 64 << 20,
            },
            BackendChoice::FlowKv(FlowKvConfig::small_for_tests()),
            BackendChoice::Lsm(DbConfig::small_for_tests()),
            BackendChoice::HashKv(HashDbConfig::small_for_tests()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::backend::{AggregateKind, OperatorContext, OperatorSemantics, WindowKind};
    use flowkv_common::scratch::ScratchDir;
    use flowkv_common::types::WindowId;

    #[test]
    fn every_choice_builds_a_working_backend() {
        let dir = ScratchDir::new("backends").unwrap();
        for choice in BackendChoice::all_small_for_tests() {
            let factory = choice.build(FactoryOptions::new());
            let ctx = OperatorContext {
                operator: format!("op-{}", choice.name()),
                partition: 0,
                semantics: OperatorSemantics::new(
                    AggregateKind::FullList,
                    WindowKind::Session { gap: 100 },
                ),
                data_dir: dir.path().to_path_buf(),
                telemetry: None,
                io: None,
            };
            let mut backend = factory.create(&ctx).unwrap();
            let w = WindowId::new(0, 100);
            backend.append(b"k", w, b"v", 1).unwrap();
            assert_eq!(
                backend.take_values(b"k", w).unwrap(),
                vec![b"v".to_vec()],
                "backend {}",
                choice.name()
            );
            backend.close().unwrap();
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = BackendChoice::all_small_for_tests()
            .iter()
            .map(|c| c.name())
            .collect();
        assert_eq!(names, vec!["inmemory", "flowkv", "lsm", "hashkv"]);
    }
}
