//! Backend selection: one switch to run the same job over FlowKV, the
//! LSM baseline, the hash baseline, or the in-memory store (paper §6,
//! "General Configuration").

use std::sync::Arc;

use flowkv::{FlowKvConfig, FlowKvFactory};
use flowkv_common::backend::StateBackendFactory;
use flowkv_common::vfs::Vfs;
use flowkv_hashkv::backend::HashBackendFactory;
use flowkv_hashkv::HashDbConfig;
use flowkv_lsm::backend::LsmBackendFactory;
use flowkv_lsm::DbConfig;

use crate::memstore::InMemoryFactory;

/// The four state backends of the paper's evaluation.
#[derive(Clone)]
pub enum BackendChoice {
    /// The budgeted in-memory store (fails with OOM on large state).
    InMemory {
        /// Byte budget per operator partition.
        budget_per_partition: usize,
    },
    /// FlowKV, the semantic-aware composite store.
    FlowKv(FlowKvConfig),
    /// The LSM-tree baseline (RocksDB analog).
    Lsm(DbConfig),
    /// The hash-store baseline (FASTER analog).
    HashKv(HashDbConfig),
}

impl BackendChoice {
    /// Short name used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            BackendChoice::InMemory { .. } => "inmemory",
            BackendChoice::FlowKv(_) => "flowkv",
            BackendChoice::Lsm(_) => "lsm",
            BackendChoice::HashKv(_) => "hashkv",
        }
    }

    /// Builds the factory the executor hands to window operators.
    pub fn factory(&self) -> Arc<dyn StateBackendFactory> {
        match self {
            BackendChoice::InMemory {
                budget_per_partition,
            } => Arc::new(InMemoryFactory::new(*budget_per_partition)),
            BackendChoice::FlowKv(cfg) => Arc::new(FlowKvFactory::new(cfg.clone())),
            BackendChoice::Lsm(cfg) => Arc::new(LsmBackendFactory::new(cfg.clone())),
            BackendChoice::HashKv(cfg) => Arc::new(HashBackendFactory::new(cfg.clone())),
        }
    }

    /// Builds a factory whose backends perform every file operation
    /// through `vfs` — the hook fault-injection tests use to reach all
    /// four stores uniformly.
    pub fn factory_with_vfs(&self, vfs: Arc<dyn Vfs>) -> Arc<dyn StateBackendFactory> {
        match self {
            BackendChoice::InMemory {
                budget_per_partition,
            } => Arc::new(InMemoryFactory::new(*budget_per_partition).with_vfs(vfs)),
            BackendChoice::FlowKv(cfg) => Arc::new(FlowKvFactory::new(cfg.clone()).with_vfs(vfs)),
            BackendChoice::Lsm(cfg) => Arc::new(LsmBackendFactory::new(cfg.clone()).with_vfs(vfs)),
            BackendChoice::HashKv(cfg) => {
                Arc::new(HashBackendFactory::new(cfg.clone()).with_vfs(vfs))
            }
        }
    }

    /// Wraps this backend's factory in the two-tier hot/cold layout.
    pub fn factory_tiered(&self, cfg: flowkv::tier::TierConfig) -> Arc<dyn StateBackendFactory> {
        Arc::new(flowkv::tier::TieredFactory::new(self.factory(), cfg))
    }

    /// Tiered factory whose inner store *and* cold log both run through
    /// `vfs`, so fault injection covers the whole two-tier stack.
    pub fn factory_tiered_with_vfs(
        &self,
        cfg: flowkv::tier::TierConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Arc<dyn StateBackendFactory> {
        Arc::new(
            flowkv::tier::TieredFactory::new(self.factory_with_vfs(Arc::clone(&vfs)), cfg)
                .with_vfs(vfs),
        )
    }

    /// Scaled-down variants for tests: small buffers everywhere.
    pub fn all_small_for_tests() -> Vec<BackendChoice> {
        vec![
            BackendChoice::InMemory {
                budget_per_partition: 64 << 20,
            },
            BackendChoice::FlowKv(FlowKvConfig::small_for_tests()),
            BackendChoice::Lsm(DbConfig::small_for_tests()),
            BackendChoice::HashKv(HashDbConfig::small_for_tests()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::backend::{AggregateKind, OperatorContext, OperatorSemantics, WindowKind};
    use flowkv_common::scratch::ScratchDir;
    use flowkv_common::types::WindowId;

    #[test]
    fn every_choice_builds_a_working_backend() {
        let dir = ScratchDir::new("backends").unwrap();
        for choice in BackendChoice::all_small_for_tests() {
            let factory = choice.factory();
            let ctx = OperatorContext {
                operator: format!("op-{}", choice.name()),
                partition: 0,
                semantics: OperatorSemantics::new(
                    AggregateKind::FullList,
                    WindowKind::Session { gap: 100 },
                ),
                data_dir: dir.path().to_path_buf(),
                telemetry: None,
                io: None,
            };
            let mut backend = factory.create(&ctx).unwrap();
            let w = WindowId::new(0, 100);
            backend.append(b"k", w, b"v", 1).unwrap();
            assert_eq!(
                backend.take_values(b"k", w).unwrap(),
                vec![b"v".to_vec()],
                "backend {}",
                choice.name()
            );
            backend.close().unwrap();
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = BackendChoice::all_small_for_tests()
            .iter()
            .map(|c| c.name())
            .collect();
        assert_eq!(names, vec!["inmemory", "flowkv", "lsm", "hashkv"]);
    }
}
