//! Interval joins over two keyed streams (paper §8, future work).
//!
//! An interval join emits `(l, r)` for same-key tuples whose timestamps
//! satisfy `r.ts ∈ [l.ts + lower, l.ts + upper]`. Each side's rows are
//! buffered in the state backend under coarse *bucket* windows keyed by
//! event time; an arriving tuple probes the other side's overlapping
//! buckets with the non-destructive [`peek_values`] read (the API
//! extension this operator motivated) and joins against every match.
//! Buckets are purged once the watermark passes the last instant at
//! which any future tuple could still probe them.
//!
//! Buffered rows are appends and reads are per-key at key-dependent
//! times, so FlowKV classifies the operator's store as
//! append + unaligned read — the same store session windows use.
//!
//! [`peek_values`]: flowkv_common::backend::StateBackend::peek_values

use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

use flowkv_common::backend::{AggregateKind, OperatorSemantics, StateBackend, WindowKind};
use flowkv_common::codec::{put_varint_i64, Decoder};
use flowkv_common::error::Result;
use flowkv_common::types::{Timestamp, Tuple, WindowId};

use crate::latency::Stamped;

/// Tag prefix marking a tuple of the left stream.
pub const LEFT: u8 = 0;
/// Tag prefix marking a tuple of the right stream.
pub const RIGHT: u8 = 1;

/// Combines one left row and one right row into an output value (or
/// filters the pair out with `None`).
pub type JoinFn = Arc<dyn Fn(&[u8], &[u8], &[u8]) -> Option<Vec<u8>> + Send + Sync>;

/// Tags `payload` as a left-stream row for an interval-join stage.
pub fn tag_left(payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(payload.len() + 1);
    v.push(LEFT);
    v.extend_from_slice(payload);
    v
}

/// Tags `payload` as a right-stream row for an interval-join stage.
pub fn tag_right(payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(payload.len() + 1);
    v.push(RIGHT);
    v.extend_from_slice(payload);
    v
}

/// Configuration of one interval-join stage.
#[derive(Clone)]
pub struct IntervalJoinSpec {
    /// Stage name, unique within the job.
    pub name: String,
    /// Relative lower bound: right rows join left row `l` when
    /// `r.ts ≥ l.ts + lower` (usually negative).
    pub lower: i64,
    /// Relative upper bound: `r.ts ≤ l.ts + upper`.
    pub upper: i64,
    /// Width of the buffering buckets in event-time milliseconds.
    pub bucket_ms: i64,
    /// The join function.
    pub join: JoinFn,
}

impl IntervalJoinSpec {
    /// The semantics the state-backend factory sees: buffered appends
    /// read per key at key-dependent times.
    pub fn semantics(&self) -> OperatorSemantics {
        OperatorSemantics::new(AggregateKind::FullList, WindowKind::Custom)
    }

    /// Event time after a bucket's end at which it can no longer be
    /// probed by any future tuple.
    fn horizon(&self) -> i64 {
        self.upper.max(-self.lower).max(0)
    }
}

/// A stored row: side tag, timestamp, payload.
fn encode_row(side: u8, ts: Timestamp, payload: &[u8]) -> Vec<u8> {
    let mut v = vec![side];
    put_varint_i64(&mut v, ts);
    v.extend_from_slice(payload);
    v
}

fn decode_row(row: &[u8]) -> Result<(u8, Timestamp, &[u8])> {
    let mut dec = Decoder::new(row);
    let side = dec.take(1, "join row side")?[0];
    let ts = dec.get_varint_i64()?;
    let rest = dec.take(dec.remaining(), "join row payload")?;
    Ok((side, ts, rest))
}

/// The interval-join operator bound to one state-backend partition.
pub struct IntervalJoinOperator {
    spec: IntervalJoinSpec,
    backend: Box<dyn StateBackend>,
    /// Buckets holding live rows, for purge deduplication.
    live_buckets: HashSet<(Vec<u8>, WindowId)>,
    /// Purge schedule: `(purge_at, key, bucket)`.
    purge_timers: BTreeSet<(Timestamp, Vec<u8>, WindowId)>,
    watermark: Timestamp,
    dropped_late: u64,
    /// Reused per-element output buffer for
    /// [`IntervalJoinOperator::on_batch`].
    batch_scratch: Vec<Tuple>,
}

impl IntervalJoinOperator {
    /// Creates an operator for `spec` over `backend`.
    pub fn new(spec: IntervalJoinSpec, backend: Box<dyn StateBackend>) -> Self {
        IntervalJoinOperator {
            spec,
            backend,
            live_buckets: HashSet::new(),
            purge_timers: BTreeSet::new(),
            watermark: Timestamp::MIN,
            dropped_late: 0,
            batch_scratch: Vec::new(),
        }
    }

    /// The bucket window covering `ts`.
    fn bucket_of(&self, ts: Timestamp) -> WindowId {
        let g = self.spec.bucket_ms.max(1);
        let start = ts.div_euclid(g) * g;
        WindowId::new(start, start + g)
    }

    /// Processes one tagged tuple, emitting joined rows into `out`.
    ///
    /// The tuple's value must start with [`LEFT`] or [`RIGHT`] (see
    /// [`tag_left`] / [`tag_right`]).
    pub fn on_element(&mut self, tuple: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        if tuple.timestamp < self.watermark {
            self.dropped_late += 1;
            return Ok(());
        }
        let (side, payload) = match tuple.value.split_first() {
            Some((&side, rest)) if side == LEFT || side == RIGHT => (side, rest),
            _ => {
                return Err(flowkv_common::StoreError::invalid_state(
                    "interval-join input lacks a side tag".to_string(),
                ))
            }
        };
        let ts = tuple.timestamp;

        // Probe the other side's overlapping buckets. For a left row the
        // matching right timestamps lie in [ts+lower, ts+upper]; for a
        // right row the matching left timestamps lie in [ts−upper,
        // ts−lower].
        let (lo, hi) = if side == LEFT {
            (ts + self.spec.lower, ts + self.spec.upper)
        } else {
            (ts - self.spec.upper, ts - self.spec.lower)
        };
        if lo <= hi {
            let g = self.spec.bucket_ms.max(1);
            let mut bucket_start = lo.div_euclid(g) * g;
            while bucket_start <= hi {
                let bucket = WindowId::new(bucket_start, bucket_start + g);
                for row in self.backend.peek_values(&tuple.key, bucket)? {
                    let (other_side, other_ts, other_payload) = decode_row(&row)?;
                    if other_side == side || other_ts < lo || other_ts > hi {
                        continue;
                    }
                    let (l, r) = if side == LEFT {
                        (payload, other_payload)
                    } else {
                        (other_payload, payload)
                    };
                    if let Some(joined) = (self.spec.join)(&tuple.key, l, r) {
                        out.push(Tuple::new(tuple.key.clone(), joined, ts.max(other_ts)));
                    }
                }
                bucket_start += g;
            }
        }

        // Buffer this row for future probes from the other side.
        let bucket = self.bucket_of(ts);
        self.backend
            .append(&tuple.key, bucket, &encode_row(side, ts, payload), ts)?;
        if self.live_buckets.insert((tuple.key.clone(), bucket)) {
            let purge_at = bucket.end.saturating_add(self.spec.horizon());
            self.purge_timers
                .insert((purge_at, tuple.key.clone(), bucket));
        }
        Ok(())
    }

    /// Processes one exchange micro-batch, emitting joined rows into
    /// `out` with each input's own origin stamp.
    ///
    /// The batch is stably sorted by key so same-key probes and appends
    /// touch the store back to back; stability preserves per-key arrival
    /// order, and tuples of different keys never join, so outputs match
    /// element-at-a-time processing (up to cross-key emission order).
    pub fn on_batch(&mut self, batch: &mut [Stamped], out: &mut Vec<Stamped>) -> Result<()> {
        if batch.len() > 1 {
            batch.sort_by(|a, b| a.tuple.key.cmp(&b.tuple.key));
        }
        let mut scratch = std::mem::take(&mut self.batch_scratch);
        for stamped in batch.iter() {
            scratch.clear();
            self.on_element(&stamped.tuple, &mut scratch)?;
            let origin = stamped.origin;
            out.extend(scratch.drain(..).map(|tuple| Stamped { tuple, origin }));
        }
        self.batch_scratch = scratch;
        Ok(())
    }

    /// Advances event time, purging buckets no future tuple can probe.
    pub fn on_watermark(&mut self, watermark: Timestamp, _out: &mut Vec<Tuple>) -> Result<()> {
        self.watermark = watermark;
        loop {
            let Some((purge_at, key, bucket)) = self.purge_timers.iter().next().cloned() else {
                return Ok(());
            };
            if purge_at > watermark {
                return Ok(());
            }
            self.purge_timers.remove(&(purge_at, key.clone(), bucket));
            self.live_buckets.remove(&(key.clone(), bucket));
            // Fetch-and-remove, discarding: the bucket is expired.
            self.backend.take_values(&key, bucket)?;
        }
    }

    /// Tuples dropped for arriving behind the watermark.
    pub fn dropped_late(&self) -> u64 {
        self.dropped_late
    }

    /// The operator's state backend (for flushing and metrics).
    pub fn backend_mut(&mut self) -> &mut dyn StateBackend {
        self.backend.as_mut()
    }

    /// Checkpoints the backend and the engine-side bucket registry.
    pub fn checkpoint(&mut self, dir: &std::path::Path) -> Result<()> {
        std::fs::create_dir_all(dir)
            .map_err(|e| flowkv_common::StoreError::io("join checkpoint dir", e))?;
        self.backend.checkpoint(dir)?;
        use flowkv_common::codec::{put_len_prefixed, put_varint_u64};
        let mut buf = Vec::new();
        put_varint_i64(&mut buf, self.watermark);
        put_varint_u64(&mut buf, self.dropped_late);
        put_varint_u64(&mut buf, self.purge_timers.len() as u64);
        for (purge_at, key, bucket) in &self.purge_timers {
            put_varint_i64(&mut buf, *purge_at);
            put_len_prefixed(&mut buf, key);
            bucket.encode_to(&mut buf);
        }
        let mut writer = flowkv_common::logfile::LogWriter::create(dir.join("JOINSTATE"))?;
        writer.append(&buf)?;
        writer.sync()
    }

    /// Restores from a checkpoint written by
    /// [`IntervalJoinOperator::checkpoint`].
    pub fn restore(&mut self, dir: &std::path::Path) -> Result<()> {
        self.backend.restore(dir)?;
        let mut reader = flowkv_common::logfile::LogReader::open(dir.join("JOINSTATE"))?;
        let (_, payload) = reader.next_record()?.ok_or_else(|| {
            flowkv_common::StoreError::invalid_state("empty join checkpoint".to_string())
        })?;
        let mut dec = Decoder::new(&payload);
        self.watermark = dec.get_varint_i64()?;
        self.dropped_late = dec.get_varint_u64()?;
        self.purge_timers.clear();
        self.live_buckets.clear();
        for _ in 0..dec.get_varint_u64()? {
            let purge_at = dec.get_varint_i64()?;
            let key = dec.get_len_prefixed()?.to_vec();
            let bucket = WindowId::decode_from(&mut dec)?;
            self.live_buckets.insert((key.clone(), bucket));
            self.purge_timers.insert((purge_at, key, bucket));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memstore::InMemoryBackend;

    fn op(lower: i64, upper: i64, bucket_ms: i64) -> IntervalJoinOperator {
        IntervalJoinOperator::new(
            IntervalJoinSpec {
                name: "join".into(),
                lower,
                upper,
                bucket_ms,
                join: Arc::new(|_k, l, r| {
                    let mut v = l.to_vec();
                    v.push(b'|');
                    v.extend_from_slice(r);
                    Some(v)
                }),
            },
            Box::new(InMemoryBackend::new(1 << 20, 8)),
        )
    }

    fn left(key: &str, payload: &str, ts: i64) -> Tuple {
        Tuple::new(key.into(), tag_left(payload.as_bytes()), ts)
    }

    fn right(key: &str, payload: &str, ts: i64) -> Tuple {
        Tuple::new(key.into(), tag_right(payload.as_bytes()), ts)
    }

    #[test]
    fn joins_within_interval_only() {
        let mut o = op(-10, 10, 16);
        let mut out = Vec::new();
        o.on_element(&left("k", "l1", 100), &mut out).unwrap();
        // In range (|Δ| ≤ 10).
        o.on_element(&right("k", "r1", 105), &mut out).unwrap();
        // Out of range.
        o.on_element(&right("k", "r2", 150), &mut out).unwrap();
        // In range, arriving before its left partner.
        o.on_element(&right("k", "r3", 92), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, b"l1|r1".to_vec());
        assert_eq!(out[1].value, b"l1|r3".to_vec());
        // Output timestamp is the max of the pair.
        assert_eq!(out[0].timestamp, 105);
        assert_eq!(out[1].timestamp, 100);
    }

    #[test]
    fn keys_do_not_join_across() {
        let mut o = op(-10, 10, 16);
        let mut out = Vec::new();
        o.on_element(&left("a", "l", 100), &mut out).unwrap();
        o.on_element(&right("b", "r", 100), &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn each_pair_emits_exactly_once() {
        let mut o = op(0, 100, 32);
        let mut out = Vec::new();
        for i in 0..5 {
            o.on_element(&left("k", &format!("l{i}"), i * 10), &mut out)
                .unwrap();
        }
        o.on_element(&right("k", "r", 60), &mut out).unwrap();
        // Every left with ts ∈ [r.ts−100, r.ts] = all five.
        assert_eq!(out.len(), 5);
        let mut seen: Vec<Vec<u8>> = out.iter().map(|t| t.value.clone()).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 5, "duplicate join outputs");
    }

    #[test]
    fn purge_stops_future_joins_and_bounds_state() {
        let mut o = op(-10, 10, 16);
        let mut out = Vec::new();
        o.on_element(&left("k", "old", 100), &mut out).unwrap();
        // Watermark far past the purge horizon of bucket(100).
        o.on_watermark(1_000, &mut out).unwrap();
        assert!(o.live_buckets.is_empty());
        assert!(o.purge_timers.is_empty());
        // A (non-late) right at 1005 would have joined old only if old
        // were still buffered and in range — it is neither.
        o.on_element(&right("k", "new", 1_005), &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn asymmetric_bounds() {
        // Right must be 0..=50 ms *after* left.
        let mut o = op(0, 50, 64);
        let mut out = Vec::new();
        o.on_element(&left("k", "l", 100), &mut out).unwrap();
        o.on_element(&right("k", "early", 95), &mut out).unwrap();
        o.on_element(&right("k", "ok", 140), &mut out).unwrap();
        o.on_element(&right("k", "late", 151), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, b"l|ok".to_vec());
    }

    #[test]
    fn checkpoint_restore_keeps_buffered_rows() {
        use flowkv_common::scratch::ScratchDir;
        let ckpt = ScratchDir::new("join-ckpt").unwrap();
        let mut a = op(-10, 10, 16);
        let mut out = Vec::new();
        a.on_element(&left("k", "l", 100), &mut out).unwrap();
        a.checkpoint(ckpt.path()).unwrap();

        let mut b = op(-10, 10, 16);
        b.restore(ckpt.path()).unwrap();
        let mut out = Vec::new();
        b.on_element(&right("k", "r", 105), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, b"l|r".to_vec());
    }
}
