//! Deterministic restart backoff with seed-derived jitter.
//!
//! Plain exponential backoff makes two supervised runs with the same
//! fault seed diverge in wall-clock schedule; wall-clock-random jitter
//! would make them diverge in *behavior*. Instead the jitter factor is
//! drawn from the SplitMix64 stream seeded by `FLOWKV_FAULT_SEED` — the
//! same environment knob the crash matrix uses — so a failing
//! rescale/crash test replays its exact backoff schedule from the one
//! printed seed.

use std::time::Duration;

use flowkv_common::hash::splitmix64;

/// Default seed when `FLOWKV_FAULT_SEED` is unset; matches the crash
/// matrix's default so one seed reproduces a whole failing run.
pub const DEFAULT_FAULT_SEED: u64 = 0xF10C;

/// Reads `FLOWKV_FAULT_SEED` from the environment, falling back to
/// [`DEFAULT_FAULT_SEED`].
pub fn fault_seed() -> u64 {
    std::env::var("FLOWKV_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_FAULT_SEED)
}

/// The delay before restart number `attempt` (1-based): exponential in
/// the attempt with a deterministic jitter factor in `[0.5, 1.0)`
/// derived from `seed` and `attempt` alone.
pub fn jittered_backoff(base: Duration, attempt: u32, seed: u64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
    let mixed = splitmix64(seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    // Top 53 bits → a uniform fraction in [0, 1), mapped to [0.5, 1.0).
    let frac = (mixed >> 11) as f64 / (1u64 << 53) as f64;
    exp.mul_f64(0.5 + frac / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let base = Duration::from_millis(50);
        for attempt in 1..=6 {
            assert_eq!(
                jittered_backoff(base, attempt, 0xF10C),
                jittered_backoff(base, attempt, 0xF10C)
            );
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let base = Duration::from_millis(50);
        let a: Vec<Duration> = (1..=6).map(|n| jittered_backoff(base, n, 1)).collect();
        let b: Vec<Duration> = (1..=6).map(|n| jittered_backoff(base, n, 2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn jitter_stays_inside_the_exponential_envelope() {
        let base = Duration::from_millis(10);
        for attempt in 1..=10u32 {
            let exp = base * (1 << (attempt - 1).min(16));
            for seed in 0..50u64 {
                let d = jittered_backoff(base, attempt, seed);
                assert!(d >= exp / 2, "attempt {attempt} seed {seed}: {d:?} < half");
                assert!(d < exp, "attempt {attempt} seed {seed}: {d:?} >= full");
            }
        }
    }

    #[test]
    fn attempt_shift_saturates() {
        // Very large attempt numbers must not overflow the shift.
        let d = jittered_backoff(Duration::from_millis(1), 100, 7);
        assert!(d <= Duration::from_millis(1 << 16));
    }
}
