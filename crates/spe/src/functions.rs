//! Aggregate and window-function traits (paper §2.1).
//!
//! Everything crosses the store boundary as bytes, so accumulators are
//! serialized too — exactly the situation of a JVM engine persisting
//! state into a native KV store. The two traits mirror Flink's
//! signatures, which is what FlowKV classifies on:
//!
//! - [`AggregateFunction`] (associative + commutative, incremental) →
//!   read-modify-write pattern;
//! - [`ProcessWindowFunction`] (needs the whole tuple list) → append
//!   pattern.

use std::sync::Arc;

use flowkv_common::types::WindowId;

/// An incremental aggregate over serialized accumulators.
///
/// Implementations must be associative and commutative — the property
/// that lets the engine fold tuples in as they arrive and merge session
/// accumulators (paper §2.1, "Read-Modify-Write").
pub trait AggregateFunction: Send + Sync {
    /// A fresh accumulator.
    fn create(&self) -> Vec<u8>;
    /// Folds one value into the accumulator.
    fn add(&self, acc: &[u8], value: &[u8]) -> Vec<u8>;
    /// Merges two accumulators (required for merging session windows).
    fn merge(&self, a: &[u8], b: &[u8]) -> Vec<u8>;
    /// Extracts the final result from the accumulator.
    fn result(&self, acc: &[u8]) -> Vec<u8>;
}

/// A full-list window function: sees every tuple of the window at once.
pub trait ProcessWindowFunction: Send + Sync {
    /// Produces output values for one key's window from its full list of
    /// values.
    fn process(&self, key: &[u8], window: WindowId, values: &[Vec<u8>]) -> Vec<Vec<u8>>;
}

/// Counts values; the accumulator is a little-endian `u64`.
pub struct CountAggregate;

impl AggregateFunction for CountAggregate {
    fn create(&self) -> Vec<u8> {
        0u64.to_le_bytes().to_vec()
    }

    fn add(&self, acc: &[u8], _value: &[u8]) -> Vec<u8> {
        (decode_u64(acc) + 1).to_le_bytes().to_vec()
    }

    fn merge(&self, a: &[u8], b: &[u8]) -> Vec<u8> {
        (decode_u64(a) + decode_u64(b)).to_le_bytes().to_vec()
    }

    fn result(&self, acc: &[u8]) -> Vec<u8> {
        acc.to_vec()
    }
}

/// Sums little-endian `u64` values.
pub struct SumAggregate;

impl AggregateFunction for SumAggregate {
    fn create(&self) -> Vec<u8> {
        0u64.to_le_bytes().to_vec()
    }

    fn add(&self, acc: &[u8], value: &[u8]) -> Vec<u8> {
        (decode_u64(acc) + decode_u64(value)).to_le_bytes().to_vec()
    }

    fn merge(&self, a: &[u8], b: &[u8]) -> Vec<u8> {
        (decode_u64(a) + decode_u64(b)).to_le_bytes().to_vec()
    }

    fn result(&self, acc: &[u8]) -> Vec<u8> {
        acc.to_vec()
    }
}

/// Tracks the maximum of little-endian `u64` values.
pub struct MaxAggregate;

impl AggregateFunction for MaxAggregate {
    fn create(&self) -> Vec<u8> {
        0u64.to_le_bytes().to_vec()
    }

    fn add(&self, acc: &[u8], value: &[u8]) -> Vec<u8> {
        decode_u64(acc)
            .max(decode_u64(value))
            .to_le_bytes()
            .to_vec()
    }

    fn merge(&self, a: &[u8], b: &[u8]) -> Vec<u8> {
        decode_u64(a).max(decode_u64(b)).to_le_bytes().to_vec()
    }

    fn result(&self, acc: &[u8]) -> Vec<u8> {
        acc.to_vec()
    }
}

/// A closure combining two byte slices into a new accumulator.
pub type CombineFn = Arc<dyn Fn(&[u8], &[u8]) -> Vec<u8> + Send + Sync>;
/// A closure finishing an accumulator into a result value.
pub type FinishFn = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;
/// A closure producing window outputs from a key's full value list.
pub type ProcessFn = Arc<dyn Fn(&[u8], WindowId, &[Vec<u8>]) -> Vec<Vec<u8>> + Send + Sync>;

/// Adapts three closures into an [`AggregateFunction`].
pub struct FnAggregate {
    create: Arc<dyn Fn() -> Vec<u8> + Send + Sync>,
    add: CombineFn,
    merge: CombineFn,
    result: FinishFn,
}

impl FnAggregate {
    /// Builds an aggregate from closures; `result` defaults to identity.
    pub fn new(
        create: impl Fn() -> Vec<u8> + Send + Sync + 'static,
        add: impl Fn(&[u8], &[u8]) -> Vec<u8> + Send + Sync + 'static,
        merge: impl Fn(&[u8], &[u8]) -> Vec<u8> + Send + Sync + 'static,
    ) -> Self {
        FnAggregate {
            create: Arc::new(create),
            add: Arc::new(add),
            merge: Arc::new(merge),
            result: Arc::new(|acc| acc.to_vec()),
        }
    }

    /// Overrides the result extraction.
    pub fn with_result(
        mut self,
        result: impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
    ) -> Self {
        self.result = Arc::new(result);
        self
    }
}

impl AggregateFunction for FnAggregate {
    fn create(&self) -> Vec<u8> {
        (self.create)()
    }

    fn add(&self, acc: &[u8], value: &[u8]) -> Vec<u8> {
        (self.add)(acc, value)
    }

    fn merge(&self, a: &[u8], b: &[u8]) -> Vec<u8> {
        (self.merge)(a, b)
    }

    fn result(&self, acc: &[u8]) -> Vec<u8> {
        (self.result)(acc)
    }
}

/// Adapts a closure into a [`ProcessWindowFunction`].
pub struct FnProcess {
    f: ProcessFn,
}

impl FnProcess {
    /// Wraps `f`.
    pub fn new(
        f: impl Fn(&[u8], WindowId, &[Vec<u8>]) -> Vec<Vec<u8>> + Send + Sync + 'static,
    ) -> Self {
        FnProcess { f: Arc::new(f) }
    }
}

impl ProcessWindowFunction for FnProcess {
    fn process(&self, key: &[u8], window: WindowId, values: &[Vec<u8>]) -> Vec<Vec<u8>> {
        (self.f)(key, window, values)
    }
}

/// Computes the median of little-endian `u64` values — the paper's
/// non-associative aggregate (Q11-Median), forcing the append pattern.
pub struct MedianProcess;

impl ProcessWindowFunction for MedianProcess {
    fn process(&self, _key: &[u8], _window: WindowId, values: &[Vec<u8>]) -> Vec<Vec<u8>> {
        if values.is_empty() {
            return Vec::new();
        }
        let mut nums: Vec<u64> = values.iter().map(|v| decode_u64(v)).collect();
        nums.sort_unstable();
        let mid = nums.len() / 2;
        let median = if nums.len() % 2 == 1 {
            nums[mid]
        } else {
            // Midpoint of the two central values, as in NEXMark's median.
            nums[mid - 1].midpoint(nums[mid])
        };
        vec![median.to_le_bytes().to_vec()]
    }
}

/// Decodes a little-endian `u64`, tolerating short buffers.
pub fn decode_u64(bytes: &[u8]) -> u64 {
    let mut arr = [0u8; 8];
    let n = bytes.len().min(8);
    arr[..n].copy_from_slice(&bytes[..n]);
    u64::from_le_bytes(arr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(n: u64) -> Vec<u8> {
        n.to_le_bytes().to_vec()
    }

    #[test]
    fn count_aggregate() {
        let agg = CountAggregate;
        let mut acc = agg.create();
        for _ in 0..5 {
            acc = agg.add(&acc, b"x");
        }
        assert_eq!(agg.result(&acc), le(5));
        assert_eq!(agg.merge(&le(3), &le(4)), le(7));
    }

    #[test]
    fn sum_and_max_aggregates() {
        let sum = SumAggregate;
        let mut acc = sum.create();
        acc = sum.add(&acc, &le(10));
        acc = sum.add(&acc, &le(32));
        assert_eq!(sum.result(&acc), le(42));

        let max = MaxAggregate;
        let mut acc = max.create();
        acc = max.add(&acc, &le(10));
        acc = max.add(&acc, &le(7));
        assert_eq!(max.result(&acc), le(10));
        assert_eq!(max.merge(&le(3), &le(9)), le(9));
    }

    #[test]
    fn median_odd_and_even() {
        let m = MedianProcess;
        let w = WindowId::new(0, 10);
        let vals: Vec<Vec<u8>> = [5u64, 1, 9].iter().map(|&n| le(n)).collect();
        assert_eq!(m.process(b"k", w, &vals), vec![le(5)]);
        let vals: Vec<Vec<u8>> = [4u64, 8, 2, 10].iter().map(|&n| le(n)).collect();
        assert_eq!(m.process(b"k", w, &vals), vec![le(6)]);
        assert!(m.process(b"k", w, &[]).is_empty());
    }

    #[test]
    fn fn_adapters() {
        let agg = FnAggregate::new(
            || le(0),
            |a, v| le(decode_u64(a) + decode_u64(v) * 2),
            |a, b| le(decode_u64(a) + decode_u64(b)),
        )
        .with_result(|acc| le(decode_u64(acc) + 1));
        let acc = agg.add(&agg.create(), &le(5));
        assert_eq!(agg.result(&acc), le(11));

        let p = FnProcess::new(|_k, _w, vals| vec![le(vals.len() as u64)]);
        assert_eq!(
            p.process(b"k", WindowId::new(0, 1), &[le(1), le(2)]),
            vec![le(2)]
        );
    }

    #[test]
    fn decode_u64_tolerates_short_input() {
        assert_eq!(decode_u64(&[1]), 1);
        assert_eq!(decode_u64(&[]), 0);
    }
}
