//! The budgeted in-memory state backend.
//!
//! Flink's default state backend keeps windows on the JVM heap; it is
//! fast until state outgrows memory, at which point jobs die (paper
//! Figure 8's crossed bars; §6.1 also attributes in-memory slowdowns to
//! GC pressure at large heaps). This store reproduces the failure mode
//! honestly: a hard byte budget, checked on every write, producing
//! [`StoreError::OutOfMemory`] when exceeded.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

use flowkv_common::backend::{
    AggregateKind, KeyFilter, OperatorContext, StateBackend, StateBackendFactory, StateEntry,
    WindowChunk,
};
use flowkv_common::codec::{put_len_prefixed, put_varint_u64, Decoder};
use flowkv_common::error::{Result, StoreError};
use flowkv_common::logfile::{LogReader, LogWriter};
use flowkv_common::metrics::{OpCategory, StoreMetrics};
use flowkv_common::types::{Timestamp, WindowId};
use flowkv_common::vfs::{StdVfs, Vfs};

type StateKey = (Vec<u8>, WindowId);

/// An in-memory window-state backend with a hard byte budget.
pub struct InMemoryBackend {
    budget: usize,
    used: usize,
    lists: HashMap<StateKey, Vec<Vec<u8>>>,
    aggregates: HashMap<StateKey, Vec<u8>>,
    window_keys: HashMap<WindowId, HashSet<Vec<u8>>>,
    draining: HashMap<WindowId, Vec<Vec<u8>>>,
    chunk_entries: usize,
    metrics: Arc<StoreMetrics>,
    vfs: Arc<dyn Vfs>,
}

impl InMemoryBackend {
    /// Creates a backend bounded at `budget` bytes of state.
    pub fn new(budget: usize, chunk_entries: usize) -> Self {
        Self::new_with_vfs(budget, chunk_entries, StdVfs::shared())
    }

    /// Creates a backend whose checkpoint files go through `vfs`.
    pub fn new_with_vfs(budget: usize, chunk_entries: usize, vfs: Arc<dyn Vfs>) -> Self {
        InMemoryBackend {
            budget,
            used: 0,
            lists: HashMap::new(),
            aggregates: HashMap::new(),
            window_keys: HashMap::new(),
            draining: HashMap::new(),
            chunk_entries: chunk_entries.max(1),
            metrics: StoreMetrics::new_shared(),
            vfs,
        }
    }

    fn charge(&mut self, bytes: usize) -> Result<()> {
        self.used += bytes;
        if self.used > self.budget {
            return Err(StoreError::OutOfMemory {
                requested: self.used,
                budget: self.budget,
            });
        }
        Ok(())
    }

    fn release(&mut self, bytes: usize) {
        self.used = self.used.saturating_sub(bytes);
    }

    fn list_cost(key: &StateKey, values: &[Vec<u8>]) -> usize {
        key.0.len() + 48 + values.iter().map(|v| v.len() + 24).sum::<usize>()
    }
}

impl StateBackend for InMemoryBackend {
    fn append(&mut self, key: &[u8], window: WindowId, value: &[u8], _ts: Timestamp) -> Result<()> {
        let _t = self.metrics.timer(OpCategory::Write);
        let state_key = (key.to_vec(), window);
        if !self.lists.contains_key(&state_key) {
            // First value of the pair: account the key overhead too.
            self.charge(key.len() + 48)?;
        }
        self.charge(value.len() + 24)?;
        self.lists
            .entry(state_key)
            .or_default()
            .push(value.to_vec());
        self.window_keys
            .entry(window)
            .or_default()
            .insert(key.to_vec());
        self.metrics.add_records_written(1);
        Ok(())
    }

    fn get_window_chunk(&mut self, window: WindowId) -> Result<Option<WindowChunk>> {
        let _t = self.metrics.timer(OpCategory::Read);
        let pending = match self.draining.get_mut(&window) {
            Some(p) => p,
            None => {
                let Some(keys) = self.window_keys.remove(&window) else {
                    return Ok(None);
                };
                self.draining
                    .entry(window)
                    .or_insert_with(|| keys.into_iter().collect())
            }
        };
        if pending.is_empty() {
            self.draining.remove(&window);
            return Ok(None);
        }
        let take = pending.len().min(self.chunk_entries);
        let batch: Vec<Vec<u8>> = pending.drain(..take).collect();
        if pending.is_empty() {
            self.draining.remove(&window);
        }
        let mut chunk: WindowChunk = Vec::with_capacity(batch.len());
        for key in batch {
            let state_key = (key.clone(), window);
            let values = self.lists.remove(&state_key).unwrap_or_default();
            self.release(Self::list_cost(&state_key, &values));
            self.metrics.add_records_read(values.len() as u64);
            chunk.push((key, values));
        }
        if chunk.is_empty() {
            Ok(None)
        } else {
            Ok(Some(chunk))
        }
    }

    fn take_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        let _t = self.metrics.timer(OpCategory::Read);
        let state_key = (key.to_vec(), window);
        let values = self.lists.remove(&state_key).unwrap_or_default();
        self.release(Self::list_cost(&state_key, &values));
        if let Some(keys) = self.window_keys.get_mut(&window) {
            keys.remove(key);
            if keys.is_empty() {
                self.window_keys.remove(&window);
            }
        }
        self.metrics.add_records_read(values.len() as u64);
        Ok(values)
    }

    fn peek_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        let _t = self.metrics.timer(OpCategory::Read);
        let state_key = (key.to_vec(), window);
        let values = self.lists.get(&state_key).cloned().unwrap_or_default();
        self.metrics.add_records_read(values.len() as u64);
        Ok(values)
    }

    fn take_aggregate(&mut self, key: &[u8], window: WindowId) -> Result<Option<Vec<u8>>> {
        let _t = self.metrics.timer(OpCategory::Read);
        let state_key = (key.to_vec(), window);
        match self.aggregates.remove(&state_key) {
            Some(v) => {
                self.release(key.len() + v.len() + 64);
                self.metrics.add_records_read(1);
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    fn put_aggregate(&mut self, key: &[u8], window: WindowId, aggregate: &[u8]) -> Result<()> {
        let _t = self.metrics.timer(OpCategory::Write);
        let state_key = (key.to_vec(), window);
        self.charge(key.len() + aggregate.len() + 64)?;
        if let Some(old) = self.aggregates.insert(state_key, aggregate.to_vec()) {
            self.release(key.len() + old.len() + 64);
        }
        self.metrics.add_records_written(1);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn extract_range(
        &mut self,
        in_range: KeyFilter<'_>,
        _kind: AggregateKind,
    ) -> Result<Vec<StateEntry>> {
        let mut entries = Vec::new();
        for ((key, window), values) in &self.lists {
            if in_range(key) {
                entries.push(StateEntry::Values {
                    key: key.clone(),
                    window: *window,
                    values: values.clone(),
                });
            }
        }
        for ((key, window), value) in &self.aggregates {
            if in_range(key) {
                entries.push(StateEntry::Aggregate {
                    key: key.clone(),
                    window: *window,
                    value: value.clone(),
                });
            }
        }
        Ok(entries)
    }

    fn metrics(&self) -> Arc<StoreMetrics> {
        Arc::clone(&self.metrics)
    }

    fn memory_bytes(&self) -> usize {
        self.used
    }

    fn checkpoint(&mut self, dir: &Path) -> Result<()> {
        self.vfs
            .create_dir_all(dir)
            .map_err(|e| StoreError::io_at("mem checkpoint dir", dir, e))?;
        let mut w = LogWriter::create_in(&self.vfs, dir.join("mem.ckpt"))?;
        for ((key, window), values) in &self.lists {
            let mut buf = vec![0u8];
            put_len_prefixed(&mut buf, key);
            window.encode_to(&mut buf);
            put_varint_u64(&mut buf, values.len() as u64);
            for v in values {
                put_len_prefixed(&mut buf, v);
            }
            w.append(&buf)?;
        }
        for ((key, window), agg) in &self.aggregates {
            let mut buf = vec![1u8];
            put_len_prefixed(&mut buf, key);
            window.encode_to(&mut buf);
            put_len_prefixed(&mut buf, agg);
            w.append(&buf)?;
        }
        w.sync()
    }

    fn restore(&mut self, dir: &Path) -> Result<()> {
        self.lists.clear();
        self.aggregates.clear();
        self.window_keys.clear();
        self.draining.clear();
        self.used = 0;
        let mut r = LogReader::open_in(&self.vfs, dir.join("mem.ckpt"))?;
        while let Some((_, payload)) = r.next_record()? {
            let mut dec = Decoder::new(&payload);
            let tag = dec.take(1, "mem tag")?[0];
            let key = dec.get_len_prefixed()?.to_vec();
            let window = WindowId::decode_from(&mut dec)?;
            match tag {
                0 => {
                    let n = dec.get_varint_u64()? as usize;
                    let mut values = Vec::with_capacity(n);
                    for _ in 0..n {
                        values.push(dec.get_len_prefixed()?.to_vec());
                    }
                    for v in &values {
                        self.charge(v.len() + 24)?;
                    }
                    self.charge(key.len() + 48)?;
                    self.window_keys
                        .entry(window)
                        .or_default()
                        .insert(key.clone());
                    self.lists.insert((key, window), values);
                }
                1 => {
                    let agg = dec.get_len_prefixed()?.to_vec();
                    self.charge(key.len() + agg.len() + 64)?;
                    self.aggregates.insert((key, window), agg);
                }
                other => {
                    return Err(StoreError::invalid_state(format!(
                        "unknown mem checkpoint tag {other}"
                    )))
                }
            }
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        self.lists.clear();
        self.aggregates.clear();
        self.window_keys.clear();
        self.draining.clear();
        self.used = 0;
        Ok(())
    }
}

/// Factory producing [`InMemoryBackend`] instances.
pub struct InMemoryFactory {
    budget_per_partition: usize,
    chunk_entries: usize,
    vfs: Arc<dyn Vfs>,
}

impl InMemoryFactory {
    /// Creates a factory with a per-partition byte budget.
    pub fn new(budget_per_partition: usize) -> Self {
        InMemoryFactory {
            budget_per_partition,
            chunk_entries: 1024,
            vfs: StdVfs::shared(),
        }
    }

    /// Routes checkpoint files of produced backends through `vfs`.
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }
}

impl StateBackendFactory for InMemoryFactory {
    fn create(&self, _ctx: &OperatorContext) -> Result<Box<dyn StateBackend>> {
        Ok(Box::new(InMemoryBackend::new_with_vfs(
            self.budget_per_partition,
            self.chunk_entries,
            Arc::clone(&self.vfs),
        )))
    }

    fn name(&self) -> &'static str {
        "inmemory"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::scratch::ScratchDir;

    fn w(start: i64, end: i64) -> WindowId {
        WindowId::new(start, end)
    }

    #[test]
    fn append_take_roundtrip() {
        let mut b = InMemoryBackend::new(1 << 20, 4);
        b.append(b"k", w(0, 10), b"v1", 1).unwrap();
        b.append(b"k", w(0, 10), b"v2", 2).unwrap();
        assert_eq!(
            b.take_values(b"k", w(0, 10)).unwrap(),
            vec![b"v1".to_vec(), b"v2".to_vec()]
        );
        assert!(b.take_values(b"k", w(0, 10)).unwrap().is_empty());
        assert_eq!(b.memory_bytes(), 0);
    }

    #[test]
    fn window_chunks_drain() {
        let mut b = InMemoryBackend::new(1 << 20, 3);
        for i in 0..10u32 {
            b.append(format!("k{i}").as_bytes(), w(0, 10), b"v", 0)
                .unwrap();
        }
        let mut total = 0;
        while let Some(chunk) = b.get_window_chunk(w(0, 10)).unwrap() {
            assert!(chunk.len() <= 3);
            total += chunk.len();
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn aggregates_roundtrip() {
        let mut b = InMemoryBackend::new(1 << 20, 4);
        b.put_aggregate(b"k", w(0, 10), b"3").unwrap();
        b.put_aggregate(b"k", w(0, 10), b"7").unwrap();
        assert_eq!(
            b.take_aggregate(b"k", w(0, 10)).unwrap(),
            Some(b"7".to_vec())
        );
        assert_eq!(b.take_aggregate(b"k", w(0, 10)).unwrap(), None);
    }

    #[test]
    fn budget_enforced_like_oom() {
        let mut b = InMemoryBackend::new(256, 4);
        let mut failed = false;
        for i in 0..100u32 {
            if b.append(b"k", w(0, 10), &[0u8; 16], i as i64).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "budget never enforced");
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let dir = ScratchDir::new("mem-ckpt").unwrap();
        let mut b = InMemoryBackend::new(1 << 20, 4);
        b.append(b"k", w(0, 10), b"v", 1).unwrap();
        b.put_aggregate(b"a", w(0, 10), b"9").unwrap();
        b.checkpoint(dir.path()).unwrap();
        b.append(b"k", w(0, 10), b"extra", 2).unwrap();
        b.restore(dir.path()).unwrap();
        assert_eq!(b.take_values(b"k", w(0, 10)).unwrap(), vec![b"v".to_vec()]);
        assert_eq!(
            b.take_aggregate(b"a", w(0, 10)).unwrap(),
            Some(b"9".to_vec())
        );
    }
}
