//! A mini stream-processing engine: the Flink analog.
//!
//! The FlowKV paper runs its evaluation on Apache Flink; this crate
//! reproduces the parts of such an engine that the store interacts with:
//!
//! - timestamped keyed tuples flowing through a pipeline of stages
//!   ([`job`]), executed by key-partitioned single-threaded workers with
//!   watermark-driven event time ([`executor`]) — the deployment model
//!   FlowKV's single-writer stores assume (paper §2.1);
//! - window operators ([`operator`]) covering fixed, sliding, session,
//!   global, and count windows ([`window`]), with both incremental
//!   (`AggregateFunction`) and full-list (`ProcessWindowFunction`)
//!   aggregation ([`functions`]) — the two signatures FlowKV classifies
//!   at launch (paper §3.1);
//! - pluggable state backends selected per run ([`backends`]): FlowKV,
//!   the LSM (RocksDB-analog) baseline, the hash (FASTER-analog)
//!   baseline, and a budgeted in-memory store ([`memstore`]) that fails
//!   with out-of-memory like the paper's in-memory baseline;
//! - latency sampling at the sink ([`latency`]) for the paper's
//!   tail-latency experiments (§6.2);
//! - supervised recovery ([`supervisor`]): bounded restart-with-backoff
//!   that restores operators from the last completed checkpoint and
//!   rewinds the replayable source to its recorded offset (§8).

pub mod backends;
pub mod backoff;
pub mod cluster;
pub mod executor;
pub mod functions;
pub mod job;
pub mod join;
pub mod latency;
pub mod memstore;
pub mod operator;
pub mod source;
pub mod supervisor;
pub mod window;

pub use backends::{BackendChoice, FactoryOptions};
pub use cluster::{run_cluster, ClusterResult};
pub use executor::{
    run_job, run_job_items, JobError, JobResult, RunOptions, RunOptionsBuilder, SourceItem,
};
pub use job::{AggregateSpec, Job, JobBuilder, Stage};
pub use latency::Stamped;
pub use supervisor::{run_supervised, SupervisedResult};
pub use window::WindowAssigner;
