//! Replayable sources: the Kafka analog.
//!
//! The paper's fault-tolerance model (§8) assumes a *rewindable* data
//! source: on failure, the engine restores a checkpoint and replays
//! tuples from the checkpoint's offset. [`TupleLog`] persists a tuple
//! stream into a checksummed log file and [`LogSource`] replays it from
//! any offset — exactly the contract Kafka provides the paper's
//! deployment. [`PacedSource`] additionally caps the delivery rate, the
//! broker's role in the paper's fixed-rate latency runs (§6.2).

use std::path::Path;
use std::time::{Duration, Instant};

use flowkv_common::codec::Decoder;
use flowkv_common::error::Result;
use flowkv_common::logfile::{LogReader, LogWriter};
use flowkv_common::types::Tuple;

/// Writer persisting a tuple stream to a replayable log file.
pub struct TupleLog;

impl TupleLog {
    /// Writes every tuple of `stream` to `path`, returning the count.
    pub fn record(path: impl AsRef<Path>, stream: impl Iterator<Item = Tuple>) -> Result<u64> {
        let mut writer = LogWriter::create(path)?;
        let mut buf = Vec::new();
        let mut count = 0u64;
        for tuple in stream {
            buf.clear();
            tuple.encode_to(&mut buf);
            writer.append(&buf)?;
            count += 1;
        }
        writer.sync()?;
        Ok(count)
    }
}

/// Replays a [`TupleLog`] file as an iterator of tuples.
///
/// # Examples
///
/// ```
/// use flowkv_common::scratch::ScratchDir;
/// use flowkv_common::types::Tuple;
/// use flowkv_spe::source::{LogSource, TupleLog};
///
/// let dir = ScratchDir::new("source-doc").unwrap();
/// let path = dir.path().join("stream.log");
/// let tuples = vec![Tuple::new(b"k".to_vec(), b"v".to_vec(), 7)];
/// TupleLog::record(&path, tuples.clone().into_iter()).unwrap();
/// let replayed: Vec<Tuple> = LogSource::open(&path).unwrap().collect();
/// assert_eq!(replayed, tuples);
/// ```
pub struct LogSource {
    reader: LogReader,
    /// Tuples consumed so far (the replay offset).
    position: u64,
}

impl LogSource {
    /// Opens `path` for replay from the beginning.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Ok(LogSource {
            reader: LogReader::open(path)?,
            position: 0,
        })
    }

    /// Opens `path` and skips the first `offset` tuples — the resume
    /// path after restoring a checkpoint taken at that offset.
    pub fn open_at(path: impl AsRef<Path>, offset: u64) -> Result<Self> {
        let mut source = Self::open(path)?;
        for _ in 0..offset {
            if source.next().is_none() {
                break;
            }
        }
        Ok(source)
    }

    /// Number of tuples consumed so far.
    pub fn position(&self) -> u64 {
        self.position
    }
}

impl Iterator for LogSource {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        // A torn or corrupt tail ends the stream at the last intact
        // tuple, matching the log-file recovery contract.
        let (_, payload) = self.reader.next_record().ok().flatten()?;
        let tuple = Tuple::decode_from(&mut Decoder::new(&payload)).ok()?;
        self.position += 1;
        Some(tuple)
    }
}

/// Caps any tuple iterator at a fixed delivery rate (tuples/second of
/// wall time) — the fixed-rate broker feed of the paper's latency runs.
///
/// Pacing is checked once per `burst` tuples rather than per tuple:
/// reading the clock (and possibly sleeping) for every tuple costs a
/// syscall-scale pause on the hot path, the same per-element overhead
/// the micro-batched exchange removes from the channels. A burst adds
/// at most `burst / rate` of delivery jitter (1.6 ms at the default
/// burst of 16 and 10 k tuples/s) while the average rate is exact.
pub struct PacedSource<I> {
    inner: I,
    rate_per_sec: u64,
    burst: u64,
    delivered: u64,
    started: Option<Instant>,
}

impl<I: Iterator<Item = Tuple>> PacedSource<I> {
    /// Wraps `inner`, delivering at most `rate_per_sec` tuples/second.
    pub fn new(inner: I, rate_per_sec: u64) -> Self {
        PacedSource {
            inner,
            rate_per_sec: rate_per_sec.max(1),
            burst: 16,
            delivered: 0,
            started: None,
        }
    }

    /// Overrides the pacing granularity; `1` re-checks the clock for
    /// every tuple (classic per-tuple pacing).
    pub fn with_burst(mut self, burst: u64) -> Self {
        self.burst = burst.max(1);
        self
    }
}

impl<I: Iterator<Item = Tuple>> Iterator for PacedSource<I> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.delivered.is_multiple_of(self.burst) {
            let started = *self.started.get_or_insert_with(Instant::now);
            let due = Duration::from_secs_f64(self.delivered as f64 / self.rate_per_sec as f64);
            let elapsed = started.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        let tuple = self.inner.next()?;
        self.delivered += 1;
        Some(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::scratch::ScratchDir;

    fn tuples(n: u64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(
                    format!("key-{}", i % 5).into_bytes(),
                    i.to_le_bytes().to_vec(),
                    i as i64,
                )
            })
            .collect()
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let dir = ScratchDir::new("source-roundtrip").unwrap();
        let path = dir.path().join("s.log");
        let original = tuples(500);
        let count = TupleLog::record(&path, original.clone().into_iter()).unwrap();
        assert_eq!(count, 500);
        let replayed: Vec<Tuple> = LogSource::open(&path).unwrap().collect();
        assert_eq!(replayed, original);
    }

    #[test]
    fn open_at_resumes_from_offset() {
        let dir = ScratchDir::new("source-offset").unwrap();
        let path = dir.path().join("s.log");
        let original = tuples(100);
        TupleLog::record(&path, original.clone().into_iter()).unwrap();
        let resumed: Vec<Tuple> = LogSource::open_at(&path, 40).unwrap().collect();
        assert_eq!(resumed, original[40..].to_vec());
        // Offsets past the end yield an empty stream, not an error.
        assert_eq!(LogSource::open_at(&path, 1_000).unwrap().count(), 0);
    }

    #[test]
    fn position_tracks_consumption() {
        let dir = ScratchDir::new("source-pos").unwrap();
        let path = dir.path().join("s.log");
        TupleLog::record(&path, tuples(10).into_iter()).unwrap();
        let mut s = LogSource::open(&path).unwrap();
        assert_eq!(s.position(), 0);
        s.next().unwrap();
        s.next().unwrap();
        assert_eq!(s.position(), 2);
    }

    #[test]
    fn torn_tail_ends_the_stream_cleanly() {
        let dir = ScratchDir::new("source-torn").unwrap();
        let path = dir.path().join("s.log");
        TupleLog::record(&path, tuples(50).into_iter()).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let replayed: Vec<Tuple> = LogSource::open(&path).unwrap().collect();
        assert_eq!(replayed.len(), 49);
    }

    #[test]
    fn paced_source_respects_the_rate() {
        let start = Instant::now();
        let delivered: Vec<Tuple> = PacedSource::new(tuples(50).into_iter(), 1_000).collect();
        assert_eq!(delivered.len(), 50);
        // 50 tuples at 1000/s needs ≥ ~48 ms of wall time (the last
        // burst boundary is at tuple 48).
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn per_tuple_pacing_still_available() {
        let start = Instant::now();
        let delivered: Vec<Tuple> = PacedSource::new(tuples(30).into_iter(), 1_000)
            .with_burst(1)
            .collect();
        assert_eq!(delivered.len(), 30);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }
}
